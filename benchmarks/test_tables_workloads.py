"""Tables I-III: the benchmark inventories used in the study."""

from repro.experiments import format_table
from repro.workloads.registry import default_registry

from common import run_once


def test_tables_1_2_3_workload_inventory(benchmark):
    registry = default_registry()

    def build():
        tables = {}
        for suite in ("parsec", "cloudsuite", "ecp"):
            tables[suite] = [(w.name, w.description) for w in registry.suite(suite)]
        return tables

    tables = run_once(benchmark, build)

    for number, suite in (("I", "parsec"), ("II", "cloudsuite"), ("III", "ecp")):
        print()
        print(
            format_table(
                ["benchmark", "description"],
                tables[suite],
                title=f"Table {number} ({suite}):",
            )
        )

    assert len(tables["parsec"]) == 7  # Table I's six + vips (Sec. V)
    assert len(tables["cloudsuite"]) == 5
    assert len(tables["ecp"]) == 5
