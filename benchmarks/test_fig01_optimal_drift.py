"""Fig. 1: the throughput-optimal configuration drifts over time.

Paper finding: for a five-job PARSEC mix sharing three resources, the
optimal configuration "can change by more than 20 %" over a run and
changes frequently.
"""

from repro.experiments import experiment_catalog, format_table, optimal_configuration_drift
from repro.workloads.mixes import suite_mixes

from common import run_once


def test_fig01_optimal_configuration_drift(benchmark):
    catalog = experiment_catalog()
    mix = suite_mixes("parsec")[17]  # a five-job mix as in the paper's Fig. 1

    drift = run_once(
        benchmark,
        lambda: optimal_configuration_drift(mix, catalog, duration_s=20.0, step_s=0.5),
    )

    print(f"\nFig. 1 — throughput-optimal configuration over time ({mix.label})")
    rows = []
    for i in range(0, len(drift.times), 4):
        row = [drift.times[i]]
        for name, series in drift.shares.items():
            row.append("/".join(f"{v:.0f}" for v in series[i]))
        rows.append(row)
    print(format_table(["t (s)"] + list(drift.shares), rows))
    print(f"\nmax per-job share swing: {drift.max_share_change_percent():.1f} %-points")
    print(f"distinct optimal configurations: {drift.n_distinct_configs()}")

    # Observation 1: the optimum changes significantly and frequently.
    assert drift.n_distinct_configs() >= 3
    assert drift.max_share_change_percent() >= 20.0  # paper: >20% change
