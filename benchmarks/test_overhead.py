"""Sec. V overhead: SATORI is practical for real systems.

Paper findings: all BO-related tasks take ~1.2 ms of each 100 ms
interval; decisions are off the critical path (jobs keep running under
the previous configuration); the idle optimization skips BO work when
performance is stable. This bench measures the reproduction's
controller on a live run plus the raw GP-update + acquisition
micro-cost.
"""

import numpy as np

from repro.core.bo import BayesianOptimizer
from repro.core.objective import GoalRecords
from repro.experiments import controller_overhead, experiment_catalog, format_table
from repro.experiments.comparison import full_space
from repro.experiments.runner import RunConfig
from repro.workloads.mixes import suite_mixes

from common import run_once


def test_overhead_controller_decision_time(benchmark):
    catalog = experiment_catalog()
    mix = suite_mixes("parsec")[0]

    result = run_once(
        benchmark,
        lambda: controller_overhead(
            mix, catalog, RunConfig(duration_s=15.0), seed=0, idle_detection=True
        ),
    )

    print("\nOverhead — SATORI controller on a live run")
    print(
        format_table(
            ["metric", "value"],
            [
                ["mean decision time (ms)", result.mean_decision_time_ms],
                ["control interval (ms)", result.control_interval_ms],
                ["decision fraction of interval", result.decision_fraction_of_interval],
                ["idle fraction", result.idle_fraction],
            ],
            precision=3,
        )
    )
    print(
        "\npaper: ~1.2 ms per 100 ms interval on a Skylake Xeon with "
        "Skopt; this NumPy GP is heavier per update but remains a small "
        "fraction of the interval and is off the critical path."
    )

    # Decisions fit comfortably inside one control interval, and the
    # idle optimization actually engages.
    assert result.decision_fraction_of_interval < 0.5
    assert result.idle_fraction > 0.0


def test_overhead_bo_engine_microbench(benchmark):
    """Raw cost of one GP update + acquisition pass (the paper's 1.2 ms)."""
    catalog = experiment_catalog()
    space = full_space(catalog, 5)
    records = GoalRecords()
    rng = np.random.default_rng(0)
    import repro.rng as rng_mod

    gen = rng_mod.make_rng(0)
    for _ in range(64):
        config = space.sample(gen)
        records.add(config, space.encode(config), (rng.random(), rng.random()))
    bo = BayesianOptimizer(space, rng=1)
    bo.suggest(records, (0.5, 0.5))  # warm the probe state

    suggestion = benchmark(lambda: bo.suggest(records, (0.5, 0.5)))
    assert suggestion.config is not None
