"""Fig. 16: low sensitivity to the prioritization and equalization periods.

Paper findings: SATORI's throughput and fairness are flat across a
wide range of T_P and T_E; degradation appears only for very long
periods (T_P > 5 s, T_E > 30 s). No tuning effort is required.
"""

from repro.experiments import experiment_catalog, format_table, period_sensitivity
from repro.experiments.runner import RunConfig
from repro.workloads.mixes import suite_mixes

from common import run_once


def test_fig16_period_sensitivity(benchmark):
    catalog = experiment_catalog()
    mix = suite_mixes("parsec")[17]

    result = run_once(
        benchmark,
        lambda: period_sensitivity(
            mix,
            catalog,
            RunConfig(duration_s=15.0),
            seed=4,
            prioritization_sweep=(0.5, 1.0, 2.0, 5.0),
            equalization_sweep=(5.0, 10.0, 20.0, 30.0),
        ),
    )

    print(f"\nFig. 16 — period sensitivity ({mix.label}, % of Balanced Oracle)")
    print(
        format_table(
            ["T_P (s)", "throughput %", "fairness %"],
            [[p.value_s, p.throughput_vs_oracle, p.fairness_vs_oracle] for p in result.prioritization],
            title="prioritization-period sweep (T_E = 10 s):",
        )
    )
    print()
    print(
        format_table(
            ["T_E (s)", "throughput %", "fairness %"],
            [[p.value_s, p.throughput_vs_oracle, p.fairness_vs_oracle] for p in result.equalization],
            title="equalization-period sweep (T_P = 1 s):",
        )
    )
    print(
        f"\nspread across T_P sweep: {result.prioritization_spread():.1f} points; "
        f"across T_E sweep: {result.equalization_spread():.1f} points"
    )

    # Low sensitivity: parameter choice in a reasonable range moves the
    # outcome by far less than the SATORI-vs-baseline gaps (~15+ pts).
    assert result.prioritization_spread() < 15.0
    assert result.equalization_spread() < 15.0
    for point in result.prioritization + result.equalization:
        assert point.throughput_vs_oracle > 75.0
        assert point.fairness_vs_oracle > 80.0
