"""Fig. 7 (right half): single-goal SATORI variants and the oracles.

Paper findings: Throughput SATORI's throughput exceeds full SATORI's
and approaches the Throughput Oracle; Fairness SATORI's fairness
likewise (Fig. 7(a)/(b), the Throughput/Fairness SATORI and Oracle
bars).
"""

import numpy as np

from repro.experiments import format_table
from repro.experiments.runner import RunConfig
from repro.experiments.variants import single_goal_limits
from repro.workloads.mixes import suite_mixes

from common import RUN_SECONDS, run_once


def test_fig07b_single_goal_variants(benchmark):
    mixes = suite_mixes("parsec")

    def compute():
        return [
            single_goal_limits(mixes[i], run_config=RunConfig(duration_s=RUN_SECONDS), seed=i)
            for i in (5, 17)
        ]

    results = run_once(benchmark, compute)

    print("\nFig. 7 (variants) — single-goal SATORI vs the Oracles")
    rows = []
    for r in results:
        for label, run in (
            ("SATORI", r.satori),
            ("Throughput SATORI", r.throughput_satori),
            ("Fairness SATORI", r.fairness_satori),
            ("Balanced Oracle", r.balanced_oracle),
            ("Throughput Oracle", r.throughput_oracle),
            ("Fairness Oracle", r.fairness_oracle),
        ):
            rows.append([r.mix_label[:32], label, run.throughput, run.fairness])
    print(format_table(["mix", "policy", "throughput", "fairness"], rows, precision=3))

    for r in results:
        # Single-goal variants reach near their single-goal oracles.
        assert r.throughput_variant_ratio > 0.8, "Throughput SATORI ~ Throughput Oracle"
        assert r.fairness_variant_ratio > 0.85, "Fairness SATORI ~ Fairness Oracle"
        # The oracles' dominance ordering holds on each goal.
        assert r.throughput_oracle.throughput >= r.balanced_oracle.throughput * 0.99
        assert r.fairness_oracle.fairness >= r.balanced_oracle.fairness * 0.99

    # On average the single-goal variants match or beat full SATORI on
    # their own goal (per-mix noise can flip near-ties: the fairness
    # landscape is flat near its top, so the fairness-only objective
    # gives BO less gradient than the combined one).
    mean_t_variant = np.mean([r.throughput_satori.throughput for r in results])
    mean_t_full = np.mean([r.satori.throughput for r in results])
    mean_f_variant = np.mean([r.fairness_satori.fairness for r in results])
    mean_f_full = np.mean([r.satori.fairness for r in results])
    assert mean_t_variant >= mean_t_full * 0.95
    assert mean_f_variant >= mean_f_full * 0.94
