"""Fig. 17: the moving-goal-post objective helps without destabilizing BO.

Paper findings: (a) SATORI achieves higher objective-function values
over time than SATORI without dynamic prioritization; (b) the
percentage change of the proxy model per iteration stays in the same
range for both variants — the bounded weights keep the BO engine near
its expected behaviour.
"""

import numpy as np

from repro.experiments import experiment_catalog, format_series, objective_trace
from repro.experiments.runner import RunConfig
from repro.workloads.mixes import mix_from_names

from common import RUN_SECONDS, run_once

#: The paper's Fig. 17 mix.
FIG17_MIX = ("blackscholes", "canneal", "fluidanimate", "freqmine", "streamcluster")


def test_fig17_objective_and_proxy_stability(benchmark):
    catalog = experiment_catalog()
    mix = mix_from_names(FIG17_MIX)

    traces = run_once(
        benchmark,
        lambda: objective_trace(mix, catalog, RunConfig(duration_s=RUN_SECONDS), seed=5),
    )

    print(f"\nFig. 17(a) — objective value over time ({mix.label})")
    print(format_series("  dynamic", traces.dynamic_objective, limit=16))
    print(format_series("  static ", traces.static_objective, limit=16))
    gain = traces.mean_objective_gain()
    print(f"  mean objective advantage of dynamic prioritization: {gain:+.4f}")

    (dyn_lo, dyn_hi), (sta_lo, sta_hi) = traces.proxy_change_ranges()
    print("\nFig. 17(b) — proxy-model change per iteration (%)")
    print(f"  dynamic: [{dyn_lo:.2f}, {dyn_hi:.2f}]   static: [{sta_lo:.2f}, {sta_hi:.2f}]")

    # (a) dynamic prioritization does not lower the achieved objective.
    assert np.nanmean(traces.dynamic_objective) >= np.nanmean(traces.static_objective) - 0.02

    # (b) proxy-model churn stays in the same range for both variants:
    # the dynamic objective does not blow up the BO engine.
    assert dyn_hi <= max(sta_hi, 1e-9) * 5.0 + 5.0
    assert np.nanmedian(traces.dynamic_proxy_change) <= (
        np.nanmedian(traces.static_proxy_change) * 5.0 + 5.0
    )
