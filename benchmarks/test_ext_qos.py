"""Extension: PARTIES in its native latency-critical setting (Sec. IV caveat).

The paper adapts PARTIES to throughput+fairness and notes it "should
not be necessarily expected to perform for the situation it was not
designed for". The converse also holds and is reproduced here: on a
mix of latency-critical services with tail-latency targets, the
native QoS-PARTIES controller holds QoS best, while SATORI — which
optimizes throughput+fairness, knowing nothing about latency targets
— extracts more raw instruction throughput.
"""

from repro.experiments import format_table
from repro.experiments.qos import qos_colocation
from repro.experiments.runner import RunConfig

from common import RUN_SECONDS, run_once


def test_extension_qos_native_parties(benchmark):
    comparison = run_once(
        benchmark,
        lambda: qos_colocation(run_config=RunConfig(duration_s=RUN_SECONDS), seed=0),
    )

    print(f"\nExtension — LC co-location ({comparison.mix_label})")
    rows = []
    for name, result in comparison.results.items():
        rows.append(
            [
                name,
                result.qos_satisfaction,
                result.worst_job_satisfaction,
                result.mean_total_ips / 1e9,
            ]
        )
    print(
        format_table(
            ["policy", "QoS satisfaction", "worst job", "total Gips"],
            rows,
            precision=2,
        )
    )

    qos_parties = comparison.result("QoS-PARTIES")
    satori = comparison.result("SATORI")
    equal = comparison.result("Equal Partition")

    # The native controller dominates on its own objective...
    assert qos_parties.qos_satisfaction > equal.qos_satisfaction
    assert qos_parties.worst_job_satisfaction > equal.worst_job_satisfaction
    assert qos_parties.qos_satisfaction >= satori.qos_satisfaction - 0.05
    # ...while the throughput-oriented controller wins raw IPS.
    assert satori.mean_total_ips >= qos_parties.mean_total_ips * 0.97
