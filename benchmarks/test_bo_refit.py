"""BO hot-path microbenchmark: gated length-scale refits + incremental
Cholesky versus the naive per-interval grid search.

The controller calls ``BayesianOptimizer.suggest()`` every 100 ms
control interval. The naive proxy-model update re-runs the length-scale
grid search — ``len(_LENGTHSCALE_GRID)`` full Cholesky factorizations —
and refactorizes from scratch on every call, so its per-step cost grows
cubically with the sample count. The gated path (the default) searches
the grid only every ``lengthscale_refit_every`` new samples and extends
the persistent GP's Cholesky factor incrementally in between.

This benchmark replays the same growing-sample trace through both
update strategies and reports the per-step time series plus the total
speedup. The speedup assertion is deliberately loose (>1.5x) because
figure machines range from laptops to single-core CI boxes; typical
speedups on the 150-sample trace are well above 3x.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.bo import BayesianOptimizer
from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern52
from repro.core.objective import GoalRecords
from repro.resources.space import ConfigurationSpace
from repro.experiments.runner import experiment_catalog

from common import run_once

#: Samples in the replayed controller trace (≈ 15 s at 0.1 s intervals).
N_SAMPLES = 150

#: Gated refit period benchmarked here (the BO default is 10).
REFIT_EVERY = 5


def _trace(n: int, d: int = 12, seed: int = 0):
    """A synthetic growing (x, y) trace shaped like encoded configs."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(size=(n, d))
    y = np.sin(3.0 * x[:, 0]) + 0.5 * x[:, 1] + rng.normal(scale=0.05, size=n)
    return x, y


def _replay(gp_factory, x, y, persistent: bool):
    """Per-step fit times replaying the trace through a GP strategy."""
    times = []
    gp = gp_factory() if persistent else None
    for n in range(4, x.shape[0] + 1):
        model = gp if persistent else gp_factory()
        started = time.perf_counter()
        model.fit(x[:n], y[:n], optimize_lengthscale=True)
        times.append(time.perf_counter() - started)
    return np.asarray(times)


@pytest.mark.slow
def test_bo_refit_speedup(benchmark):
    x, y = _trace(N_SAMPLES)

    def measure():
        naive = _replay(
            lambda: GaussianProcess(kernel=Matern52(), noise=5e-2),
            x, y, persistent=False,
        )
        gated = _replay(
            lambda: GaussianProcess(
                kernel=Matern52(), noise=5e-2, lengthscale_refit_every=REFIT_EVERY
            ),
            x, y, persistent=True,
        )
        return naive, gated

    naive, gated = run_once(benchmark, measure)
    speedup = naive.sum() / max(gated.sum(), 1e-12)
    print(
        f"\nGP proxy update over {N_SAMPLES} samples: "
        f"naive {naive.sum() * 1e3:.1f} ms total "
        f"({naive[-1] * 1e6:.0f} us last step), "
        f"gated {gated.sum() * 1e3:.1f} ms total "
        f"({gated[-1] * 1e6:.0f} us last step), "
        f"speedup {speedup:.1f}x"
    )
    assert speedup > 1.5


@pytest.mark.slow
def test_controller_step_speedup():
    """End-to-end suggest() loop: gated default vs forced every-step refit."""
    catalog = experiment_catalog(units=6)
    space = ConfigurationSpace(catalog, 3)

    def loop(refit_every: int) -> float:
        bo = BayesianOptimizer(space, lengthscale_refit_every=refit_every, rng=1)
        # Window wider than the trace so the proxy-model update (the
        # part the gating accelerates) dominates candidate scoring.
        records = GoalRecords(max_samples=N_SAMPLES + 8)
        rng = np.random.default_rng(2)
        total = 0.0
        for _ in range(N_SAMPLES):
            config = space.sample(rng)
            encoded = space.encode_batch([config])[0]
            records.add(config, encoded, scores=(rng.uniform(0.5, 1.0), rng.uniform(0.5, 1.0)))
            started = time.perf_counter()
            bo.suggest(records, (0.5, 0.5))
            total += time.perf_counter() - started
        return total

    forced = loop(refit_every=1)
    gated = loop(refit_every=REFIT_EVERY)
    print(
        f"\nsuggest() loop over {N_SAMPLES} intervals: "
        f"every-step refit {forced * 1e3:.1f} ms, "
        f"gated (K={REFIT_EVERY}) {gated * 1e3:.1f} ms, "
        f"speedup {forced / max(gated, 1e-12):.2f}x"
    )
    # Both loops share the incremental-Cholesky path; the gated one
    # additionally skips 4 of every 5 grid searches, so it must win.
    assert gated < forced
