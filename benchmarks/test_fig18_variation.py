"""Fig. 18: observed-performance variation is similar with and without
dynamic prioritization.

Paper finding: SATORI's throughput/fairness curves sit above the
no-prioritization variant's but vary comparably over time — the
changing weights do not make behaviour erratic.
"""

from repro.experiments import experiment_catalog, format_table, performance_variation
from repro.experiments.runner import RunConfig
from repro.workloads.mixes import mix_from_names

from common import RUN_SECONDS, run_once

FIG18_MIX = ("blackscholes", "canneal", "fluidanimate", "freqmine", "streamcluster")


def test_fig18_performance_variation(benchmark):
    catalog = experiment_catalog()
    mix = mix_from_names(FIG18_MIX)

    variation = run_once(
        benchmark,
        lambda: performance_variation(
            mix, catalog, RunConfig(duration_s=RUN_SECONDS), seed=6
        ),
    )

    print(f"\nFig. 18 — observed-performance variation ({mix.label})")
    print(
        format_table(
            ["variant", "T mean", "T std", "F mean", "F std"],
            [
                [
                    "SATORI (dynamic)",
                    variation.dynamic_means[0],
                    variation.dynamic_throughput_std,
                    variation.dynamic_means[1],
                    variation.dynamic_fairness_std,
                ],
                [
                    "no prioritization",
                    variation.static_means[0],
                    variation.static_throughput_std,
                    variation.static_means[1],
                    variation.static_fairness_std,
                ],
            ],
            precision=4,
        )
    )

    # Similar variation: neither variant is more than ~2.5x noisier.
    assert variation.dynamic_throughput_std <= variation.static_throughput_std * 2.5 + 1e-3
    assert variation.dynamic_fairness_std <= variation.static_fairness_std * 2.5 + 1e-3
    # And the dynamic variant sits at or above the static level.
    dynamic_level = sum(variation.dynamic_means)
    static_level = sum(variation.static_means)
    assert dynamic_level >= static_level * 0.97
