"""Figs. 10 & 12: CloudSuite per-mix and aggregate results.

Paper findings: SATORI outperforms the competition across the 10
three-job CloudSuite mixes, beating the next best technique (PARTIES)
by 9 points throughput / 5 points fairness.

Reproduction note (EXPERIMENTS.md): at this lower co-location degree
our substrate's landscape is easier for gradient descent, so PARTIES
closes most of the gap; SATORI stays within a few points rather than
ahead. The Random < dCAT < CoPart ordering and SATORI's near-oracle
level reproduce.
"""

from repro.experiments import STANDARD_POLICY_ORDER, aggregate, format_table

from common import run_once, suite_comparisons


def test_fig10_12_cloudsuite(benchmark):
    comparisons = run_once(benchmark, lambda: suite_comparisons("cloudsuite"))
    agg = aggregate(comparisons, STANDARD_POLICY_ORDER)

    print("\nFig. 10 — per-mix CloudSuite results (% of Balanced Oracle, T/F)")
    rows = []
    ordered = sorted(comparisons, key=lambda c: c.score("SATORI").throughput_vs_oracle)
    for comparison in ordered:
        row = [comparison.mix_label[:48]]
        for name in STANDARD_POLICY_ORDER:
            score = comparison.score(name)
            row.append(f"{score.throughput_vs_oracle:.0f}/{score.fairness_vs_oracle:.0f}")
        rows.append(row)
    print(format_table(["mix"] + list(STANDARD_POLICY_ORDER), rows))

    print("\nFig. 12 — CloudSuite aggregate (% of Balanced Oracle)")
    print(
        format_table(
            ["policy", "throughput %", "fairness %"],
            [[name, t, f] for name, (t, f) in agg.items()],
        )
    )

    satori_t, satori_f = agg["SATORI"]
    assert satori_t >= 85.0
    assert satori_f >= 90.0
    # Baseline ordering holds.
    assert agg["Random"][0] < agg["dCAT"][0] < agg["CoPart"][0]
    # SATORI is at worst a near-tie with PARTIES at this degree
    # (documented deviation; the paper has SATORI +9).
    assert satori_t >= agg["PARTIES"][0] - 8.0
    assert satori_f >= agg["PARTIES"][1] - 4.0
