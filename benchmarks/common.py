"""Shared helpers for the paper-reproduction benchmarks.

The heavy suite sweeps (21 PARSEC mixes x 6 policies) back several
figures (Figs. 7, 8, 9), so their results are computed once per
pytest session and shared. Scales are the reproduction defaults of
DESIGN.md: an 8-unit-per-resource server (identical combinatorial
structure to the paper's 10-unit testbed, tractable Oracle) and 20 s
online runs per policy per mix.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.experiments import (
    MixComparison,
    RunConfig,
    compare_on_mixes,
    experiment_catalog,
)
from repro.workloads.mixes import suite_mixes

#: Run length per policy per mix, simulated seconds.
RUN_SECONDS = 20.0


def run_config() -> RunConfig:
    return RunConfig(duration_s=RUN_SECONDS)


@lru_cache(maxsize=None)
def suite_comparisons(suite: str) -> Tuple[MixComparison, ...]:
    """All-policy comparisons for every mix of a suite (memoized)."""
    catalog = experiment_catalog()
    mixes = suite_mixes(suite)
    return tuple(compare_on_mixes(mixes, catalog, run_config(), seed=0))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
