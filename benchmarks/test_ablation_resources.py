"""Sec. V resource-subset ablation: SATORI's benefit is the search itself.

Paper findings: restricted to dCAT's single resource (LLC ways),
SATORI still beats dCAT by 4 points throughput / 5 points fairness;
restricted to CoPart's two resources (LLC + bandwidth), it beats
CoPart by 7 / 4 points. Also includes the BO design-choice ablation
(acquisition function and kernel) DESIGN.md calls out.
"""

import numpy as np

from repro.experiments import (
    bo_design_ablation,
    experiment_catalog,
    format_table,
    resource_subset_ablation,
)
from repro.experiments.runner import RunConfig
from repro.resources.types import LLC_WAYS, MEMORY_BANDWIDTH
from repro.workloads.mixes import suite_mixes

from common import RUN_SECONDS, run_once


def test_ablation_resource_subsets(benchmark):
    catalog = experiment_catalog()
    mixes = suite_mixes("parsec")

    def compute():
        llc_results = []
        both_results = []
        for i in (5, 17):
            rc = RunConfig(duration_s=RUN_SECONDS)
            llc_results.append(resource_subset_ablation(mixes[i], [LLC_WAYS], catalog, rc, seed=i))
            both_results.append(
                resource_subset_ablation(
                    mixes[i], [LLC_WAYS, MEMORY_BANDWIDTH], catalog, rc, seed=i
                )
            )
        return llc_results, both_results

    llc_results, both_results = run_once(benchmark, compute)

    print("\nResource-subset ablation (% of Balanced Oracle)")
    rows = []
    for result in llc_results + both_results:
        rows.append(
            [
                "+".join(result.resources),
                result.mix_label[:36],
                f"{result.satori_throughput:.0f}/{result.satori_fairness:.0f}",
                result.baseline_name,
                f"{result.baseline_throughput:.0f}/{result.baseline_fairness:.0f}",
            ]
        )
    print(format_table(["resources", "mix", "SATORI T/F", "baseline", "baseline T/F"], rows))

    llc_gap_t = np.mean([r.throughput_gap_points for r in llc_results])
    llc_gap_f = np.mean([r.fairness_gap_points for r in llc_results])
    both_gap_t = np.mean([r.throughput_gap_points for r in both_results])
    print(
        f"\nSATORI-LLC-only vs dCAT: {llc_gap_t:+.1f} T pts, {llc_gap_f:+.1f} F pts "
        "(paper: +4 / +5)"
    )
    print(f"SATORI-LLC+MBW vs CoPart: {both_gap_t:+.1f} T pts (paper: +7)")

    # SATORI's search advantage survives the restricted knob sets.
    assert llc_gap_t > -2.0
    assert both_gap_t > -2.0


def test_ablation_bo_design_choices(benchmark):
    catalog = experiment_catalog()
    mix = suite_mixes("parsec")[17]

    result = run_once(
        benchmark,
        lambda: bo_design_ablation(mix, catalog, RunConfig(duration_s=15.0), seed=7),
    )

    print(f"\nBO design-choice ablation ({mix.label}, % of Balanced Oracle)")
    print(
        format_table(
            ["variant", "throughput %", "fairness %"],
            [[label, t, f] for label, (t, f) in result.scores.items()],
        )
    )

    paper_t, paper_f = result.scores["EI + Matern52 (paper)"]
    # The paper's choice is competitive with every alternative.
    for label, (t, f) in result.scores.items():
        assert paper_t + paper_f >= (t + f) - 12.0, f"{label} dominates the paper design"
