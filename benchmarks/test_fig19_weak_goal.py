"""Fig. 19: prioritizing the weaker goal beats prioritizing the stronger one.

Paper finding: giving the next prioritization window to the goal that
improved *less* (SATORI's Eq. 4) reaches higher levels of both goals
than favoring the goal that just improved more; the paper measured
the alternative to underperform by roughly 5 %.
"""

import numpy as np

from repro.experiments import experiment_catalog, format_table, weak_goal_priority
from repro.experiments.runner import RunConfig
from repro.workloads.mixes import suite_mixes

from common import RUN_SECONDS, run_once


def test_fig19_weak_goal_prioritization(benchmark):
    catalog = experiment_catalog()
    mixes = suite_mixes("parsec")

    def compute():
        return [
            weak_goal_priority(mixes[i], catalog, RunConfig(duration_s=RUN_SECONDS), seed=i)
            for i in (5, 17)
        ]

    results = run_once(benchmark, compute)

    print("\nFig. 19 — prioritize weaker vs stronger goal")
    rows = []
    for r in results:
        rows.append(
            [
                r.mix_label[:44],
                r.dynamic.throughput,
                r.other.throughput,
                r.dynamic.fairness,
                r.other.fairness,
            ]
        )
    print(
        format_table(
            ["mix", "T weaker", "T stronger", "F weaker", "F stronger"],
            rows,
            precision=3,
        )
    )

    weaker = np.mean([r.dynamic.throughput + r.dynamic.fairness for r in results])
    stronger = np.mean([r.other.throughput + r.other.fairness for r in results])
    print(
        f"\ncombined objective: weaker-goal design {weaker:.3f} vs "
        f"stronger-goal design {stronger:.3f} "
        f"({100 * (weaker / stronger - 1):+.1f} %; paper: weaker wins by ~5 %)"
    )

    # The chosen design must not lose to the alternative.
    assert weaker >= stronger * 0.98
