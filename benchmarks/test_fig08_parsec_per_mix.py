"""Fig. 8: per-mix PARSEC results — SATORI consistent across all 21 mixes.

Paper findings: SATORI outperforms the competition for every job mix
(up to +20 points throughput / +10 points fairness over PARTIES),
never worse than the competing techniques.
"""

import numpy as np

from repro.experiments import STANDARD_POLICY_ORDER, format_table

from common import run_once, suite_comparisons


def test_fig08_parsec_per_mix(benchmark):
    comparisons = run_once(benchmark, lambda: suite_comparisons("parsec"))

    # The paper sorts mixes by SATORI's performance.
    ordered = sorted(
        comparisons, key=lambda c: c.score("SATORI").throughput_vs_oracle
    )
    print("\nFig. 8 — per-mix PARSEC results (% of Balanced Oracle, T/F)")
    rows = []
    for index, comparison in enumerate(ordered):
        row = [index, comparison.mix_label[:44]]
        for name in STANDARD_POLICY_ORDER:
            score = comparison.score(name)
            row.append(f"{score.throughput_vs_oracle:.0f}/{score.fairness_vs_oracle:.0f}")
        rows.append(row)
    print(format_table(["#", "mix"] + list(STANDARD_POLICY_ORDER), rows))

    combined_wins = sum(
        c.score("SATORI").throughput_vs_oracle + c.score("SATORI").fairness_vs_oracle
        > c.score("PARTIES").throughput_vs_oracle + c.score("PARTIES").fairness_vs_oracle
        for c in comparisons
    )
    throughput_wins = sum(
        c.score("SATORI").throughput_vs_oracle > c.score("PARTIES").throughput_vs_oracle
        for c in comparisons
    )
    print(
        f"\nSATORI beats PARTIES: throughput on {throughput_wins}/21 mixes, "
        f"combined objective on {combined_wins}/21 mixes"
    )

    # Consistency: SATORI wins the combined objective on a strong
    # majority of mixes and throughput on nearly all.
    assert throughput_wins >= 17
    assert combined_wins >= 14

    # SATORI is never catastrophically worse than PARTIES anywhere.
    for comparison in comparisons:
        satori = comparison.score("SATORI")
        parties = comparison.score("PARTIES")
        assert satori.throughput_vs_oracle > parties.throughput_vs_oracle - 10.0
