"""Control-plane load: sessions/sec and decision latency under replay.

Home of the ``BENCH_serve.json`` perf artifact: a fast, non-slow-marked
run that boots an in-process :class:`ControlPlaneServer`, floods it
with a 100-plus-session arrival trace through the JSON-lines load
generator, and records sessions/sec, steps/sec, and the server's p50 /
p99 decision latency. Written on every tier-1 CI run so the serve
layer's perf trajectory is visible across PRs (override the path with
``BENCH_SERVE_JSON``).

The fast artifact run uses ``EqualPartition`` sessions (decide cost is
negligible, so the numbers isolate control-plane overhead); the
slow-marked companion drives real ``SATORI`` sessions, where BO decide
dominates — the pair separates transport cost from controller cost.
"""

import asyncio
import json
import math
import os

import pytest

from repro.experiments import format_table
from repro.serve import ControlPlaneServer, LoadGenerator, SessionSpec
from repro.workloads.arrivals import poisson_trace

#: Fast-artifact scale: one burst of 100 resident sessions plus churn.
BENCH_SESSIONS = 100
BENCH_EPOCHS = 8
BENCH_EPOCH_S = 0.25

#: Slow-run scale: fewer sessions, real SATORI controllers.
SLOW_SESSIONS = 24
SLOW_EPOCHS = 6
SLOW_EPOCH_S = 0.5


def _bench_path():
    return os.environ.get("BENCH_SERVE_JSON", "BENCH_serve.json")


def _replay(policy: str, initial_sessions: int, epochs: int, epoch_s: float,
            steps_per_epoch: int = 1):
    """Boot a server, replay a trace against it, return the report."""

    async def _run():
        server = ControlPlaneServer()
        await server.start()
        try:
            host, port = server.address
            trace = poisson_trace(
                n_epochs=epochs,
                arrival_rate=2.0,
                mean_residency=10 * epochs,  # essentially nobody departs
                suites=("ecp",),
                seed=0,
                initial_jobs=initial_sessions,
            )
            generator = LoadGenerator(
                host,
                port,
                trace,
                base_spec=SessionSpec(policy=policy, suite="ecp", units=4, seed=0),
                epoch_s=epoch_s,
                steps_per_epoch=steps_per_epoch,
                connections=16,
                mix_cycle=8,
            )
            return await generator.run()
        finally:
            await server.stop()

    return asyncio.run(_run())


def test_bench_serve_artifact():
    """Measure control-plane throughput + decision latency, emit JSON.

    Deliberately not ``slow``-marked: tier-1 CI invokes this by path
    after the main suite and uploads the artifact. Wall-clock numbers
    are environment-dependent; the assertions gate sanity (>= 100
    concurrent sessions actually hosted, zero request errors, latency
    percentiles recorded), never absolute speed.
    """
    report = _replay("EqualPartition", BENCH_SESSIONS, BENCH_EPOCHS, BENCH_EPOCH_S)

    assert report.errors == 0
    assert report.peak_concurrent >= BENCH_SESSIONS
    assert report.sessions_created >= BENCH_SESSIONS
    assert report.steps_total > 0
    assert report.sessions_per_sec > 0.0
    assert math.isfinite(report.decision_latency_p99_ms)
    assert report.decision_latency_p99_ms > 0.0

    payload = {
        "benchmark": "serve_load",
        "policy": "EqualPartition",
        "concurrent_sessions": report.peak_concurrent,
        **report.to_dict(),
    }
    with open(_bench_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {_bench_path()}")
    print(format_table(
        ["measure", "value"],
        [
            ["peak concurrent sessions", report.peak_concurrent],
            ["sessions/sec", round(report.sessions_per_sec, 1)],
            ["steps/sec", round(report.steps_per_sec, 1)],
            ["decision p50 (ms)", round(report.decision_latency_p50_ms, 3)],
            ["decision p99 (ms)", round(report.decision_latency_p99_ms, 3)],
            ["lagging epochs", report.lagging_epochs],
        ],
    ))


@pytest.mark.slow
def test_serve_load_satori():
    """Real SATORI sessions under live load: BO decide cost end to end."""
    report = _replay("SATORI", SLOW_SESSIONS, SLOW_EPOCHS, SLOW_EPOCH_S)
    assert report.errors == 0
    assert report.peak_concurrent >= SLOW_SESSIONS
    assert report.steps_total > 0
    assert math.isfinite(report.decision_latency_p99_ms)
    print(format_table(
        ["measure", "value"],
        [
            ["peak concurrent sessions", report.peak_concurrent],
            ["steps/sec", round(report.steps_per_sec, 1)],
            ["decision p50 (ms)", round(report.decision_latency_p50_ms, 3)],
            ["decision p99 (ms)", round(report.decision_latency_p99_ms, 3)],
        ],
        title="SATORI sessions under live load:",
    ))
