"""Sec. V scalability: SATORI's advantage grows with co-location degree.

Paper finding: the %-point gap between SATORI and PARTIES increases
monotonically with the number of co-located applications
(8 / 11 / 13 / 13 / 15 points for 3-7 applications) because the
configuration space and its local maxima grow, defeating gradient
descent first.
"""

import numpy as np

from repro.experiments import colocation_scalability, experiment_catalog, format_table
from repro.experiments.runner import RunConfig

from common import RUN_SECONDS, run_once


def test_scalability_colocation_degree(benchmark):
    catalog = experiment_catalog()

    result = run_once(
        benchmark,
        lambda: colocation_scalability(
            degrees=(3, 4, 5, 6, 7),
            mixes_per_degree=2,
            catalog=catalog,
            run_config=RunConfig(duration_s=RUN_SECONDS),
            seed=0,
        ),
    )

    print("\nScalability — SATORI vs PARTIES across co-location degrees")
    rows = []
    for point in result.points:
        rows.append(
            [
                point.degree,
                f"{point.satori_throughput:.0f}/{point.satori_fairness:.0f}",
                f"{point.parties_throughput:.0f}/{point.parties_fairness:.0f}",
                point.throughput_gap_points,
                point.fairness_gap_points,
            ]
        )
    print(
        format_table(
            ["degree", "SATORI T/F", "PARTIES T/F", "T gap (pts)", "F gap (pts)"],
            rows,
        )
    )
    gaps = result.gaps()
    print(f"\nmean gaps by degree: {[f'{g:+.1f}' for g in gaps]} (paper: 8/11/13/13/15)")

    # The trend: the gap at high degree clearly exceeds the gap at low
    # degree (gradient descent degrades first as the space grows).
    low = np.mean(gaps[:2])
    high = np.mean(gaps[-2:])
    assert high > low, "SATORI's advantage must grow with co-location degree"
    assert gaps[-1] > 0, "SATORI must lead PARTIES outright at degree 7"
