"""Fig. 14: dynamic weight re-balancing and its benefit over static weights.

Paper findings: (a) the overall throughput/fairness weights deviate by
up to 50 % from 0.5 through temporary prioritization, but average 0.5
over every equalization period; (b) dynamic prioritization yields up
to 10 % additional benefit over static 0.5/0.5 weights, on both goals.
"""

import numpy as np

from repro.experiments import (
    dynamic_vs_static,
    experiment_catalog,
    format_table,
    weight_trace,
)
from repro.experiments.runner import RunConfig
from repro.workloads.mixes import suite_mixes

from common import RUN_SECONDS, run_once


def test_fig14a_weight_trace(benchmark):
    catalog = experiment_catalog()
    mix = suite_mixes("parsec")[17]

    trace, _ = run_once(
        benchmark,
        lambda: weight_trace(mix, catalog, RunConfig(duration_s=RUN_SECONDS), seed=3),
    )

    print(f"\nFig. 14(a) — weight decomposition trace ({mix.label})")
    rows = []
    for i in range(0, len(trace.times), 20):
        rows.append(
            [
                trace.times[i],
                trace.w_throughput[i],
                trace.w_fairness[i],
                trace.prioritization_throughput[i],
                trace.equalization_throughput[i],
            ]
        )
    print(
        format_table(
            ["t (s)", "W_T", "W_F", "prioritization(T)", "equalization(T)"],
            rows,
            precision=3,
        )
    )
    mean_t, mean_f = trace.mean_weights()
    deviation = trace.max_deviation_from_equal()
    print(f"\nlong-term mean weights: W_T={mean_t:.3f} W_F={mean_f:.3f}")
    print(f"max deviation from 0.5: {deviation:.2f} (paper: up to 0.25 = 50 %)")

    assert abs(mean_t - 0.5) < 0.1, "equalization must pin long-term weights to ~0.5"
    assert deviation > 0.02, "temporary prioritization must actually move the weights"
    assert deviation <= 0.25 + 1e-9, "weights must respect the [0.25, 0.75] bounds"


def test_fig14b_dynamic_vs_static(benchmark):
    catalog = experiment_catalog()
    mixes = suite_mixes("parsec")

    def compute():
        results = []
        for index in (3, 10, 17):
            results.append(
                dynamic_vs_static(
                    mixes[index], catalog, RunConfig(duration_s=RUN_SECONDS), seed=index
                )
            )
        return results

    results = run_once(benchmark, compute)

    print("\nFig. 14(b) — dynamic vs static weights (three mixes)")
    rows = [
        [
            r.mix_label[:44],
            r.dynamic.throughput,
            r.other.throughput,
            r.dynamic.fairness,
            r.other.fairness,
        ]
        for r in results
    ]
    print(
        format_table(
            ["mix", "T dyn", "T static", "F dyn", "F static"], rows, precision=3
        )
    )

    gain_t = np.mean([r.throughput_gain_percent for r in results])
    gain_f = np.mean([r.fairness_gain_percent for r in results])
    print(f"\nmean dynamic-prioritization gain: {gain_t:+.1f} % T, {gain_f:+.1f} % F "
          "(paper: up to +10 %)")

    # Dynamic prioritization must not lose to static weighting on the
    # combined objective on average.
    combined_dynamic = np.mean([r.dynamic.throughput + r.dynamic.fairness for r in results])
    combined_static = np.mean([r.other.throughput + r.other.fairness for r in results])
    assert combined_dynamic >= combined_static * 0.97
