"""Extension: workload-mix churn (Sec. III-C claim).

"Be it a phase change or a change in the workload mixes, SATORI
requires no further initialization." One job is swapped for a new
workload mid-run; SATORI must re-converge to near its pre-swap
optimality ratio without being restarted.
"""

from repro.experiments import format_table
from repro.experiments.churn import workload_churn
from repro.workloads.mixes import suite_mixes
from repro.workloads.registry import get_workload

from common import run_once


def test_extension_workload_churn(benchmark):
    mix = suite_mixes("parsec")[0]
    newcomer = get_workload("vips")

    result = run_once(
        benchmark,
        lambda: workload_churn(
            mix, newcomer, swap_index=2, duration_s=24.0, seed=1
        ),
    )

    print(f"\nExtension — workload churn ({result.mix_label} -> +{result.newcomer})")
    print(
        format_table(
            ["window", "objective / oracle"],
            [
                [f"before swap (t<{result.swap_time_s:.0f}s)", result.before_ratio],
                ["right after swap", result.disturbance_ratio],
                ["end of run (recovered)", result.recovered_ratio],
            ],
            precision=3,
        )
    )

    assert result.recovers, "SATORI must re-converge after the mix change"
    assert result.recovered_ratio > 0.75
