"""Cluster scale-out: placement x partitioning-policy sweep.

Fleet-level extension of the paper's evaluation: N SATORI nodes share
one Poisson job stream, and placement policies compete over the same
paired environment (shared trace, node-keyed fault plans, node/epoch
seeds). Reports cluster-wide throughput/fairness per cell — the
"what happens when 32 SATORI nodes share a job stream?" experiment at
benchmark scale.

Also home of the ``BENCH_cluster.json`` perf artifact: a fast,
non-slow-marked run measuring cluster epochs/sec and per-scheme broker
decide latency, written on every tier-1 CI run so the perf trajectory
is visible across PRs (override the path with ``BENCH_CLUSTER_JSON``).
"""

import json
import os
import time

import pytest

from repro.cluster.simulator import ClusterSimulator
from repro.engine import ExecutionEngine
from repro.experiments import format_table
from repro.experiments.cluster import cluster_sweep, default_trace
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.obs import TraceCollector, use_collector

from common import run_once

N_NODES = 4
N_EPOCHS = 6
EPOCH_SECONDS = 8.0

#: Scale of the fast BENCH_cluster run — small enough for tier-1 CI.
#: Epochs are long enough (simulated seconds -> control intervals) that
#: per-node-epoch compute dominates the pool's per-spec IPC, so the
#: batched path's parallel speedup is visible rather than drowned in
#: dispatch overhead.
BENCH_NODES = 3
BENCH_EPOCHS = 4
BENCH_EPOCH_SECONDS = 6.0
BENCH_BROKERS = ("static", "harvest", "trade", "bo")


def _bench_path():
    return os.environ.get("BENCH_CLUSTER_JSON", "BENCH_cluster.json")


def _bench_workers():
    return max(2, min(BENCH_NODES, os.cpu_count() or 1))


def _timed_cluster_run(trace, catalog, epoch_config, broker=None,
                       engine=None, speculate=False):
    """One measured cluster run; returns (result, wall_s, collector)."""
    collector = TraceCollector()
    simulator = ClusterSimulator(
        trace, n_nodes=BENCH_NODES, catalog=catalog,
        epoch_config=epoch_config, policy="SATORI", seed=0,
        broker=broker, engine=engine, speculate=speculate,
    )
    started = time.perf_counter()
    with use_collector(collector):
        result = simulator.run()
    elapsed = time.perf_counter() - started
    assert elapsed > 0.0
    return result, elapsed, collector


def test_bench_cluster_artifact():
    """Measure cluster epochs/sec + broker decide latency, emit JSON.

    Deliberately not ``slow``-marked: tier-1 CI invokes this by path
    after the main suite and uploads the artifact. Wall-clock numbers
    are environment-dependent; the assertions only gate sanity (ran,
    positive rates, latencies recorded), never absolute speed.

    The broker schemes run through the batched data path (worker pool
    with blob spec transport + cross-epoch speculation); the
    ``batched`` section reruns one configuration through the scalar
    path (serial engine, no speculation) so every artifact carries its
    own batch-vs-scalar speedup — the number CI surfaces in the job
    summary and ``diff_bench.py`` tracks across runs.
    """
    catalog = experiment_catalog()
    trace = default_trace(
        n_epochs=BENCH_EPOCHS, n_nodes=BENCH_NODES, arrival_rate=1.5,
        seed=0, catalog=catalog,
    )
    epoch_config = RunConfig(duration_s=BENCH_EPOCH_SECONDS)

    schemes = {}
    # trace_workers=False: the bench only reads parent-side decide
    # spans; shipping every worker-interior span across the pool pipe
    # would swamp the measurement.
    with ExecutionEngine(
        workers=_bench_workers(), spec_transport="blob", trace_workers=False
    ) as engine:
        for broker in BENCH_BROKERS:
            result, elapsed, collector = _timed_cluster_run(
                trace, catalog, epoch_config, broker=broker,
                engine=engine, speculate=True,
            )
            decides = collector.spans_named("broker.decide")
            latencies_ms = sorted(e.duration_ns / 1e6 for e in decides)
            assert len(decides) == BENCH_EPOCHS
            schemes[broker] = {
                "wall_s": round(elapsed, 4),
                "epochs_per_s": round(BENCH_EPOCHS / elapsed, 3),
                "node_epochs_per_s": round(BENCH_NODES * BENCH_EPOCHS / elapsed, 3),
                "budget_transfers": result.budget_transfers,
                "decide_ms": {
                    "mean": round(sum(latencies_ms) / len(latencies_ms), 4),
                    "max": round(latencies_ms[-1], 4),
                    "total": round(sum(latencies_ms), 4),
                },
            }
            assert schemes[broker]["epochs_per_s"] > 0.0

        # Paired batch-vs-scalar comparison on one configuration: the
        # batched leg reuses the warm pool, the scalar leg is the
        # serial in-process engine the bench used before this path
        # existed. Results are bit-identical (tests/test_batched_eval
        # pins that); only the wall clock differs.
        batched_result, batched_s, batched_obs = _timed_cluster_run(
            trace, catalog, epoch_config, engine=engine, speculate=True,
        )
    scalar_result, scalar_s, _ = _timed_cluster_run(trace, catalog, epoch_config)
    assert scalar_result.mean_speedup == batched_result.mean_speedup
    assert scalar_result.fairness == batched_result.fairness
    counters = batched_obs.metrics.counters()
    batched = {
        "workers": _bench_workers(),
        "scalar_wall_s": round(scalar_s, 4),
        "batched_wall_s": round(batched_s, 4),
        "scalar_epochs_per_s": round(BENCH_EPOCHS / scalar_s, 3),
        "batched_epochs_per_s": round(BENCH_EPOCHS / batched_s, 3),
        "speedup": round(scalar_s / batched_s, 3),
        "speculative_submitted": int(counters.get("cluster.speculative_submitted", 0)),
        "speculative_hits": int(counters.get("cluster.speculative_hits", 0)),
        "speculative_cancelled": int(counters.get("cluster.speculative_cancelled", 0)),
        "blob_cache_hits": int(counters.get("engine.blob_cache_hits", 0)),
        "blob_cache_misses": int(counters.get("engine.blob_cache_misses", 0)),
    }

    report = {
        "benchmark": "cluster_broker",
        "n_nodes": BENCH_NODES,
        "n_epochs": BENCH_EPOCHS,
        "epoch_seconds": BENCH_EPOCH_SECONDS,
        "policy": "SATORI",
        "n_jobs": len(trace),
        "schemes": schemes,
        "batched": batched,
    }
    with open(_bench_path(), "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {_bench_path()}")
    print(format_table(
        ["broker", "epochs/s", "decide mean ms", "decide max ms", "transfers"],
        [
            [name, s["epochs_per_s"], s["decide_ms"]["mean"],
             s["decide_ms"]["max"], s["budget_transfers"]]
            for name, s in schemes.items()
        ],
        precision=3,
    ))
    print(
        f"batched vs scalar: {batched['batched_epochs_per_s']} vs "
        f"{batched['scalar_epochs_per_s']} epochs/s "
        f"({batched['speedup']}x, {batched['workers']} workers)"
    )


@pytest.mark.slow
def test_cluster_placement_sweep(benchmark):
    catalog = experiment_catalog()
    trace = default_trace(
        n_epochs=N_EPOCHS, n_nodes=N_NODES, arrival_rate=2.0, seed=0, catalog=catalog
    )
    sweep = run_once(
        benchmark,
        lambda: cluster_sweep(
            trace,
            n_nodes=N_NODES,
            placements=("round_robin", "least_loaded", "contention_aware"),
            policies=("SATORI", "EqualPartition"),
            catalog=catalog,
            epoch_config=RunConfig(duration_s=EPOCH_SECONDS),
            seed=0,
            fault_intensity=0.5,
        ),
    )

    rows = [
        [
            cell.placement,
            cell.policy,
            cell.result.mean_speedup,
            cell.result.fairness,
            cell.result.p10_speedup,
        ]
        for cell in sweep.cells
    ]
    print(
        f"\nCluster sweep — {N_NODES} nodes, {sweep.n_jobs} jobs over "
        f"{N_EPOCHS} epochs (faults on even nodes)"
    )
    print(
        format_table(
            ["placement", "policy", "mean speedup", "fairness", "p10"],
            rows,
            precision=3,
        )
    )

    for cell in sweep.cells:
        assert 0.0 < cell.result.fairness <= 1.0
        assert cell.result.mean_speedup > 0.0
    # SATORI should beat static partitioning on throughput under at
    # least one placement (the single-server result, surviving scale-out).
    satori = max(
        c.result.mean_speedup for c in sweep.cells if c.policy == "SATORI"
    )
    static = max(
        c.result.mean_speedup for c in sweep.cells if c.policy == "EqualPartition"
    )
    assert satori > 0.8 * static
