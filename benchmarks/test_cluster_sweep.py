"""Cluster scale-out: placement x partitioning-policy sweep.

Fleet-level extension of the paper's evaluation: N SATORI nodes share
one Poisson job stream, and placement policies compete over the same
paired environment (shared trace, node-keyed fault plans, node/epoch
seeds). Reports cluster-wide throughput/fairness per cell — the
"what happens when 32 SATORI nodes share a job stream?" experiment at
benchmark scale.

Also home of the ``BENCH_cluster.json`` perf artifact: a fast,
non-slow-marked run measuring cluster epochs/sec and per-scheme broker
decide latency, written on every tier-1 CI run so the perf trajectory
is visible across PRs (override the path with ``BENCH_CLUSTER_JSON``).
"""

import json
import os
import time

import pytest

from repro.cluster.simulator import ClusterSimulator
from repro.experiments import format_table
from repro.experiments.cluster import cluster_sweep, default_trace
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.obs import TraceCollector, use_collector

from common import run_once

N_NODES = 4
N_EPOCHS = 6
EPOCH_SECONDS = 8.0

#: Scale of the fast BENCH_cluster run — small enough for tier-1 CI.
BENCH_NODES = 3
BENCH_EPOCHS = 4
BENCH_EPOCH_SECONDS = 2.0
BENCH_BROKERS = ("static", "harvest", "trade", "bo")


def _bench_path():
    return os.environ.get("BENCH_CLUSTER_JSON", "BENCH_cluster.json")


def test_bench_cluster_artifact():
    """Measure cluster epochs/sec + broker decide latency, emit JSON.

    Deliberately not ``slow``-marked: tier-1 CI invokes this by path
    after the main suite and uploads the artifact. Wall-clock numbers
    are environment-dependent; the assertions only gate sanity (ran,
    positive rates, latencies recorded), never absolute speed.
    """
    catalog = experiment_catalog()
    trace = default_trace(
        n_epochs=BENCH_EPOCHS, n_nodes=BENCH_NODES, arrival_rate=1.5,
        seed=0, catalog=catalog,
    )
    epoch_config = RunConfig(duration_s=BENCH_EPOCH_SECONDS)

    schemes = {}
    for broker in BENCH_BROKERS:
        collector = TraceCollector()
        simulator = ClusterSimulator(
            trace, n_nodes=BENCH_NODES, catalog=catalog,
            epoch_config=epoch_config, policy="SATORI", seed=0,
            broker=broker,
        )
        started = time.perf_counter()
        with use_collector(collector):
            result = simulator.run()
        elapsed = time.perf_counter() - started
        decides = collector.spans_named("broker.decide")
        latencies_ms = sorted(e.duration_ns / 1e6 for e in decides)
        assert len(decides) == BENCH_EPOCHS
        assert elapsed > 0.0
        schemes[broker] = {
            "wall_s": round(elapsed, 4),
            "epochs_per_s": round(BENCH_EPOCHS / elapsed, 3),
            "node_epochs_per_s": round(BENCH_NODES * BENCH_EPOCHS / elapsed, 3),
            "budget_transfers": result.budget_transfers,
            "decide_ms": {
                "mean": round(sum(latencies_ms) / len(latencies_ms), 4),
                "max": round(latencies_ms[-1], 4),
                "total": round(sum(latencies_ms), 4),
            },
        }
        assert schemes[broker]["epochs_per_s"] > 0.0

    report = {
        "benchmark": "cluster_broker",
        "n_nodes": BENCH_NODES,
        "n_epochs": BENCH_EPOCHS,
        "epoch_seconds": BENCH_EPOCH_SECONDS,
        "policy": "SATORI",
        "n_jobs": len(trace),
        "schemes": schemes,
    }
    with open(_bench_path(), "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {_bench_path()}")
    print(format_table(
        ["broker", "epochs/s", "decide mean ms", "decide max ms", "transfers"],
        [
            [name, s["epochs_per_s"], s["decide_ms"]["mean"],
             s["decide_ms"]["max"], s["budget_transfers"]]
            for name, s in schemes.items()
        ],
        precision=3,
    ))


@pytest.mark.slow
def test_cluster_placement_sweep(benchmark):
    catalog = experiment_catalog()
    trace = default_trace(
        n_epochs=N_EPOCHS, n_nodes=N_NODES, arrival_rate=2.0, seed=0, catalog=catalog
    )
    sweep = run_once(
        benchmark,
        lambda: cluster_sweep(
            trace,
            n_nodes=N_NODES,
            placements=("round_robin", "least_loaded", "contention_aware"),
            policies=("SATORI", "EqualPartition"),
            catalog=catalog,
            epoch_config=RunConfig(duration_s=EPOCH_SECONDS),
            seed=0,
            fault_intensity=0.5,
        ),
    )

    rows = [
        [
            cell.placement,
            cell.policy,
            cell.result.mean_speedup,
            cell.result.fairness,
            cell.result.p10_speedup,
        ]
        for cell in sweep.cells
    ]
    print(
        f"\nCluster sweep — {N_NODES} nodes, {sweep.n_jobs} jobs over "
        f"{N_EPOCHS} epochs (faults on even nodes)"
    )
    print(
        format_table(
            ["placement", "policy", "mean speedup", "fairness", "p10"],
            rows,
            precision=3,
        )
    )

    for cell in sweep.cells:
        assert 0.0 < cell.result.fairness <= 1.0
        assert cell.result.mean_speedup > 0.0
    # SATORI should beat static partitioning on throughput under at
    # least one placement (the single-server result, surviving scale-out).
    satori = max(
        c.result.mean_speedup for c in sweep.cells if c.policy == "SATORI"
    )
    static = max(
        c.result.mean_speedup for c in sweep.cells if c.policy == "EqualPartition"
    )
    assert satori > 0.8 * static
