"""Cluster scale-out: placement x partitioning-policy sweep.

Fleet-level extension of the paper's evaluation: N SATORI nodes share
one Poisson job stream, and placement policies compete over the same
paired environment (shared trace, node-keyed fault plans, node/epoch
seeds). Reports cluster-wide throughput/fairness per cell — the
"what happens when 32 SATORI nodes share a job stream?" experiment at
benchmark scale.
"""

import pytest

from repro.experiments import format_table
from repro.experiments.cluster import cluster_sweep, default_trace
from repro.experiments.runner import RunConfig, experiment_catalog

from common import run_once

N_NODES = 4
N_EPOCHS = 6
EPOCH_SECONDS = 8.0


@pytest.mark.slow
def test_cluster_placement_sweep(benchmark):
    catalog = experiment_catalog()
    trace = default_trace(
        n_epochs=N_EPOCHS, n_nodes=N_NODES, arrival_rate=2.0, seed=0, catalog=catalog
    )
    sweep = run_once(
        benchmark,
        lambda: cluster_sweep(
            trace,
            n_nodes=N_NODES,
            placements=("round_robin", "least_loaded", "contention_aware"),
            policies=("SATORI", "EqualPartition"),
            catalog=catalog,
            epoch_config=RunConfig(duration_s=EPOCH_SECONDS),
            seed=0,
            fault_intensity=0.5,
        ),
    )

    rows = [
        [
            cell.placement,
            cell.policy,
            cell.result.mean_speedup,
            cell.result.fairness,
            cell.result.p10_speedup,
        ]
        for cell in sweep.cells
    ]
    print(
        f"\nCluster sweep — {N_NODES} nodes, {sweep.n_jobs} jobs over "
        f"{N_EPOCHS} epochs (faults on even nodes)"
    )
    print(
        format_table(
            ["placement", "policy", "mean speedup", "fairness", "p10"],
            rows,
            precision=3,
        )
    )

    for cell in sweep.cells:
        assert 0.0 < cell.result.fairness <= 1.0
        assert cell.result.mean_speedup > 0.0
    # SATORI should beat static partitioning on throughput under at
    # least one placement (the single-server result, surviving scale-out).
    satori = max(
        c.result.mean_speedup for c in sweep.cells if c.policy == "SATORI"
    )
    static = max(
        c.result.mean_speedup for c in sweep.cells if c.policy == "EqualPartition"
    )
    assert satori > 0.8 * static
