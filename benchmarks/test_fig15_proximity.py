"""Fig. 15: SATORI's configurations are the closest to the Balanced Oracle.

Paper findings: (a) averaged over a mix's runtime, SATORI's installed
configuration is the closest to the Balanced Oracle's, with every
other technique at least 1.3x farther; (b) SATORI tracks the optimum
across phase changes better than PARTIES.
"""

import numpy as np

from repro.experiments import distance_to_oracle, experiment_catalog, format_table
from repro.experiments.runner import RunConfig
from repro.workloads.mixes import suite_mixes

from common import RUN_SECONDS, run_once


def test_fig15_configuration_proximity(benchmark):
    catalog = experiment_catalog()
    mix = suite_mixes("parsec")[17]

    result = run_once(
        benchmark,
        lambda: distance_to_oracle(
            mix, catalog, RunConfig(duration_s=RUN_SECONDS), seed=2
        ),
    )

    print(f"\nFig. 15(a) — mean distance to the Balanced Oracle config ({mix.label})")
    relative = result.relative_to("SATORI")
    print(
        format_table(
            ["policy", "mean distance", "x SATORI"],
            [
                [name, result.mean_distance[name], relative[name]]
                for name in sorted(result.mean_distance, key=result.mean_distance.get)
            ],
            precision=2,
        )
    )

    print("\nFig. 15(b) — distance over time, SATORI vs PARTIES (2 s samples)")
    times = result.times
    for name in ("SATORI", "PARTIES"):
        series = result.distance_series[name]
        samples = " ".join(
            f"{series[i]:.1f}" for i in range(0, len(series), 20)
        )
        print(f"  {name:8s} {samples}")

    # SATORI installs the closest configurations.
    for name, distance in result.mean_distance.items():
        if name != "SATORI":
            assert result.mean_distance["SATORI"] <= distance * 1.05, (
                f"{name} should sit farther from the oracle than SATORI"
            )
    # Random thrashes far away (the paper's >= 1.3x holds loosely here).
    assert relative["Random"] >= 1.2
