"""Extension: metric robustness (Sec. IV claim).

"Our evaluation confirmed that SATORI provides similar improvements
over competing techniques for other commonly-used objective metrics."
This bench sweeps throughput metric (sum-of-IPS, geometric mean,
harmonic mean) and fairness metric (Jain, 1-CoV) on one mix.
"""

from repro.experiments import format_table
from repro.experiments.extensions import metric_sweep
from repro.experiments.runner import RunConfig
from repro.workloads.mixes import suite_mixes

from common import RUN_SECONDS, run_once


def test_extension_metric_sweep(benchmark):
    mix = suite_mixes("parsec")[17]

    results = run_once(
        benchmark,
        lambda: metric_sweep(
            mix,
            RunConfig(duration_s=RUN_SECONDS),
            seed=0,
            include=("PARTIES", "SATORI"),
        ),
    )

    print(f"\nExtension — metric sweep ({mix.label}, % of Balanced Oracle)")
    rows = []
    for (t_metric, f_metric), scores in results.items():
        satori = scores["SATORI"]
        parties = scores["PARTIES"]
        rows.append(
            [
                t_metric,
                f_metric,
                f"{satori[0]:.0f}/{satori[1]:.0f}",
                f"{parties[0]:.0f}/{parties[1]:.0f}",
            ]
        )
    print(format_table(["throughput metric", "fairness metric", "SATORI T/F", "PARTIES T/F"], rows))

    # SATORI's advantage is not an artifact of one metric choice: under
    # every combination it beats PARTIES on throughput.
    wins = sum(
        scores["SATORI"][0] > scores["PARTIES"][0] for scores in results.values()
    )
    assert wins >= len(results) - 1, "SATORI must lead under (almost) every metric choice"
