"""QoS sweep benchmark: the SLO-guarantee contract under shared traffic.

The SLO-aware-scheduling acceptance run: a 3-node cluster replays
paired flash-crowd and diurnal arrival traces (a quarter of arrivals
tagged ``"qos"``) under an enforced speedup-floor SLO, once per
partitioning policy. Every policy faces bit-identical traces and
node-epoch seeds, so the attainment gap is the policy's doing. The
asserted contract: BoPF's bounded-priority guarantee phase strictly
beats plain SATORI's qos attainment on the flash-crowd shape, while
giving up no more than ``FAIRNESS_BOUND`` of batch fairness.

Also home of the ``BENCH_qos.json`` artifact: a fast, non-slow-marked
run written on every tier-1 CI pass so the attainment trajectory is
visible across PRs (override the path with ``BENCH_QOS_JSON``).
"""

import json
import os
import time

import pytest

from repro.experiments import format_table
from repro.experiments.qos import DEFAULT_QOS_SLO, qos_sweep

from common import run_once

#: Scale of the fast BENCH_qos run — small enough for tier-1 CI.
BENCH_NODES = 3
BENCH_EPOCHS = 8
BENCH_EPOCH_SECONDS = 4.0
BENCH_SEEDS = (0, 1, 2)
BENCH_FRACTION = 0.25

#: The documented fairness bound: BoPF may spend at most this much
#: disruption-adjusted batch fairness (vs plain SATORI, same traces)
#: buying qos attainment. Measured headroom is ~10x: the observed
#: flash-crowd delta is about -0.005 for a +0.12 attainment gain.
FAIRNESS_BOUND = 0.05

#: Scale of the slow-marked sweep (two qos fractions, more seeds).
N_SEEDS = (0, 1, 2, 3)
N_FRACTIONS = (0.25, 0.4)


def _bench_path():
    return os.environ.get("BENCH_QOS_JSON", "BENCH_qos.json")


def _report_rows(report):
    rows = []
    for shape in report.shapes:
        for policy in report.policies:
            rows.append([
                shape, policy,
                round(report.attainment(shape, policy), 4),
                round(report.fairness(shape, policy), 4),
            ])
    return rows


def test_bench_qos_artifact():
    """Paired SLO sweep: BoPF buys flash-crowd attainment, fairness held.

    Deliberately not ``slow``-marked: tier-1 CI invokes this by path
    after the main suite and uploads the artifact. The assertions gate
    the guarantee contract (BoPF strictly above SATORI on flash-crowd
    attainment, batch fairness within ``FAIRNESS_BOUND``, both trace
    shapes reported), never wall-clock speed.
    """
    started = time.perf_counter()
    report = qos_sweep(
        policies=("SATORI", "BoPF", "QoSPARTIES"),
        qos_fractions=(BENCH_FRACTION,),
        trace_seeds=BENCH_SEEDS,
        n_nodes=BENCH_NODES,
        n_epochs=BENCH_EPOCHS,
        slo=DEFAULT_QOS_SLO,
    )
    elapsed = time.perf_counter() - started

    # The SLO-guarantee contract, asserted at benchmark scale.
    assert set(report.shapes) >= {"flash_crowd", "diurnal"}
    assert report.attainment_delta("flash_crowd", "BoPF") > 0, (
        "BoPF's guarantee phase must strictly improve flash-crowd qos "
        "attainment over plain SATORI"
    )
    for shape in report.shapes:
        assert abs(report.fairness_delta(shape, "BoPF")) <= FAIRNESS_BOUND, (
            f"BoPF spent more than the documented fairness bound on {shape}"
        )
    # Every cell actually hosted qos jobs — the sweep is not vacuous.
    assert all(cell.qos_jobs > 0 for cell in report.cells)

    payload = report.to_dict()
    payload.update(
        benchmark="qos_sweep",
        wall_s=round(elapsed, 4),
        epochs_per_s=round(
            len(report.cells) * BENCH_EPOCHS / elapsed, 3
        ),
        fairness_bound=FAIRNESS_BOUND,
    )
    with open(_bench_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {_bench_path()}")
    print(format_table(
        ["shape", "policy", "attainment", "adj fairness"],
        _report_rows(report),
        precision=4,
    ))


@pytest.mark.slow
def test_qos_sweep_at_scale(benchmark):
    report = run_once(
        benchmark,
        lambda: qos_sweep(
            policies=("SATORI", "BoPF", "QoSPARTIES"),
            qos_fractions=N_FRACTIONS,
            trace_seeds=N_SEEDS,
            n_nodes=BENCH_NODES,
            n_epochs=BENCH_EPOCHS,
            slo=DEFAULT_QOS_SLO,
        ),
    )
    print(f"\nQoS sweep — {len(report.cells)} cells, fractions "
          f"{list(report.qos_fractions)}, seeds {list(report.trace_seeds)}")
    print(format_table(
        ["shape", "policy", "attainment", "adj fairness"],
        _report_rows(report),
        precision=4,
    ))
    assert report.attainment_delta("flash_crowd", "BoPF") > 0
    for shape in report.shapes:
        assert abs(report.fairness_delta(shape, "BoPF")) <= FAIRNESS_BOUND
