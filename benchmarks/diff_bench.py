"""Compare BENCH_*.json perf artifacts against a previous run.

CI calls this after the benchmark steps with the previous successful
run's artifacts downloaded into a directory::

    python benchmarks/diff_bench.py previous-bench/ . --threshold 0.2

Every known artifact present on both sides is diffed metric by metric:

* a change worse than the threshold (default 20%) prints a warning
  (and a ``::warning`` annotation under GitHub Actions);
* a change *better* than the threshold prints a ``good`` line (and a
  ``::notice`` annotation) — improvements are reported, not just
  regressions;
* schema drift degrades gracefully: metrics present on only one side
  (new metric, or dropped metric) print a ``note`` instead of
  crashing or silently vanishing, and when an artifact's *scale
  context* changed (node count, epoch count, epoch length), its raw
  wall-clock metrics are skipped with an explicit note — comparing
  epochs/sec across different workload sizes would warn in both
  directions for no reason.

``--summary FILE`` appends a GitHub-flavored markdown digest (pass
``"$GITHUB_STEP_SUMMARY"`` in CI). The exit code is 0 unless
``--strict`` is given — perf numbers from shared CI runners are too
noisy to gate merges on, so regressions warn rather than fail.

Stdlib-only on purpose: runnable before the package is installed, or
against artifact directories on a laptop.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterator, List, Tuple

#: Artifact file -> comparison plan. ``metrics`` maps dotted paths to a
#: direction (``*`` in a path fans out over dict keys; direction says
#: which way is better, so "regression" always means "worse").
#: ``context`` lists scale keys: when any differs between the two
#: artifacts, the workload changed shape and raw rates are skipped.
ARTIFACTS = {
    "BENCH_cluster.json": {
        "metrics": [
            ("schemes.*.epochs_per_s", "higher"),
            ("schemes.*.decide_ms.mean", "lower"),
            ("schemes.*.decide_ms.max", "lower"),
            ("batched.batched_epochs_per_s", "higher"),
            ("batched.scalar_epochs_per_s", "higher"),
            ("batched.speedup", "higher"),
        ],
        "context": ["n_nodes", "n_epochs", "epoch_seconds", "batched.workers"],
    },
    "BENCH_chaos.json": {
        "metrics": [
            ("epochs_per_s", "higher"),
        ],
        "context": ["n_nodes", "n_epochs", "epoch_seconds"],
    },
    "BENCH_serve.json": {
        "metrics": [
            ("sessions_per_sec", "higher"),
            ("steps_per_sec", "higher"),
            ("decision_latency_p50_ms", "lower"),
            ("decision_latency_p99_ms", "lower"),
        ],
        "context": ["sessions", "n_epochs"],
    },
    # SLO attainment is one-sided: losing attainment is a regression,
    # gaining it is an improvement. Fairness likewise. First runs (no
    # previous BENCH_qos.json) skip gracefully like any absent artifact.
    "BENCH_qos.json": {
        "metrics": [
            ("shapes.*.*.attainment", "higher"),
            ("shapes.*.*.fairness", "higher"),
            ("epochs_per_s", "higher"),
        ],
        "context": ["n_nodes", "n_epochs", "epoch_seconds",
                    "slo.min_speedup"],
    },
}


def extract(data, path: str) -> Iterator[Tuple[str, float]]:
    """Yield ``(label, value)`` for a dotted path; ``*`` fans out.

    Tolerant of schema drift by construction: missing keys, non-dict
    intermediates, and non-numeric leaves yield nothing rather than
    raising, so a renamed or removed metric can never crash the diff.
    """
    head, _, rest = path.partition(".")
    if head == "*":
        if isinstance(data, dict):
            for key in sorted(data):
                for label, value in extract(data[key], rest):
                    yield (f"{key}.{label}" if label else key), value
        return
    if isinstance(data, dict) and head in data:
        if rest:
            for label, value in extract(data[head], rest):
                yield (f"{head}.{label}" if label else head), value
        elif isinstance(data[head], (int, float)) and not isinstance(data[head], bool):
            yield head, float(data[head])


def lookup(data, path: str):
    """Value at a dotted path (no wildcards), or None when absent."""
    for part in path.split("."):
        if not isinstance(data, dict) or part not in data:
            return None
        data = data[part]
    return data


def regression(previous: float, current: float, direction: str) -> float:
    """Fractional change in the *worse* direction (negative = improved)."""
    if previous == 0:
        return 0.0
    delta = (current - previous) / abs(previous)
    return -delta if direction == "higher" else delta


def context_changes(name: str, previous: dict, current: dict) -> List[str]:
    """Scale-context keys whose values differ between the two sides."""
    changes = []
    for key in ARTIFACTS[name].get("context", []):
        prev, cur = lookup(previous, key), lookup(current, key)
        if prev != cur:
            changes.append(f"{key} {prev} -> {cur}")
    return changes


def diff_artifact(name: str, previous: dict, current: dict,
                  threshold: float) -> Tuple[List[str], List[str], List[str]]:
    """Diff one artifact; returns (warnings, improvements, notes)."""
    warnings: List[str] = []
    improvements: List[str] = []
    notes: List[str] = []

    changed = context_changes(name, previous, current)
    if changed:
        notes.append(
            f"{name}: benchmark scale changed ({'; '.join(changed)}); "
            "raw metric comparisons skipped"
        )
        return warnings, improvements, notes

    for path, direction in ARTIFACTS[name]["metrics"]:
        prev_values = dict(extract(previous, path))
        cur_values = dict(extract(current, path))
        if not prev_values and not cur_values:
            continue
        for label in sorted(set(prev_values) - set(cur_values)):
            notes.append(f"{name}: {label} dropped (was {prev_values[label]:.4g})")
        for label in sorted(set(cur_values) - set(prev_values)):
            notes.append(
                f"{name}: {label} is new (no previous value; now "
                f"{cur_values[label]:.4g})"
            )
        for label in sorted(set(cur_values) & set(prev_values)):
            prev, cur = prev_values[label], cur_values[label]
            worse = regression(prev, cur, direction)
            arrow = "worse" if worse > 0 else "better"
            line = (f"{name}: {label} {prev:.4g} -> {cur:.4g} "
                    f"({abs(worse):.1%} {arrow})")
            if worse > threshold:
                warnings.append(line)
            elif -worse > threshold:
                improvements.append(line)
                print(f"  good  {line}")
            else:
                print(f"  ok    {line}")
    return warnings, improvements, notes


def load(path: str):
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def write_summary(path: str, compared: int, warnings: List[str],
                  improvements: List[str], notes: List[str],
                  threshold: float) -> None:
    """Append a markdown digest (``$GITHUB_STEP_SUMMARY`` format)."""
    lines = ["## Bench diff", ""]
    lines.append(
        f"Compared {compared} artifact(s) at a ±{threshold:.0%} threshold: "
        f"{len(warnings)} regression(s), {len(improvements)} improvement(s)."
    )
    for title, rows, mark in (
        ("Regressions", warnings, "⚠️"),
        ("Improvements", improvements, "✅"),
        ("Notes", notes, "ℹ️"),
    ):
        if rows:
            lines += ["", f"### {title}", ""]
            lines += [f"- {mark} {row}" for row in rows]
    lines.append("")
    with open(path, "a") as handle:
        handle.write("\n".join(lines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json artifacts against a previous run")
    parser.add_argument("previous", help="directory with the previous run's artifacts")
    parser.add_argument("current", nargs="?", default=".",
                        help="directory with this run's artifacts (default: .)")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="report when a metric moves this fraction (default 0.2)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when any metric regresses")
    parser.add_argument("--summary", metavar="FILE", default=None,
                        help="append a markdown digest to FILE "
                             "(e.g. \"$GITHUB_STEP_SUMMARY\")")
    args = parser.parse_args(argv)

    warnings: List[str] = []
    improvements: List[str] = []
    notes: List[str] = []
    compared = 0
    for name in ARTIFACTS:
        previous = load(os.path.join(args.previous, name))
        current = load(os.path.join(args.current, name))
        if previous is None or current is None:
            side = "previous" if previous is None else "current"
            print(f"  skip  {name}: no {side} artifact")
            continue
        compared += 1
        warned, improved, noted = diff_artifact(
            name, previous, current, args.threshold)
        warnings.extend(warned)
        improvements.extend(improved)
        notes.extend(noted)

    for line in notes:
        print(f"  note  {line}")
    for line in warnings:
        message = f"perf regression >{args.threshold:.0%}: {line}"
        print(f"  WARN  {message}")
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::warning title=bench regression::{message}")
    if os.environ.get("GITHUB_ACTIONS"):
        for line in improvements:
            print(f"::notice title=bench improvement::{line}")

    print(f"compared {compared} artifact(s), {len(warnings)} regression(s), "
          f"{len(improvements)} improvement(s)")
    if args.summary:
        write_summary(args.summary, compared, warnings, improvements, notes,
                      args.threshold)
    return 1 if (args.strict and warnings) else 0


if __name__ == "__main__":
    sys.exit(main())
