"""Compare BENCH_*.json perf artifacts against a previous run.

CI calls this after the benchmark steps with the previous successful
run's artifacts downloaded into a directory::

    python benchmarks/diff_bench.py previous-bench/ . --threshold 0.2

Every known artifact present on both sides is diffed metric by metric;
a change worse than the threshold (default 20%) prints a warning (and
a ``::warning`` annotation under GitHub Actions). The exit code is 0
unless ``--strict`` is given — perf numbers from shared CI runners are
too noisy to gate merges on, so regressions warn rather than fail.

Stdlib-only on purpose: runnable before the package is installed, or
against artifact directories on a laptop.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterator, List, Tuple

#: Artifact file -> (metric path, direction). ``*`` in a path fans out
#: over the keys of a dict (e.g. one row per broker scheme). Direction
#: says which way is better, so "regression" always means "worse".
ARTIFACTS = {
    "BENCH_cluster.json": [
        ("schemes.*.epochs_per_s", "higher"),
        ("schemes.*.decide_ms.mean", "lower"),
        ("schemes.*.decide_ms.max", "lower"),
    ],
    "BENCH_chaos.json": [
        ("epochs_per_s", "higher"),
    ],
    "BENCH_serve.json": [
        ("sessions_per_sec", "higher"),
        ("steps_per_sec", "higher"),
        ("decision_latency_p50_ms", "lower"),
        ("decision_latency_p99_ms", "lower"),
    ],
}


def extract(data, path: str) -> Iterator[Tuple[str, float]]:
    """Yield ``(label, value)`` for a dotted path; ``*`` fans out."""
    head, _, rest = path.partition(".")
    if head == "*":
        if isinstance(data, dict):
            for key in sorted(data):
                for label, value in extract(data[key], rest):
                    yield (f"{key}.{label}" if label else key), value
        return
    if isinstance(data, dict) and head in data:
        if rest:
            for label, value in extract(data[head], rest):
                yield (f"{head}.{label}" if label else head), value
        elif isinstance(data[head], (int, float)) and not isinstance(data[head], bool):
            yield head, float(data[head])


def regression(previous: float, current: float, direction: str) -> float:
    """Fractional change in the *worse* direction (negative = improved)."""
    if previous == 0:
        return 0.0
    delta = (current - previous) / abs(previous)
    return -delta if direction == "higher" else delta


def diff_artifact(name: str, previous: dict, current: dict,
                  threshold: float) -> List[str]:
    """Return warning lines for metrics regressing past the threshold."""
    warnings = []
    for path, direction in ARTIFACTS[name]:
        prev_values = dict(extract(previous, path))
        for label, cur in extract(current, path):
            if label not in prev_values:
                continue
            prev = prev_values[label]
            worse = regression(prev, cur, direction)
            arrow = "worse" if worse > 0 else "better"
            line = (f"{name}: {label} {prev:.4g} -> {cur:.4g} "
                    f"({abs(worse):.1%} {arrow})")
            if worse > threshold:
                warnings.append(line)
            else:
                print(f"  ok    {line}")
    return warnings


def load(path: str):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json artifacts against a previous run")
    parser.add_argument("previous", help="directory with the previous run's artifacts")
    parser.add_argument("current", nargs="?", default=".",
                        help="directory with this run's artifacts (default: .)")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="warn when a metric is this fraction worse (default 0.2)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when any metric regresses")
    args = parser.parse_args(argv)

    warnings: List[str] = []
    compared = 0
    for name in ARTIFACTS:
        previous = load(os.path.join(args.previous, name))
        current = load(os.path.join(args.current, name))
        if previous is None or current is None:
            side = "previous" if previous is None else "current"
            print(f"  skip  {name}: no {side} artifact")
            continue
        compared += 1
        warnings.extend(diff_artifact(name, previous, current, args.threshold))

    for line in warnings:
        message = f"perf regression >{args.threshold:.0%}: {line}"
        print(f"  WARN  {message}")
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::warning title=bench regression::{message}")

    print(f"compared {compared} artifact(s), {len(warnings)} regression(s)")
    return 1 if (args.strict and warnings) else 0


if __name__ == "__main__":
    sys.exit(main())
