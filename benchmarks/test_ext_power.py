"""Extension: power capping as a fourth partitioned resource.

The paper's conclusion claims SATORI "can effectively handle computing
cores, LLC ways, memory bandwidth, and power-cap resources". This
bench runs SATORI over the four-resource space (RAPL power units
included) and compares against a power-oblivious equal split on the
same power-constrained server.
"""

from repro.experiments import format_table
from repro.experiments.extensions import power_capped_partitioning
from repro.experiments.runner import RunConfig
from repro.workloads.mixes import suite_mixes

from common import RUN_SECONDS, run_once


def test_extension_power_capped_partitioning(benchmark):
    mix = suite_mixes("parsec")[17]

    result = run_once(
        benchmark,
        lambda: power_capped_partitioning(
            mix, RunConfig(duration_s=RUN_SECONDS), seed=0
        ),
    )

    print(f"\nExtension — four-resource partitioning incl. power ({mix.label})")
    print(
        format_table(
            ["policy", "throughput", "fairness"],
            [
                [
                    "SATORI (cores+LLC+BW+power)",
                    result.satori_four_resource.throughput,
                    result.satori_four_resource.fairness,
                ],
                [
                    "equal split (all four)",
                    result.equal_partition.throughput,
                    result.equal_partition.fairness,
                ],
            ],
            precision=3,
        )
    )
    print(
        f"\nSATORI gain over equal split: {result.throughput_gain_percent:+.1f} % T, "
        f"{result.fairness_gain_percent:+.1f} % F"
    )

    final = result.satori_four_resource.telemetry[-1].config
    assert final.partitions("power"), "SATORI must actively partition the power budget"
    combined_satori = (
        result.satori_four_resource.throughput + result.satori_four_resource.fairness
    )
    combined_equal = result.equal_partition.throughput + result.equal_partition.fairness
    assert combined_satori >= combined_equal * 0.95
