"""Engine scaling: serial vs multi-worker wall time on a comparison grid.

Records how long the same 4-mix x 6-run comparison batch takes with
one worker versus a process fan-out, plus the warm-cache replay time.
No speedup is asserted — the figure machines this runs on range from
laptops to single-core CI boxes where process fan-out cannot win — but
the printed table makes regressions in engine overhead visible, and
the warm-cache replay must stay orders of magnitude below recompute.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import ExecutionEngine, RunCache
from repro.experiments import compare_on_mixes, experiment_catalog
from repro.experiments.runner import RunConfig
from repro.workloads.mixes import suite_mixes

from common import run_once

RUN_CONFIG = RunConfig(duration_s=5.0)
WORKER_COUNTS = (1, 4)


@pytest.mark.slow
def test_engine_scaling(benchmark, tmp_path):
    catalog = experiment_catalog()
    mixes = suite_mixes("parsec", mix_size=2)[:4]

    timings = {}
    results = {}
    for workers in WORKER_COUNTS:
        started = time.perf_counter()
        results[workers] = compare_on_mixes(
            mixes, catalog, RUN_CONFIG, seed=0, engine=ExecutionEngine(workers=workers)
        )
        timings[f"{workers} worker(s)"] = time.perf_counter() - started

    cache = RunCache(tmp_path)
    compare_on_mixes(
        mixes, catalog, RUN_CONFIG, seed=0, engine=ExecutionEngine(cache=cache)
    )
    warm_engine = ExecutionEngine(cache=cache)
    warm = run_once(
        benchmark,
        lambda: compare_on_mixes(mixes, catalog, RUN_CONFIG, seed=0, engine=warm_engine),
    )

    print("\nEngine scaling (4 mixes x 6 runs, 5 s each):")
    for label, seconds in timings.items():
        print(f"  {label:>12}: {seconds:7.2f} s")
    print(f"  {'warm cache':>12}: {benchmark.stats['mean']:7.2f} s "
          f"({warm_engine.stats.summary()})")

    # Correctness invariants ride along with the timing: fan-out and
    # cache replay must reproduce the serial tables exactly.
    serial_tables = [c.scores for c in results[1]]
    for workers in WORKER_COUNTS[1:]:
        assert [c.scores for c in results[workers]] == serial_tables
    assert [c.scores for c in warm] == serial_tables
    assert warm_engine.stats.executed == 0
