"""Observability overhead guard: the disabled path must be ~free.

The instrumentation added to the controller, session, engine, and
cluster layers runs on every control interval, so it ships enabled-by-
default only because the default :data:`~repro.obs.NULL_COLLECTOR`
makes each probe an attribute read plus an empty call. This bench
pins that claim two ways:

* a microbenchmark of the null probe itself (span + counter + event),
  asserted well under the microsecond scale that could matter at the
  paper's 100 ms control interval;
* an end-to-end engine batch, where the extrapolated total probe cost
  must stay under 5% of the batch wall time — the acceptance bound for
  throughput regression with tracing disabled.

A live-collector run of the identical batch rides along to report the
enabled-path cost and to assert the observability invariant: collection
is purely observational, so instrumented and uninstrumented runs must
produce bit-identical tables.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import ExecutionEngine
from repro.experiments import compare_on_mixes, experiment_catalog
from repro.experiments.runner import RunConfig
from repro.obs import TraceCollector, active_collector, use_collector
from repro.workloads.mixes import suite_mixes

#: Iterations for the null-probe microbenchmark.
N_PROBES = 200_000

#: Generous per-probe ceiling for the disabled path; the measured cost
#: is typically tens of nanoseconds, but CI boxes jitter.
NULL_PROBE_CEILING_S = 5e-6

#: Acceptance bound: probes may cost at most this fraction of an
#: uninstrumented engine batch.
MAX_NULL_OVERHEAD_FRACTION = 0.05

#: Probes per control interval on the hottest path (session interval +
#: decide + suggest + gp_fit + acquisition + actuation spans, plus a
#: few counters inside the GP) — deliberately over-counted.
PROBES_PER_INTERVAL = 12

RUN_CONFIG = RunConfig(duration_s=5.0)


def _null_probe_seconds() -> float:
    """Mean cost of one disabled span probe (lookup + enter + exit)."""
    started = time.perf_counter()
    for _ in range(N_PROBES):
        with active_collector().span("bench", "obs"):
            pass
    return (time.perf_counter() - started) / N_PROBES


@pytest.mark.slow
def test_null_probe_is_nanoscale():
    assert active_collector().enabled is False  # default must be the null path
    per_probe = _null_probe_seconds()
    print(f"\nnull probe: {per_probe * 1e9:.0f} ns "
          f"(ceiling {NULL_PROBE_CEILING_S * 1e9:.0f} ns)")
    assert per_probe < NULL_PROBE_CEILING_S


@pytest.mark.slow
def test_engine_throughput_overhead_under_bound():
    catalog = experiment_catalog()
    mixes = suite_mixes("parsec", mix_size=2)[:2]

    def batch():
        return compare_on_mixes(
            mixes, catalog, RUN_CONFIG, seed=0, engine=ExecutionEngine(workers=1)
        )

    # Uninstrumented (default NullCollector) reference run.
    started = time.perf_counter()
    null_results = batch()
    null_seconds = time.perf_counter() - started

    # Extrapolated cost of every probe the batch executed: intervals
    # per run x runs per mix x mixes, over-counted probes per interval.
    n_intervals = RUN_CONFIG.n_steps * 6 * len(mixes)
    probe_seconds = _null_probe_seconds() * PROBES_PER_INTERVAL * n_intervals
    fraction = probe_seconds / null_seconds

    # Live collector: identical batch, plus the observational invariant.
    collector = TraceCollector()
    started = time.perf_counter()
    with use_collector(collector):
        live_results = batch()
    live_seconds = time.perf_counter() - started

    print(f"\nengine batch ({len(mixes)} mixes x 6 runs, {RUN_CONFIG.duration_s:g} s):")
    print(f"  disabled (default): {null_seconds:6.2f} s")
    print(f"  probe cost bound:   {probe_seconds * 1e3:6.1f} ms "
          f"({100 * fraction:.2f}% of batch; limit "
          f"{100 * MAX_NULL_OVERHEAD_FRACTION:.0f}%)")
    print(f"  live collector:     {live_seconds:6.2f} s "
          f"({len(collector.events)} events)")

    assert fraction < MAX_NULL_OVERHEAD_FRACTION
    # Collection is purely observational: same seeds, same tables.
    assert [c.scores for c in live_results] == [c.scores for c in null_results]
    assert len(collector.events) > 0
