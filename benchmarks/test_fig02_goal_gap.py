"""Fig. 2 / Observation 2: throughput- and fairness-optimal configs differ.

Paper findings at one instant: the two optimal configurations differ
by up to 40 %; the throughput-optimal config reaches only 67 % of the
optimal fairness and the fairness-optimal config only 59 % of the
optimal throughput; averaging the two optima or alternating between
them stays well below the Balanced Oracle.
"""

import numpy as np

from repro.experiments import conflicting_goal_gap, experiment_catalog, format_table
from repro.workloads.mixes import suite_mixes

from common import run_once


def test_fig02_conflicting_goal_gap(benchmark):
    catalog = experiment_catalog()
    mix = suite_mixes("parsec")[0]

    def compute():
        return [conflicting_goal_gap(mix, catalog, time_s=t) for t in (0.0, 4.0, 8.0)]

    gaps = run_once(benchmark, compute)

    print(f"\nFig. 2 — goal conflict over three instants ({mix.label})")
    rows = []
    for gap in gaps:
        rows.append(
            [
                gap.time_s,
                f"{gap.throughput_opt[0]:.3f}/{gap.throughput_opt[1]:.3f}",
                f"{gap.fairness_opt[0]:.3f}/{gap.fairness_opt[1]:.3f}",
                f"{gap.balanced_opt[0]:.3f}/{gap.balanced_opt[1]:.3f}",
                f"{gap.config_distance:.1f}/{gap.max_distance:.1f}",
            ]
        )
    print(format_table(["t (s)", "T-opt (T/F)", "F-opt (T/F)", "Balanced (T/F)", "distance"], rows))

    cross_f = np.mean([g.cross_fairness_ratio for g in gaps])
    cross_t = np.mean([g.cross_throughput_ratio for g in gaps])
    print(f"\nT-opt achieves {100 * cross_f:.0f} % of optimal fairness (paper: 67 %)")
    print(f"F-opt achieves {100 * cross_t:.0f} % of optimal throughput (paper: 59 %)")

    for gap in gaps:
        # The optima genuinely conflict...
        assert gap.cross_fairness_ratio < 0.97
        assert gap.cross_throughput_ratio < 0.97
        assert gap.config_distance > 0
        # ...and naive compromises do not reach the Balanced Oracle.
        balanced = 0.5 * sum(gap.balanced_opt)
        assert 0.5 * sum(gap.average_config) <= balanced + 1e-9
        assert 0.5 * sum(gap.alternating) <= balanced + 1e-9
