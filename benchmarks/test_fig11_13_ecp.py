"""Figs. 11 & 13: ECP per-mix and aggregate results.

Paper findings: SATORI outperforms the competition across the 10
two-job ECP mixes (+15 points throughput and fairness over PARTIES);
the minife+swfft mix is SATORI's hardest (both want the LLC), and the
amg+hypre mix its easiest (similar requirements, easy search space).
"""

from repro.experiments import STANDARD_POLICY_ORDER, aggregate, format_table

from common import run_once, suite_comparisons


def test_fig11_13_ecp(benchmark):
    comparisons = run_once(benchmark, lambda: suite_comparisons("ecp"))
    agg = aggregate(comparisons, STANDARD_POLICY_ORDER)

    print("\nFig. 11 — per-mix ECP results (% of Balanced Oracle, T/F)")
    ordered = sorted(comparisons, key=lambda c: c.score("SATORI").throughput_vs_oracle)
    rows = []
    for comparison in ordered:
        row = [comparison.mix_label]
        for name in STANDARD_POLICY_ORDER:
            score = comparison.score(name)
            row.append(f"{score.throughput_vs_oracle:.0f}/{score.fairness_vs_oracle:.0f}")
        rows.append(row)
    print(format_table(["mix"] + list(STANDARD_POLICY_ORDER), rows))

    print("\nFig. 13 — ECP aggregate (% of Balanced Oracle)")
    print(
        format_table(
            ["policy", "throughput %", "fairness %"],
            [[name, t, f] for name, (t, f) in agg.items()],
        )
    )

    satori_t, satori_f = agg["SATORI"]
    assert satori_t >= 88.0
    assert satori_f >= 92.0
    assert satori_t >= agg["PARTIES"][0] - 3.0
    assert agg["Random"][0] < agg["CoPart"][0]

    # The amg+hypre mix is among SATORI's best (paper's mix-9 analysis).
    by_label = {c.mix_label: c.score("SATORI").throughput_vs_oracle for c in comparisons}
    amg_hypre = by_label["amg+hypre"]
    median = sorted(by_label.values())[len(by_label) // 2]
    assert amg_hypre >= median - 6.0
