"""Fig. 7: PARSEC aggregate — SATORI beats all techniques on both goals.

Paper findings (21 five-job mixes, % of Balanced Oracle): SATORI
reaches 92 % on throughput and fairness, +14 points over the next
best technique (PARTIES) on both; ordering Random < dCAT < CoPart <
PARTIES < SATORI.
"""

from repro.experiments import STANDARD_POLICY_ORDER, aggregate, format_table

from common import run_once, suite_comparisons


def test_fig07_parsec_aggregate(benchmark):
    comparisons = run_once(benchmark, lambda: suite_comparisons("parsec"))
    agg = aggregate(comparisons, STANDARD_POLICY_ORDER)

    print("\nFig. 7 — PARSEC aggregate (% of Balanced Oracle, 21 mixes)")
    print(
        format_table(
            ["policy", "throughput %", "fairness %"],
            [[name, t, f] for name, (t, f) in agg.items()],
        )
    )

    satori_t, satori_f = agg["SATORI"]
    parties_t, parties_f = agg["PARTIES"]

    # Headline shape: SATORI near the oracle and ahead of PARTIES.
    assert satori_t >= 85.0, "SATORI should be near the Balanced Oracle (paper: 92 %)"
    assert satori_f >= 85.0
    assert satori_t > parties_t + 5.0, "paper: +14 points over PARTIES on throughput"

    # Throughput ordering of the baselines (paper Fig. 7(a)).
    assert agg["Random"][0] < agg["CoPart"][0] < agg["PARTIES"][0] < satori_t
    assert agg["dCAT"][0] < agg["PARTIES"][0]

    # Fairness: every managed technique above Random (paper Fig. 7(b)).
    for name in ("dCAT", "CoPart", "PARTIES", "SATORI"):
        assert agg[name][1] > agg["Random"][1]
