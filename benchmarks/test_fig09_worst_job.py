"""Fig. 9: the worst-performing job in a mix does best under SATORI.

Paper findings: across all 21 PARSEC mixes, the worst-performing job
performs better with SATORI than with any competing technique,
averaging 87 % of the Balanced Oracle's worst-job performance.
"""

import numpy as np

from repro.experiments import STANDARD_POLICY_ORDER, format_table

from common import run_once, suite_comparisons


def test_fig09_worst_job(benchmark):
    comparisons = run_once(benchmark, lambda: suite_comparisons("parsec"))

    means = {
        name: float(
            np.mean([c.score(name).worst_job_vs_oracle for c in comparisons])
        )
        for name in STANDARD_POLICY_ORDER
    }

    print("\nFig. 9 — worst-performing job (% of Balanced Oracle's worst job)")
    print(
        format_table(
            ["policy", "worst-job % (mean of 21 mixes)"],
            [[name, value] for name, value in means.items()],
        )
    )

    # SATORI protects the worst job better than the non-fairness
    # baselines and lands near the oracle (paper: 87 %).
    assert means["SATORI"] >= 70.0
    assert means["SATORI"] > means["Random"]
    assert means["SATORI"] > means["dCAT"]
    satori_wins = sum(
        c.score("SATORI").worst_job_vs_oracle > c.score("Random").worst_job_vs_oracle
        for c in comparisons
    )
    assert satori_wins >= 15
