"""Chaos sweep benchmark: fleet recovery vs ablation under shared weather.

The fleet fault-tolerance acceptance run: a 4-node cluster replays one
arrival trace with a mid-trace node crash (and optional straggler),
once with the supervised recovery protocol and once with recovery
disabled. Both arms face bit-identical fleet weather, so the gap —
jobs lost, disruption-adjusted fairness, recovery intervals — is the
measured value of the recovery machinery.

Also home of the ``BENCH_chaos.json`` artifact: a fast, non-slow-marked
run written on every tier-1 CI pass so the recovery trajectory is
visible across PRs (override the path with ``BENCH_CHAOS_JSON``).
"""

import json
import os
import time

import pytest

from repro.experiments import format_table
from repro.experiments.chaos import chaos_fleet_plans, chaos_sweep
from repro.experiments.cluster import default_trace
from repro.experiments.runner import RunConfig, experiment_catalog

from common import run_once

#: Scale of the fast BENCH_chaos run — small enough for tier-1 CI.
BENCH_NODES = 4
BENCH_EPOCHS = 6
BENCH_EPOCH_SECONDS = 2.0

#: Scale of the slow-marked sweep.
N_NODES = 4
N_EPOCHS = 8
EPOCH_SECONDS = 6.0


def _bench_path():
    return os.environ.get("BENCH_CHAOS_JSON", "BENCH_chaos.json")


def _arm_row(arm):
    intervals = ", ".join(
        f"@{epoch}:" + ("never" if k is None else str(k))
        for epoch, k in sorted(arm.recovery_intervals.items())
    ) or "n/a"
    return [
        arm.name, arm.jobs_lost, round(arm.fairness, 4),
        arm.result.replacements, arm.result.resurrections,
        str(arm.pool_conserved), intervals,
    ]


def test_bench_chaos_artifact():
    """4-node crash sweep: zero loss with recovery, ablation worse.

    Deliberately not ``slow``-marked: tier-1 CI invokes this by path
    after the main suite and uploads the artifact. The assertions gate
    the recovery contract (no lost jobs, bit-exact budget conservation,
    intervals reported, ablation strictly worse), never wall-clock
    speed.
    """
    catalog = experiment_catalog()
    # Long residencies keep the crashed node's drained jobs alive past
    # the outage, so the arms genuinely diverge: the ablation loses
    # work the recovery arm re-places.
    trace = default_trace(
        n_epochs=BENCH_EPOCHS, n_nodes=BENCH_NODES, arrival_rate=1.5,
        mean_residency=float(BENCH_EPOCHS), seed=0, catalog=catalog,
    )
    plans = chaos_fleet_plans(
        BENCH_NODES, BENCH_EPOCHS, crash_node=0,
        straggler_node=1, straggler_slowdown=2.0,
    )
    started = time.perf_counter()
    report = chaos_sweep(
        trace, n_nodes=BENCH_NODES, fleet_plans=plans,
        placement="least_loaded", policy="SATORI", catalog=catalog,
        epoch_config=RunConfig(duration_s=BENCH_EPOCH_SECONDS), seed=0,
    )
    elapsed = time.perf_counter() - started

    # The recovery contract, asserted at benchmark scale.
    assert report.recovery.jobs_lost == 0
    assert report.recovery.pool_conserved and report.ablation.pool_conserved
    assert report.disruption_epochs, "the planned crash never fired"
    assert report.recovery.recovery_intervals, "no recovery intervals reported"
    assert report.ablation.jobs_lost > report.recovery.jobs_lost
    assert report.recovery.fairness > report.ablation.fairness

    payload = report.to_dict()
    payload.update(
        benchmark="chaos_sweep",
        wall_s=round(elapsed, 4),
        epochs_per_s=round(2 * BENCH_EPOCHS / elapsed, 3),
        epoch_seconds=BENCH_EPOCH_SECONDS,
        n_jobs=len(trace),
    )
    with open(_bench_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {_bench_path()}")
    print(format_table(
        ["arm", "lost", "fairness", "replaced", "resurrected", "pool ok",
         "recovery intervals"],
        [_arm_row(arm) for arm in report.arms],
        precision=4,
    ))


@pytest.mark.slow
def test_chaos_sweep_at_scale(benchmark):
    catalog = experiment_catalog()
    trace = default_trace(
        n_epochs=N_EPOCHS, n_nodes=N_NODES, arrival_rate=2.0,
        mean_residency=float(N_EPOCHS), seed=0, catalog=catalog,
    )
    plans = chaos_fleet_plans(
        N_NODES, N_EPOCHS, straggler_node=2, straggler_slowdown=2.5
    )
    report = run_once(
        benchmark,
        lambda: chaos_sweep(
            trace, n_nodes=N_NODES, fleet_plans=plans,
            placement="least_loaded", policy="SATORI", catalog=catalog,
            epoch_config=RunConfig(duration_s=EPOCH_SECONDS), seed=0,
        ),
    )
    print(
        f"\nChaos sweep — {N_NODES} nodes, {len(trace)} jobs over "
        f"{N_EPOCHS} epochs, disruptions at {list(report.disruption_epochs)}"
    )
    print(format_table(
        ["arm", "lost", "fairness", "replaced", "resurrected", "pool ok",
         "recovery intervals"],
        [_arm_row(arm) for arm in report.arms],
        precision=4,
    ))
    assert report.recovery.jobs_lost == 0
    assert report.recovery.pool_conserved and report.ablation.pool_conserved
    assert report.ablation.jobs_lost > 0
    assert report.recovery.fairness > report.ablation.fairness
