"""Fig. 3 / Observation 3: the re-balancing opportunity exists.

Paper finding: at two different times, configuration pairs exist with
(approximately) the same throughput difference but fairness
differences in opposite directions — so prioritizing different goals
at different times yields a net gain.
"""

from repro.experiments import experiment_catalog, rebalancing_opportunity
from repro.workloads.mixes import suite_mixes

from common import run_once


def test_fig03_rebalancing_opportunity(benchmark):
    catalog = experiment_catalog()
    mix = suite_mixes("parsec")[0]

    example = run_once(
        benchmark,
        lambda: rebalancing_opportunity(mix, catalog, n_samples=120, rng=7),
    )

    assert example is not None, "no re-balancing opportunity found (Observation 3 fails)"
    print(f"\nFig. 3 — re-balancing opportunity ({mix.label})")
    print(
        f"  at t={example.time_a:.1f}s: dT={example.throughput_delta_a:+.4f} "
        f"dF={example.fairness_delta_a:+.4f}"
    )
    print(
        f"  at t={example.time_b:.1f}s: dT={example.throughput_delta_b:+.4f} "
        f"dF={example.fairness_delta_b:+.4f}"
    )
    print("  -> same-sign throughput deltas, opposite-sign fairness deltas")

    assert example.demonstrates_opportunity
    # The throughput deltas are matched within the search tolerance.
    assert abs(example.throughput_delta_a - example.throughput_delta_b) <= 0.25 * abs(
        example.throughput_delta_a
    )
