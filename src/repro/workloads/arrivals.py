"""Job arrival/departure traces for the multi-node cluster layer.

A single-server experiment fixes its job mix up front; a cluster
experiment instead replays a *trace* of jobs arriving and departing
over a sequence of placement epochs. :class:`ArrivalTrace` is the
frozen, serializable description of that trace: each
:class:`JobArrival` names one job instance — a workload model plus the
half-open epoch interval ``[arrival_epoch, departure_epoch)`` it is
resident.

Like :class:`~repro.faults.plan.FaultPlan`, a trace carries no
randomness of its own: :func:`poisson_trace` realizes a random trace
deterministically from an explicit seed, so the same trace can be
replayed against every (placement policy × partitioning policy) cell
of a sweep — arrivals are part of the *environment*, and paired
comparisons require the environment to be identical across cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ClusterError
from repro.rng import SeedLike, make_rng
from repro.workloads.model import Phase, PhaseSchedule, Workload
from repro.workloads.registry import WorkloadRegistry, default_registry


def workload_to_dict(workload: Workload) -> Dict[str, Any]:
    """Lossless JSON-compatible form of a workload model."""
    return {
        "name": workload.name,
        "suite": workload.suite,
        "description": workload.description,
        "total_instructions": workload.total_instructions,
        "contention_sensitivity": workload.contention_sensitivity,
        "schedule": [
            {"duration": duration, "phase": vars(phase).copy()}
            for duration, phase in workload.schedule.segments
        ],
    }


def workload_from_dict(data: Dict[str, Any]) -> Workload:
    """Rebuild a workload model from :func:`workload_to_dict` output."""
    segments = tuple(
        (float(segment["duration"]), Phase(**segment["phase"]))
        for segment in data["schedule"]
    )
    return Workload(
        name=data["name"],
        suite=data["suite"],
        description=data["description"],
        schedule=PhaseSchedule(segments),
        total_instructions=float(data["total_instructions"]),
        contention_sensitivity=float(data["contention_sensitivity"]),
    )


#: The default job type: throughput-oriented work with no latency SLO.
KIND_BATCH = "batch"

#: Latency-sensitive jobs; today a label only, plumbed end to end
#: (traces → placement views → node-epoch records) so QoS-aware
#: placement and partitioning policies can key off it.
KIND_QOS = "qos"


@dataclass(frozen=True)
class JobArrival:
    """One job instance in a cluster trace.

    Attributes:
        job_id: unique id within the trace (stable across placements —
            cluster telemetry is keyed by it).
        workload: the workload model the job runs.
        arrival_epoch: first epoch the job is resident.
        departure_epoch: first epoch the job is *gone* (exclusive
            bound); ``None`` means the job stays until the trace ends.
        kind: job type label (``"batch"`` / ``"qos"``); carried
            through placement and per-epoch records unchanged — no
            current policy branches on it.
    """

    job_id: int
    workload: Workload
    arrival_epoch: int
    departure_epoch: Optional[int] = None
    kind: str = KIND_BATCH

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ClusterError(f"job_id must be >= 0, got {self.job_id}")
        if self.arrival_epoch < 0:
            raise ClusterError(f"arrival_epoch must be >= 0, got {self.arrival_epoch}")
        if self.departure_epoch is not None and self.departure_epoch <= self.arrival_epoch:
            raise ClusterError(
                f"job {self.job_id}: departure epoch {self.departure_epoch} must "
                f"exceed arrival epoch {self.arrival_epoch}"
            )
        if not self.kind or not isinstance(self.kind, str):
            raise ClusterError(
                f"job {self.job_id}: kind must be a non-empty string, got {self.kind!r}"
            )

    def resident_at(self, epoch: int) -> bool:
        """Whether the job is on the cluster during ``epoch``."""
        if epoch < self.arrival_epoch:
            return False
        return self.departure_epoch is None or epoch < self.departure_epoch

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "workload": workload_to_dict(self.workload),
            "arrival_epoch": self.arrival_epoch,
            "departure_epoch": self.departure_epoch,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobArrival":
        return cls(
            job_id=int(data["job_id"]),
            workload=workload_from_dict(data["workload"]),
            arrival_epoch=int(data["arrival_epoch"]),
            departure_epoch=(
                None if data.get("departure_epoch") is None else int(data["departure_epoch"])
            ),
            kind=str(data.get("kind", KIND_BATCH)),
        )


@dataclass(frozen=True)
class ArrivalTrace:
    """A complete cluster workload: jobs over ``n_epochs`` epochs."""

    n_epochs: int
    jobs: Tuple[JobArrival, ...]

    def __post_init__(self) -> None:
        if self.n_epochs < 1:
            raise ClusterError(f"a trace needs at least one epoch, got {self.n_epochs}")
        object.__setattr__(self, "jobs", tuple(self.jobs))
        ids = [job.job_id for job in self.jobs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ClusterError(f"duplicate job ids in trace: {dupes}")
        for job in self.jobs:
            if job.arrival_epoch >= self.n_epochs:
                raise ClusterError(
                    f"job {job.job_id} arrives at epoch {job.arrival_epoch}, "
                    f"beyond the trace's {self.n_epochs} epochs"
                )

    def __len__(self) -> int:
        return len(self.jobs)

    def arrivals_at(self, epoch: int) -> Tuple[JobArrival, ...]:
        """Jobs whose first resident epoch is ``epoch`` (id order)."""
        return tuple(
            sorted(
                (job for job in self.jobs if job.arrival_epoch == epoch),
                key=lambda job: job.job_id,
            )
        )

    def departures_at(self, epoch: int) -> Tuple[JobArrival, ...]:
        """Jobs whose departure (exclusive) epoch is ``epoch`` (id order)."""
        return tuple(
            sorted(
                (job for job in self.jobs if job.departure_epoch == epoch),
                key=lambda job: job.job_id,
            )
        )

    def active_at(self, epoch: int) -> Tuple[JobArrival, ...]:
        """Jobs resident during ``epoch``, in id order."""
        return tuple(
            sorted(
                (job for job in self.jobs if job.resident_at(epoch)),
                key=lambda job: job.job_id,
            )
        )

    @property
    def peak_jobs(self) -> int:
        """Maximum number of simultaneously resident jobs."""
        return max((len(self.active_at(epoch)) for epoch in range(self.n_epochs)), default=0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_epochs": self.n_epochs,
            "jobs": [job.to_dict() for job in self.jobs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ArrivalTrace":
        return cls(
            n_epochs=int(data["n_epochs"]),
            jobs=tuple(JobArrival.from_dict(j) for j in data["jobs"]),
        )


def _rate_trace(
    n_epochs: int,
    rates: Sequence[float],
    mean_residency: float,
    max_jobs: Optional[int],
    suites: Sequence[str],
    registry: Optional[WorkloadRegistry],
    seed: SeedLike,
    initial_jobs: int,
    qos_fraction: float = 0.0,
) -> ArrivalTrace:
    """The shared generator behind every stochastic trace: Poisson
    arrivals at a per-epoch rate, geometric stays.

    The RNG draw order (initial jobs first, then per-epoch Poisson
    counts with per-arrival workload + residency draws) is the
    contract: every public generator delegates here, so a constant
    rate curve reproduces :func:`poisson_trace`'s historical traces
    draw-for-draw. The per-arrival kind draw happens only when
    ``qos_fraction > 0``, so the default keeps historical traces
    draw-identical.
    """
    if n_epochs < 1:
        raise ClusterError(f"a trace needs at least one epoch, got {n_epochs}")
    if len(rates) != n_epochs:
        raise ClusterError(f"need {n_epochs} per-epoch rates, got {len(rates)}")
    if any(rate < 0 for rate in rates):
        raise ClusterError("arrival rates must be >= 0")
    if mean_residency < 1:
        raise ClusterError(f"mean_residency must be >= 1, got {mean_residency}")
    if not 0.0 <= qos_fraction <= 1.0:
        raise ClusterError(f"qos_fraction must be in [0, 1], got {qos_fraction}")
    registry = registry or default_registry()
    pool: List[Workload] = []
    for suite in suites:
        pool.extend(registry.suite(suite))
    if not pool:
        raise ClusterError(f"no workloads found in suites {list(suites)}")

    rng = make_rng(seed)
    jobs: List[JobArrival] = []
    next_id = 0

    def _admit(epoch: int) -> None:
        nonlocal next_id
        workload = pool[int(rng.integers(len(pool)))]
        # Geometric residency (support >= 1) with mean `mean_residency`;
        # an open departure marks a job outliving the trace.
        stay = int(rng.geometric(1.0 / mean_residency))
        departure: Optional[int] = epoch + stay
        if departure >= n_epochs:
            departure = None
        # The kind draw is guarded so qos_fraction=0 makes no extra RNG
        # draws — historical traces stay draw-identical.
        kind = KIND_BATCH
        if qos_fraction > 0 and rng.random() < qos_fraction:
            kind = KIND_QOS
        jobs.append(
            JobArrival(
                job_id=next_id,
                workload=workload,
                arrival_epoch=epoch,
                departure_epoch=departure,
                kind=kind,
            )
        )
        next_id += 1

    for _ in range(initial_jobs):
        _admit(0)

    for epoch in range(n_epochs):
        n_arrivals = int(rng.poisson(rates[epoch]))
        for _ in range(n_arrivals):
            if max_jobs is not None:
                resident = sum(1 for job in jobs if job.resident_at(epoch))
                if resident >= max_jobs:
                    break
            _admit(epoch)

    return ArrivalTrace(n_epochs=n_epochs, jobs=tuple(jobs))


def poisson_trace(
    n_epochs: int,
    arrival_rate: float = 2.0,
    mean_residency: float = 4.0,
    max_jobs: Optional[int] = None,
    suites: Sequence[str] = ("parsec",),
    registry: Optional[WorkloadRegistry] = None,
    seed: SeedLike = 0,
    initial_jobs: int = 0,
    qos_fraction: float = 0.0,
) -> ArrivalTrace:
    """A deterministic random trace: Poisson arrivals, geometric stays.

    Args:
        n_epochs: trace length in placement epochs.
        arrival_rate: mean arrivals per epoch (Poisson).
        mean_residency: mean resident epochs per job (geometric, >= 1).
        max_jobs: cap on simultaneously resident jobs; arrivals beyond
            the cap are dropped (an admission-controlled cluster).
            ``None`` admits everything.
        suites: workload suites to draw benchmarks from, uniformly.
        registry: workload registry; defaults to the built-in one.
        seed: explicit seed — the same seed always yields the same
            trace, which is what makes sweep cells paired.
        initial_jobs: jobs already resident at epoch 0 (drawn before
            any Poisson arrivals, so warm-start traces stay paired with
            cold-start ones for the shared prefix of draws).
        qos_fraction: probability each arrival is tagged ``"qos"``
            instead of ``"batch"``; 0 adds no RNG draws, so untyped
            traces reproduce historical ones exactly.
    """
    if n_epochs < 1:
        raise ClusterError(f"a trace needs at least one epoch, got {n_epochs}")
    if arrival_rate < 0:
        raise ClusterError(f"arrival_rate must be >= 0, got {arrival_rate}")
    return _rate_trace(
        n_epochs,
        [arrival_rate] * n_epochs,
        mean_residency,
        max_jobs,
        suites,
        registry,
        seed,
        initial_jobs,
        qos_fraction,
    )


def diurnal_trace(
    n_epochs: int,
    base_rate: float = 0.5,
    peak_rate: float = 3.0,
    period_epochs: int = 12,
    mean_residency: float = 4.0,
    max_jobs: Optional[int] = None,
    suites: Sequence[str] = ("parsec",),
    registry: Optional[WorkloadRegistry] = None,
    seed: SeedLike = 0,
    initial_jobs: int = 0,
    qos_fraction: float = 0.0,
) -> ArrivalTrace:
    """Non-stationary arrivals on a day/night cycle.

    The per-epoch Poisson rate follows a raised cosine from
    ``base_rate`` (epoch 0, the trough) up to ``peak_rate`` at
    mid-period and back, repeating every ``period_epochs``. Controllers
    that warm-start across quiet stretches hold their learning through
    the trough; the rising edge then stresses adaptation under churn.
    """
    if base_rate < 0:
        raise ClusterError(f"base_rate must be >= 0, got {base_rate}")
    if peak_rate < base_rate:
        raise ClusterError(
            f"peak_rate ({peak_rate}) must be >= base_rate ({base_rate})"
        )
    if period_epochs < 2:
        raise ClusterError(f"period_epochs must be >= 2, got {period_epochs}")
    rates = [
        base_rate
        + (peak_rate - base_rate)
        * 0.5
        * (1.0 - math.cos(2.0 * math.pi * epoch / period_epochs))
        for epoch in range(max(n_epochs, 1))
    ]
    return _rate_trace(
        n_epochs, rates, mean_residency, max_jobs, suites, registry, seed,
        initial_jobs, qos_fraction,
    )


def flash_crowd_trace(
    n_epochs: int,
    base_rate: float = 0.5,
    burst_rate: float = 4.0,
    burst_epoch: int = 0,
    burst_duration: int = 2,
    mean_residency: float = 4.0,
    max_jobs: Optional[int] = None,
    suites: Sequence[str] = ("parsec",),
    registry: Optional[WorkloadRegistry] = None,
    seed: SeedLike = 0,
    initial_jobs: int = 0,
    qos_fraction: float = 0.0,
) -> ArrivalTrace:
    """A quiet stream with one flash-crowd burst.

    Arrivals run at ``base_rate`` except during the half-open window
    ``[burst_epoch, burst_epoch + burst_duration)``, where they spike
    to ``burst_rate`` — the step change that separates controllers
    which re-learn per epoch from ones that carry state through the
    surge.
    """
    if base_rate < 0:
        raise ClusterError(f"base_rate must be >= 0, got {base_rate}")
    if burst_rate < 0:
        raise ClusterError(f"burst_rate must be >= 0, got {burst_rate}")
    if burst_epoch < 0:
        raise ClusterError(f"burst_epoch must be >= 0, got {burst_epoch}")
    if burst_duration < 1:
        raise ClusterError(f"burst_duration must be >= 1, got {burst_duration}")
    rates = [
        burst_rate if burst_epoch <= epoch < burst_epoch + burst_duration else base_rate
        for epoch in range(max(n_epochs, 1))
    ]
    return _rate_trace(
        n_epochs, rates, mean_residency, max_jobs, suites, registry, seed,
        initial_jobs, qos_fraction,
    )
