"""Analytic workload performance models.

The paper evaluates SATORI on real PARSEC / CloudSuite / ECP binaries
on a Skylake server. SATORI itself observes nothing about a workload
except its sampled instructions-per-second (IPS) under a resource
allocation, so the reproduction replaces each binary with an analytic
*roofline* model that maps an allocation of (cores, LLC ways, memory
bandwidth, optional power) to an IPS value:

``ips = smoothmin(compute_rate(cores, power), memory_rate(ways, bandwidth))``

* ``compute_rate`` follows Amdahl scaling over the allocated cores,
  optionally derated by a power cap.
* ``memory_rate`` is the IPS sustainable by the memory system: the
  allocated bandwidth divided by the bytes each instruction moves,
  where the per-instruction miss traffic falls exponentially as the
  allocated LLC share approaches the phase's working set.

The model deliberately couples LLC ways and memory bandwidth — more
ways mean fewer misses mean less bandwidth needed — which is exactly
the cross-resource "correlated utility" the paper argues makes joint
exploration of resources necessary (Sec. I, Sec. VI).

Program *phases* (Sec. II, Fig. 1) are modeled as a cyclic schedule of
parameter sets, so the optimal configuration drifts over time just as
the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import WorkloadError
from repro.resources.types import (
    CORES,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    POWER,
    ResourceCatalog,
)

#: Cache line size in bytes; one LLC miss moves one line.
CACHE_LINE_BYTES = 64.0

#: Exponent of the smooth-min combining compute and memory rooflines.
#: Larger values sharpen the corner; 4 reproduces the gradual roofline
#: knees measured on real hardware.
SMOOTHMIN_POWER = 4.0

ArrayLike = Union[float, np.ndarray]


def smoothmin(a: ArrayLike, b: ArrayLike, power: float = SMOOTHMIN_POWER) -> ArrayLike:
    """Smooth approximation of ``min(a, b)`` (p-norm of reciprocals).

    Always below both inputs and differentiable, matching the soft
    knee of measured rooflines. Vectorized over numpy arrays.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    # The outer base must stay an ndarray: numpy's scalar-math ``**``
    # rounds differently (by 1 ulp) from the array ufunc, and 0-d
    # operations return scalars — without the asarray, scalar and
    # batched evaluations of the same allocation could disagree.
    out = np.asarray(a ** -power + b ** -power) ** (-1.0 / power)
    if out.ndim == 0:
        return float(out)
    return out


@dataclass(frozen=True)
class Phase:
    """Performance parameters during one program phase.

    Attributes:
        ips_per_core: instructions/second one core retires when the
            phase is purely compute-bound at nominal frequency.
        parallel_fraction: Amdahl parallel fraction in ``[0, 1]``; 1.0
            scales linearly with cores, 0.0 ignores extra cores.
        working_set_bytes: LLC footprint; misses fall exponentially as
            the allocated cache approaches this size.
        miss_peak: LLC misses per instruction with minimal cache.
        miss_floor: residual misses per instruction with infinite cache
            (compulsory misses / streaming accesses).
        stream_bytes_per_instr: memory traffic per instruction that no
            amount of cache removes (write streams, NT stores).
        power_exponent: frequency response to the power-cap share;
            effective frequency multiplier is ``share ** power_exponent``
            when the power resource is partitioned.
        latency_sensitivity: how much a *loaded shared* memory bus
            hurts this phase beyond its bandwidth share. Pointer-
            chasing phases (low memory-level parallelism) stall on
            every loaded-latency miss and lose up to this fraction of
            IPS at full bus utilization; streaming phases hide latency
            and are barely affected. Only applies when memory
            bandwidth is unpartitioned — partitioning (MBA) restores
            predictable latency, which is much of why it helps
            fairness on real hardware.
    """

    ips_per_core: float
    parallel_fraction: float
    working_set_bytes: float
    miss_peak: float
    miss_floor: float
    stream_bytes_per_instr: float = 0.0
    power_exponent: float = 0.4
    latency_sensitivity: float = 0.2

    def __post_init__(self) -> None:
        if self.ips_per_core <= 0:
            raise WorkloadError(f"ips_per_core must be positive, got {self.ips_per_core}")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise WorkloadError(
                f"parallel_fraction must be in [0, 1], got {self.parallel_fraction}"
            )
        if self.working_set_bytes <= 0:
            raise WorkloadError("working_set_bytes must be positive")
        if self.miss_floor < 0 or self.miss_peak < self.miss_floor:
            raise WorkloadError(
                f"need 0 <= miss_floor <= miss_peak, got {self.miss_floor}, {self.miss_peak}"
            )
        if self.stream_bytes_per_instr < 0:
            raise WorkloadError("stream_bytes_per_instr must be >= 0")
        if not 0.0 <= self.latency_sensitivity <= 1.0:
            raise WorkloadError(
                f"latency_sensitivity must be in [0, 1], got {self.latency_sensitivity}"
            )

    # -- model components -------------------------------------------------

    def amdahl_speedup(self, cores: ArrayLike) -> ArrayLike:
        """Amdahl's-law speedup of ``cores`` over one core."""
        cores = np.asarray(cores, dtype=float)
        serial = 1.0 - self.parallel_fraction
        out = 1.0 / (serial + self.parallel_fraction / np.maximum(cores, 1e-9))
        if out.ndim == 0:
            return float(out)
        return out

    def compute_rate(self, cores: ArrayLike, frequency_factor: ArrayLike = 1.0) -> ArrayLike:
        """IPS when compute-bound on ``cores`` cores."""
        return self.ips_per_core * np.asarray(frequency_factor, dtype=float) * np.asarray(
            self.amdahl_speedup(cores)
        )

    def miss_rate(self, cache_bytes: ArrayLike) -> ArrayLike:
        """LLC misses per instruction given ``cache_bytes`` of LLC.

        The curve is a logistic *cliff* centred below the working-set
        size: allocating cache yields little until the hot set fits,
        then misses collapse toward the floor. Measured LLC
        miss-ratio curves have exactly this knee shape, and the
        resulting all-or-nothing utility is what creates local maxima
        in the partitioning landscape (one more way is worthless; three
        more ways are decisive) — the non-convexity that defeats
        one-dimension-at-a-time searches (Sec. I, Sec. V scalability).
        """
        cache_bytes = np.asarray(cache_bytes, dtype=float)
        midpoint = 0.6 * self.working_set_bytes
        width = self.working_set_bytes / 8.0
        exponent = np.clip((midpoint - cache_bytes) / width, -60.0, 60.0)
        cliff = 1.0 / (1.0 + np.exp(-exponent))
        out = self.miss_floor + (self.miss_peak - self.miss_floor) * cliff
        if out.ndim == 0:
            return float(out)
        return out

    def bytes_per_instruction(self, cache_bytes: ArrayLike) -> ArrayLike:
        """Memory traffic per instruction under ``cache_bytes`` of LLC."""
        return np.asarray(self.miss_rate(cache_bytes)) * CACHE_LINE_BYTES + self.stream_bytes_per_instr

    def memory_rate(self, cache_bytes: ArrayLike, bandwidth_bytes: ArrayLike) -> ArrayLike:
        """IPS sustainable by the memory system."""
        bpi = np.asarray(self.bytes_per_instruction(cache_bytes), dtype=float)
        out = np.asarray(bandwidth_bytes, dtype=float) / np.maximum(bpi, 1e-12)
        if out.ndim == 0:
            return float(out)
        return out

    def ips(
        self,
        cores: ArrayLike,
        cache_bytes: ArrayLike,
        bandwidth_bytes: ArrayLike,
        frequency_factor: ArrayLike = 1.0,
    ) -> ArrayLike:
        """Model IPS under an allocation (the roofline smooth-min)."""
        return smoothmin(
            self.compute_rate(cores, frequency_factor),
            self.memory_rate(cache_bytes, bandwidth_bytes),
        )

    def scaled(self, **multipliers: float) -> "Phase":
        """Return a copy with named parameters multiplied.

        Example: ``phase.scaled(ips_per_core=0.7, miss_peak=1.5)``
        derives a memory-heavier phase from a base phase.
        """
        changes = {}
        for name, factor in multipliers.items():
            if not hasattr(self, name):
                raise WorkloadError(f"Phase has no parameter {name!r}")
            changes[name] = getattr(self, name) * factor
        # Fractions saturate at 1 instead of failing validation, so a
        # phase derived by scaling stays physically meaningful.
        for bounded in ("parallel_fraction", "latency_sensitivity"):
            if bounded in changes and changes[bounded] > 1.0:
                changes[bounded] = 1.0
        return replace(self, **changes)


@dataclass(frozen=True)
class PhaseVector:
    """A stack of per-job :class:`Phase` parameters as numpy columns.

    The batched-evaluation protocol: every roofline formula below is
    the *same expression* as its :class:`Phase` counterpart, evaluated
    elementwise over arrays whose trailing axis indexes jobs. Because
    IEEE arithmetic is elementwise, evaluating a ``(n_configs, n_jobs)``
    allocation batch through a :class:`PhaseVector` is bit-identical to
    looping the scalar :meth:`Phase.ips` over every entry — the paired
    tests in ``tests/test_batched_eval.py`` hold that invariant.

    Parameter arrays have shape ``(n_jobs,)`` and broadcast against
    allocation arrays shaped ``(..., n_jobs)``.
    """

    ips_per_core: np.ndarray
    parallel_fraction: np.ndarray
    working_set_bytes: np.ndarray
    miss_peak: np.ndarray
    miss_floor: np.ndarray
    stream_bytes_per_instr: np.ndarray
    power_exponent: np.ndarray
    latency_sensitivity: np.ndarray

    @classmethod
    def from_phases(cls, phases: Sequence[Phase]) -> "PhaseVector":
        """Stack the parameters of one phase per job."""
        if not phases:
            raise WorkloadError("a phase vector needs at least one phase")
        column = lambda name: np.array([getattr(p, name) for p in phases], dtype=float)
        return cls(
            ips_per_core=column("ips_per_core"),
            parallel_fraction=column("parallel_fraction"),
            working_set_bytes=column("working_set_bytes"),
            miss_peak=column("miss_peak"),
            miss_floor=column("miss_floor"),
            stream_bytes_per_instr=column("stream_bytes_per_instr"),
            power_exponent=column("power_exponent"),
            latency_sensitivity=column("latency_sensitivity"),
        )

    @property
    def n_jobs(self) -> int:
        return int(self.ips_per_core.shape[0])

    def amdahl_speedup(self, cores: ArrayLike) -> np.ndarray:
        serial = 1.0 - self.parallel_fraction
        return 1.0 / (serial + self.parallel_fraction / np.maximum(cores, 1e-9))

    def compute_rate(self, cores: ArrayLike, frequency_factor: ArrayLike = 1.0) -> np.ndarray:
        return self.ips_per_core * np.asarray(frequency_factor, dtype=float) * np.asarray(
            self.amdahl_speedup(cores)
        )

    def miss_rate(self, cache_bytes: ArrayLike) -> np.ndarray:
        cache_bytes = np.asarray(cache_bytes, dtype=float)
        midpoint = 0.6 * self.working_set_bytes
        width = self.working_set_bytes / 8.0
        exponent = np.clip((midpoint - cache_bytes) / width, -60.0, 60.0)
        cliff = 1.0 / (1.0 + np.exp(-exponent))
        return self.miss_floor + (self.miss_peak - self.miss_floor) * cliff

    def bytes_per_instruction(self, cache_bytes: ArrayLike) -> np.ndarray:
        return np.asarray(self.miss_rate(cache_bytes)) * CACHE_LINE_BYTES + self.stream_bytes_per_instr

    def memory_rate(self, cache_bytes: ArrayLike, bandwidth_bytes: ArrayLike) -> np.ndarray:
        bpi = np.asarray(self.bytes_per_instruction(cache_bytes), dtype=float)
        return np.asarray(bandwidth_bytes, dtype=float) / np.maximum(bpi, 1e-12)

    def ips(
        self,
        cores: ArrayLike,
        cache_bytes: ArrayLike,
        bandwidth_bytes: ArrayLike,
        frequency_factor: ArrayLike = 1.0,
    ) -> np.ndarray:
        """Roofline IPS of every (allocation row, job) pair."""
        return np.asarray(
            smoothmin(
                self.compute_rate(cores, frequency_factor),
                self.memory_rate(cache_bytes, bandwidth_bytes),
            )
        )


@dataclass(frozen=True)
class PhaseSchedule:
    """A cyclic sequence of (duration, phase) segments.

    Workloads repeat their schedule for as long as they run; phase
    boundaries are deterministic functions of elapsed time, which lets
    the Oracle cache exhaustive-search results per phase combination.
    """

    segments: Tuple[Tuple[float, Phase], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise WorkloadError("a phase schedule needs at least one segment")
        for duration, _phase in self.segments:
            if duration <= 0:
                raise WorkloadError(f"phase durations must be positive, got {duration}")

    @property
    def period(self) -> float:
        """Length of one full pass through the schedule, in seconds."""
        return sum(duration for duration, _ in self.segments)

    def phase_index_at(self, t: float) -> int:
        """Index of the segment active at elapsed time ``t`` seconds."""
        if t < 0:
            raise WorkloadError(f"time must be >= 0, got {t}")
        t = t % self.period
        elapsed = 0.0
        for index, (duration, _phase) in enumerate(self.segments):
            elapsed += duration
            if t < elapsed:
                return index
        return len(self.segments) - 1  # guard against float round-off at the period edge

    def phase_at(self, t: float) -> Phase:
        """The phase active at elapsed time ``t`` seconds."""
        return self.segments[self.phase_index_at(t)][1]

    @staticmethod
    def constant(phase: Phase, duration: float = 1.0) -> "PhaseSchedule":
        """A schedule with a single never-changing phase."""
        return PhaseSchedule(((duration, phase),))


@dataclass(frozen=True)
class Workload:
    """A named workload: metadata plus its phase-dependent performance model.

    Attributes:
        name: benchmark name (e.g. ``"canneal"``).
        suite: suite name (``"parsec"``, ``"cloudsuite"``, ``"ecp"``, or
            ``"synthetic"``).
        description: one-line description (the paper's Tables I-III).
        schedule: the cyclic phase schedule.
        total_instructions: fixed-work length of one run; used by the
            fixed-work methodology (Sec. IV) to decide completion.
        contention_sensitivity: fractional IPS penalty factor applied
            per co-runner on *unpartitioned* shared resources,
            capturing interference the partitioner is not controlling.
    """

    name: str
    suite: str
    description: str
    schedule: PhaseSchedule
    total_instructions: float = 2e11
    contention_sensitivity: float = 0.05

    def __post_init__(self) -> None:
        if self.total_instructions <= 0:
            raise WorkloadError("total_instructions must be positive")
        if not 0.0 <= self.contention_sensitivity <= 1.0:
            raise WorkloadError("contention_sensitivity must be in [0, 1]")

    def phase_at(self, t: float) -> Phase:
        return self.schedule.phase_at(t)

    def phase_index_at(self, t: float) -> int:
        return self.schedule.phase_index_at(t)

    def ips_under(
        self,
        catalog: ResourceCatalog,
        t: float,
        cores: float,
        llc_ways: float,
        bandwidth_units: float,
        power_units: Union[float, None] = None,
    ) -> float:
        """Model IPS at time ``t`` under an allocation in *units*.

        Unit counts are converted to physical capacities through the
        catalog (way size in bytes, bytes/s per bandwidth unit). When
        the catalog carries a power resource and ``power_units`` is
        given, the compute roofline is derated by the power share.
        """
        phase = self.phase_at(t)
        cache_bytes = llc_ways * catalog.get(LLC_WAYS).unit_capacity
        bandwidth_bytes = bandwidth_units * catalog.get(MEMORY_BANDWIDTH).unit_capacity
        frequency = 1.0
        if power_units is not None and POWER in catalog:
            share = power_units / catalog.get(POWER).units
            frequency = share ** phase.power_exponent
        return float(phase.ips(cores, cache_bytes, bandwidth_bytes, frequency))

    def isolation_ips(self, catalog: ResourceCatalog, t: float) -> float:
        """IPS with the whole server to itself (the speedup baseline)."""
        power = catalog.get(POWER).units if POWER in catalog else None
        return self.ips_under(
            catalog,
            t,
            cores=catalog.get(CORES).units,
            llc_ways=catalog.get(LLC_WAYS).units,
            bandwidth_units=catalog.get(MEMORY_BANDWIDTH).units,
            power_units=power,
        )

    def with_offset(self, offset: float) -> "Workload":
        """Return a copy whose schedule is rotated by ``offset`` seconds.

        Used when the same benchmark appears in several mixes so that
        phase alignments differ across experiments.
        """
        if offset == 0:
            return self
        period = self.schedule.period
        offset = offset % period
        if offset == 0:
            return self

        segments: List[Tuple[float, Phase]] = []
        remaining = offset
        rotated = list(self.schedule.segments)
        while remaining > 0:
            duration, phase = rotated[0]
            if duration > remaining + 1e-12:
                rotated[0] = (duration - remaining, phase)
                segments = rotated + [(remaining, phase)]
                break
            remaining -= duration
            rotated = rotated[1:] + [(duration, phase)]
            segments = rotated
        return replace(self, schedule=PhaseSchedule(tuple(segments)))
