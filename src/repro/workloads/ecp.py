"""ECP proxy-application models (paper Table III).

Five Exascale Computing Project proxy apps. Profiles follow the
paper's own per-mix analysis (Sec. V): ``miniFE`` has intensive
compute (high IPC / FLOP rate) together with heavy LLC demand,
``SWFFT`` has an equally high LLC requirement, and ``AMG`` / ``Hypre``
have similar, bandwidth-leaning requirements across all resources
(which is why their mix is both hard to co-locate and easy to search).
``XSBench`` is dominated by random cross-section table lookups that no
realistic LLC captures.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.model import Phase, PhaseSchedule, Workload

MB = float(2**20)

SUITE = "ecp"


def _workload(name: str, description: str, schedule: PhaseSchedule, **kwargs: float) -> Workload:
    return Workload(name=name, suite=SUITE, description=description, schedule=schedule, **kwargs)


def build_ecp_workloads() -> Dict[str, Workload]:
    """Construct the five ECP workload models keyed by name."""
    minife_base = Phase(
        ips_per_core=2.5e9,
        parallel_fraction=0.90,
        working_set_bytes=10.0 * MB,
        miss_peak=0.014,
        miss_floor=0.0020,
        stream_bytes_per_instr=0.7,
        latency_sensitivity=0.30,
    )
    xsbench_base = Phase(
        ips_per_core=1.4e9,
        parallel_fraction=0.92,
        working_set_bytes=100.0 * MB,
        miss_peak=0.022,
        miss_floor=0.010,
        stream_bytes_per_instr=0.2,
        latency_sensitivity=0.70,
    )
    swfft_base = Phase(
        ips_per_core=2.1e9,
        parallel_fraction=0.85,
        working_set_bytes=12.0 * MB,
        miss_peak=0.012,
        miss_floor=0.0018,
        stream_bytes_per_instr=0.3,
        latency_sensitivity=0.30,
    )
    amg_base = Phase(
        ips_per_core=1.6e9,
        parallel_fraction=0.80,
        working_set_bytes=6.0 * MB,
        miss_peak=0.010,
        miss_floor=0.003,
        stream_bytes_per_instr=1.4,
        latency_sensitivity=0.15,
    )
    hypre_base = Phase(
        ips_per_core=1.5e9,
        parallel_fraction=0.82,
        working_set_bytes=7.0 * MB,
        miss_peak=0.011,
        miss_floor=0.0028,
        stream_bytes_per_instr=1.3,
        latency_sensitivity=0.15,
    )

    return {
        "minife": _workload(
            "minife",
            "Unstructured finite element solver",
            PhaseSchedule(
                (
                    (4.0, minife_base),
                    (2.5, minife_base.scaled(stream_bytes_per_instr=1.4, ips_per_core=0.9)),
                    (3.0, minife_base.scaled(working_set_bytes=0.8, ips_per_core=1.05)),
                )
            ),
            contention_sensitivity=0.08,
        ),
        "xsbench": _workload(
            "xsbench",
            "Computational kernel of Monte Carlo neutronics",
            PhaseSchedule(
                (
                    (5.0, xsbench_base),
                    (3.0, xsbench_base.scaled(miss_floor=1.2, miss_peak=1.2)),
                )
            ),
            contention_sensitivity=0.08,
        ),
        "swfft": _workload(
            "swfft",
            "Fast Fourier transform for HACC (cosmology code)",
            # FFT compute segments alternate with bandwidth-heavy
            # transpose segments.
            PhaseSchedule(
                (
                    (3.0, swfft_base),
                    (2.0, swfft_base.scaled(stream_bytes_per_instr=6.0, ips_per_core=0.8)),
                    (3.5, swfft_base.scaled(working_set_bytes=1.2)),
                )
            ),
            contention_sensitivity=0.08,
        ),
        "amg": _workload(
            "amg",
            "Parallel algebraic multigrid solver for linear systems",
            PhaseSchedule(
                (
                    (3.5, amg_base),
                    (2.5, amg_base.scaled(stream_bytes_per_instr=1.3, ips_per_core=0.92)),
                    (3.0, amg_base.scaled(stream_bytes_per_instr=0.75, ips_per_core=1.08)),
                )
            ),
            contention_sensitivity=0.09,
        ),
        "hypre": _workload(
            "hypre",
            "Scalable linear solvers and multigrid methods",
            PhaseSchedule(
                (
                    (4.0, hypre_base),
                    (2.5, hypre_base.scaled(stream_bytes_per_instr=1.25)),
                    (3.5, hypre_base.scaled(working_set_bytes=1.2, ips_per_core=1.05)),
                )
            ),
            contention_sensitivity=0.09,
        ),
    }
