"""Trace-driven workload models.

The analytic suites model benchmarks from published characterizations;
users reproducing SATORI on *their own* workloads usually have pqos
traces instead: per-interval IPS under a few probe allocations. This
module turns such traces into :class:`~repro.workloads.model.Workload`
objects by fitting each trace segment to a roofline phase, so the rest
of the stack (simulator, policies, Oracle) works unchanged.

A trace is a sequence of :class:`TraceSample` records — duration plus
the probe measurements. The fit recovers the phase parameters:

* ``ips_per_core`` and ``parallel_fraction`` from the core-scaling
  probes (1 core vs all cores, cache/bandwidth unconstrained);
* the miss curve (``miss_peak``/``miss_floor``/``working_set_bytes``)
  from the cache-size probes at full bandwidth;
* ``stream_bytes_per_instr`` from the measured bandwidth at the
  largest cache point.

This is the same information a short offline profiling pass with
``pqos`` + CAT sweeps collects on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.model import CACHE_LINE_BYTES, Phase, PhaseSchedule, Workload


@dataclass(frozen=True)
class TraceSample:
    """One trace segment: probe measurements over a time window.

    Attributes:
        duration_s: how long this behaviour lasted.
        ips_one_core: measured IPS pinned to one core (ample cache/BW).
        ips_all_cores: measured IPS on all ``n_cores`` cores.
        n_cores: core count of the probing machine.
        cache_probe_bytes: cache sizes of the LLC probe points.
        ips_at_cache: measured IPS at each cache probe point (all
            cores, ample bandwidth).
        bandwidth_bytes_s: measured memory traffic at the largest
            cache probe point.
    """

    duration_s: float
    ips_one_core: float
    ips_all_cores: float
    n_cores: int
    cache_probe_bytes: Tuple[float, ...]
    ips_at_cache: Tuple[float, ...]
    bandwidth_bytes_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise WorkloadError("trace segment duration must be positive")
        if self.ips_one_core <= 0 or self.ips_all_cores <= 0:
            raise WorkloadError("trace IPS measurements must be positive")
        if self.ips_all_cores < self.ips_one_core * 0.99:
            raise WorkloadError("all-core IPS cannot be below one-core IPS")
        if self.n_cores < 2:
            raise WorkloadError("core-scaling probes need >= 2 cores")
        if len(self.cache_probe_bytes) != len(self.ips_at_cache):
            raise WorkloadError("cache probe arrays must have equal lengths")
        if len(self.cache_probe_bytes) < 2:
            raise WorkloadError("need at least two cache probe points")
        if self.bandwidth_bytes_s <= 0:
            raise WorkloadError("bandwidth measurement must be positive")


def fit_phase(sample: TraceSample) -> Phase:
    """Fit one roofline phase to a trace segment's probe measurements."""
    # Core scaling -> Amdahl parameters.
    speedup = sample.ips_all_cores / sample.ips_one_core
    n = sample.n_cores
    # speedup = 1 / ((1-p) + p/n)  =>  p = (1 - 1/speedup) / (1 - 1/n)
    p = (1.0 - 1.0 / speedup) / (1.0 - 1.0 / n)
    p = float(np.clip(p, 0.0, 1.0))
    ips_per_core = sample.ips_one_core

    # Cache probes -> miss curve. Convert each probe's IPS deficit
    # (relative to the best cache point) into an apparent
    # bytes-per-instruction, then misses per instruction.
    cache = np.asarray(sample.cache_probe_bytes, dtype=float)
    ips = np.asarray(sample.ips_at_cache, dtype=float)
    order = np.argsort(cache)
    cache, ips = cache[order], ips[order]
    best_ips = float(ips.max())

    bpi_best = sample.bandwidth_bytes_s / best_ips
    # At smaller cache points the same compute does more memory work;
    # scale bytes/instr by the slowdown (memory-bound approximation).
    bpi = bpi_best * best_ips / np.maximum(ips, 1e-9)
    misses = np.maximum((bpi - _stream_component(bpi_best)) / CACHE_LINE_BYTES, 1e-6)

    miss_peak = float(misses.max())
    miss_floor = float(min(misses.min(), miss_peak))
    if miss_floor >= miss_peak:
        miss_floor = miss_peak * 0.5
    # Working set: the cache size where the miss rate crosses halfway.
    halfway = 0.5 * (miss_peak + miss_floor)
    crossing = cache[-1]
    for size, miss in zip(cache, misses):
        if miss <= halfway:
            crossing = size
            break
    working_set = max(crossing / 0.6, cache[0] * 1.5)  # invert the 0.6 midpoint

    return Phase(
        ips_per_core=ips_per_core,
        parallel_fraction=p,
        working_set_bytes=float(working_set),
        miss_peak=miss_peak,
        miss_floor=miss_floor,
        stream_bytes_per_instr=_stream_component(bpi_best),
    )


def _stream_component(bytes_per_instr: float) -> float:
    """Split measured traffic into stream vs cacheable components.

    Without per-event counters the trace cannot distinguish streaming
    stores from misses; attribute half of the best-case traffic to an
    incompressible stream, a neutral prior that keeps both the cache
    and bandwidth sensitivities live.
    """
    return 0.5 * bytes_per_instr


def workload_from_trace(
    name: str,
    samples: Sequence[TraceSample],
    description: str = "trace-driven workload",
    contention_sensitivity: float = 0.06,
) -> Workload:
    """Build a Workload whose phases are fitted from trace segments."""
    if not samples:
        raise WorkloadError("need at least one trace segment")
    segments = tuple((s.duration_s, fit_phase(s)) for s in samples)
    return Workload(
        name=name,
        suite="trace",
        description=description,
        schedule=PhaseSchedule(segments),
        contention_sensitivity=contention_sensitivity,
    )


def synthesize_trace(
    workload: Workload,
    n_cores: int = 8,
    cache_probe_bytes: Sequence[float] = None,
    bandwidth_bytes_s: float = 48e9,
) -> Tuple[TraceSample, ...]:
    """Generate the probe trace a profiling pass would record.

    Used in tests to close the loop: synthesize a trace from a known
    workload, re-fit it, and compare behaviours. Probes each phase of
    the workload once. Probing runs on an otherwise idle machine, so
    the default probe bandwidth is the unthrottled peak (well above
    the co-located budget) — core-scaling probes must not be
    bandwidth-limited or the fit conflates saturation with serial
    fraction.
    """
    if cache_probe_bytes is None:
        mb = 2.0**20
        cache_probe_bytes = (1 * mb, 2 * mb, 4 * mb, 8 * mb, 13.75 * mb)
    samples = []
    for duration, phase in workload.schedule.segments:
        big_cache = max(cache_probe_bytes)
        ips_at_cache = tuple(
            float(phase.ips(n_cores, c, bandwidth_bytes_s)) for c in cache_probe_bytes
        )
        best = max(ips_at_cache)
        samples.append(
            TraceSample(
                duration_s=duration,
                ips_one_core=float(phase.ips(1, big_cache, bandwidth_bytes_s)),
                ips_all_cores=float(phase.ips(n_cores, big_cache, bandwidth_bytes_s)),
                n_cores=n_cores,
                cache_probe_bytes=tuple(cache_probe_bytes),
                ips_at_cache=ips_at_cache,
                bandwidth_bytes_s=float(best * phase.bytes_per_instruction(big_cache)),
            )
        )
    return tuple(samples)
