"""Synthetic workload generation.

Random-but-plausible workload models for property-based tests and for
stress-testing policies beyond the fixed benchmark suites. Parameter
ranges bracket the benchmark profiles in :mod:`repro.workloads.parsec`
/ ``cloudsuite`` / ``ecp``.
"""

from __future__ import annotations

from typing import List

from repro.rng import SeedLike, make_rng
from repro.workloads.model import Phase, PhaseSchedule, Workload

MB = float(2**20)


def random_phase(rng: SeedLike = None) -> Phase:
    """Draw one random phase with realistic parameter ranges."""
    rng = make_rng(rng)
    miss_floor = float(rng.uniform(0.0003, 0.006))
    return Phase(
        ips_per_core=float(rng.uniform(0.8e9, 3.0e9)),
        parallel_fraction=float(rng.uniform(0.5, 0.99)),
        working_set_bytes=float(rng.uniform(0.5, 40.0)) * MB,
        miss_peak=miss_floor + float(rng.uniform(0.001, 0.02)),
        miss_floor=miss_floor,
        stream_bytes_per_instr=float(rng.uniform(0.0, 2.0)),
    )


def random_workload(
    name: str = "synthetic",
    n_phases: int = 3,
    rng: SeedLike = None,
) -> Workload:
    """Draw one random workload with ``n_phases`` cyclic phases."""
    rng = make_rng(rng)
    segments = tuple(
        (float(rng.uniform(1.5, 6.0)), random_phase(rng)) for _ in range(max(1, n_phases))
    )
    return Workload(
        name=name,
        suite="synthetic",
        description="randomly generated workload",
        schedule=PhaseSchedule(segments),
        contention_sensitivity=float(rng.uniform(0.02, 0.12)),
    )


def random_workloads(count: int, rng: SeedLike = None) -> List[Workload]:
    """Draw ``count`` distinct random workloads."""
    rng = make_rng(rng)
    return [random_workload(f"synthetic_{i}", rng=rng) for i in range(count)]
