"""CloudSuite benchmark models (paper Table II).

Five scale-out cloud workloads. Profiles follow the published
characterization of CloudSuite (Ferdman et al., ASPLOS'12): large
instruction/data footprints, modest per-core ILP, and — for the
serving workloads — low core-scaling with bandwidth-heavy data
movement.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.model import Phase, PhaseSchedule, Workload

MB = float(2**20)

SUITE = "cloudsuite"


def _workload(name: str, description: str, schedule: PhaseSchedule, **kwargs: float) -> Workload:
    return Workload(name=name, suite=SUITE, description=description, schedule=schedule, **kwargs)


def build_cloudsuite_workloads() -> Dict[str, Workload]:
    """Construct the five CloudSuite workload models keyed by name."""
    data_analytics_base = Phase(
        ips_per_core=1.5e9,
        parallel_fraction=0.82,
        working_set_bytes=8.0 * MB,
        miss_peak=0.010,
        miss_floor=0.0018,
        stream_bytes_per_instr=0.6,
        latency_sensitivity=0.35,
    )
    graph_analytics_base = Phase(
        ips_per_core=1.2e9,
        parallel_fraction=0.72,
        working_set_bytes=30.0 * MB,
        miss_peak=0.020,
        miss_floor=0.006,
        stream_bytes_per_instr=0.8,
        latency_sensitivity=0.60,
    )
    in_memory_analytics_base = Phase(
        ips_per_core=1.6e9,
        parallel_fraction=0.78,
        working_set_bytes=10.0 * MB,
        miss_peak=0.013,
        miss_floor=0.002,
        stream_bytes_per_instr=0.4,
        latency_sensitivity=0.50,
    )
    media_streaming_base = Phase(
        ips_per_core=1.3e9,
        parallel_fraction=0.60,
        working_set_bytes=1.0 * MB,
        miss_peak=0.005,
        miss_floor=0.002,
        stream_bytes_per_instr=2.0,
        latency_sensitivity=0.10,
    )
    web_search_base = Phase(
        ips_per_core=1.7e9,
        parallel_fraction=0.86,
        working_set_bytes=6.0 * MB,
        miss_peak=0.011,
        miss_floor=0.0015,
        stream_bytes_per_instr=0.35,
        latency_sensitivity=0.40,
    )

    return {
        "data_analytics": _workload(
            "data_analytics",
            "Naive Bayes classifier on Wikipedia entries",
            PhaseSchedule(
                (
                    (4.0, data_analytics_base),
                    (3.0, data_analytics_base.scaled(stream_bytes_per_instr=1.5, ips_per_core=0.9)),
                    (2.5, data_analytics_base.scaled(working_set_bytes=1.3)),
                )
            ),
            contention_sensitivity=0.07,
        ),
        "graph_analytics": _workload(
            "graph_analytics",
            "Page ranking on Twitter data",
            PhaseSchedule(
                (
                    (3.5, graph_analytics_base),
                    (2.5, graph_analytics_base.scaled(miss_peak=1.2, stream_bytes_per_instr=1.3)),
                    (3.0, graph_analytics_base.scaled(working_set_bytes=0.7, ips_per_core=1.1)),
                )
            ),
            contention_sensitivity=0.09,
        ),
        "in_memory_analytics": _workload(
            "in_memory_analytics",
            "In-memory filtering of movie ratings",
            PhaseSchedule(
                (
                    (4.5, in_memory_analytics_base),
                    (3.0, in_memory_analytics_base.scaled(working_set_bytes=1.4, miss_peak=1.1)),
                )
            ),
            contention_sensitivity=0.07,
        ),
        "media_streaming": _workload(
            "media_streaming",
            "Nginx server to stream videos",
            PhaseSchedule(
                (
                    (5.0, media_streaming_base),
                    (2.5, media_streaming_base.scaled(stream_bytes_per_instr=1.3)),
                    (3.5, media_streaming_base.scaled(stream_bytes_per_instr=0.7, ips_per_core=1.1)),
                )
            ),
            contention_sensitivity=0.10,
        ),
        "web_search": _workload(
            "web_search",
            "Web search algorithm implementation",
            PhaseSchedule(
                (
                    (3.0, web_search_base),
                    (2.5, web_search_base.scaled(working_set_bytes=1.3, ips_per_core=0.92)),
                    (4.0, web_search_base.scaled(parallel_fraction=0.95)),
                )
            ),
            contention_sensitivity=0.06,
        ),
    }
