"""Job-mix generation (Sec. IV of the paper).

The paper co-locates 5 of the 7 PARSEC workloads (``C(7,5) = 21``
mixes), 3 of the 5 CloudSuite workloads and 2 of the 5 ECP workloads
(10 mixes each). A :class:`JobMix` is an ordered tuple of workloads;
order matters only for labeling (job 0, job 1, ...).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.workloads.model import Workload
from repro.workloads.registry import WorkloadRegistry, default_registry

#: Co-location degree used by the paper for each suite.
SUITE_MIX_SIZE = {"parsec": 5, "cloudsuite": 3, "ecp": 2}


@dataclass(frozen=True)
class JobMix:
    """An ordered set of co-located workloads."""

    workloads: Tuple[Workload, ...]

    def __post_init__(self) -> None:
        if len(self.workloads) < 2:
            raise WorkloadError("a job mix needs at least two workloads")
        names = [w.name for w in self.workloads]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate workloads in mix: {names}")

    def __len__(self) -> int:
        return len(self.workloads)

    def __iter__(self):
        return iter(self.workloads)

    def __getitem__(self, index: int) -> Workload:
        return self.workloads[index]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(w.name for w in self.workloads)

    @property
    def label(self) -> str:
        """Compact human-readable mix label."""
        return "+".join(self.names)


def suite_mixes(
    suite: str,
    mix_size: int = None,
    registry: WorkloadRegistry = None,
) -> List[JobMix]:
    """All ``C(n, k)`` job mixes of a suite, in deterministic order.

    Args:
        suite: suite name (``"parsec"``, ``"cloudsuite"``, ``"ecp"``).
        mix_size: workloads per mix; defaults to the paper's choice for
            the suite (5, 3, and 2 respectively).
        registry: workload registry; defaults to the built-in one.

    Mix indices used throughout the reproduction (e.g. "job mix 20" in
    Fig. 8 discussions) refer to positions in this list.
    """
    registry = registry or default_registry()
    if mix_size is None:
        try:
            mix_size = SUITE_MIX_SIZE[suite]
        except KeyError:
            raise WorkloadError(
                f"no default mix size for suite {suite!r}; pass mix_size explicitly"
            ) from None
    workloads = registry.suite(suite)
    if mix_size > len(workloads):
        raise WorkloadError(
            f"suite {suite!r} has {len(workloads)} workloads; cannot form mixes of {mix_size}"
        )
    return [JobMix(tuple(combo)) for combo in itertools.combinations(workloads, mix_size)]


def mix_from_names(names: Sequence[str], registry: WorkloadRegistry = None) -> JobMix:
    """Build a mix from workload names (any suites)."""
    registry = registry or default_registry()
    return JobMix(tuple(registry.get(name) for name in names))
