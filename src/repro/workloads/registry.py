"""Workload registry: lookup by name and by suite.

The registry is the single source of truth for the benchmark models
used by examples, tests, and the paper-reproduction harness.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.cloudsuite import build_cloudsuite_workloads
from repro.workloads.ecp import build_ecp_workloads
from repro.workloads.model import Workload
from repro.workloads.parsec import build_parsec_workloads

#: Suite name -> builder. Extending the registry with a new suite only
#: requires adding an entry here.
_SUITE_BUILDERS = {
    "parsec": build_parsec_workloads,
    "cloudsuite": build_cloudsuite_workloads,
    "ecp": build_ecp_workloads,
}


class WorkloadRegistry:
    """Immutable catalog of all benchmark workload models."""

    def __init__(self, workloads: Dict[str, Workload] = None):
        if workloads is None:
            workloads = {}
            for builder in _SUITE_BUILDERS.values():
                built = builder()
                overlap = set(workloads) & set(built)
                if overlap:
                    raise WorkloadError(f"duplicate workload names across suites: {sorted(overlap)}")
                workloads.update(built)
        self._workloads = dict(workloads)

    def __len__(self) -> int:
        return len(self._workloads)

    def __contains__(self, name: object) -> bool:
        return name in self._workloads

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._workloads))

    @property
    def suites(self) -> Tuple[str, ...]:
        return tuple(sorted({w.suite for w in self._workloads.values()}))

    def get(self, name: str) -> Workload:
        """Return the workload called ``name``.

        Raises:
            WorkloadError: if no such workload is registered.
        """
        try:
            return self._workloads[name]
        except KeyError:
            raise WorkloadError(
                f"unknown workload {name!r}; registered: {', '.join(self.names)}"
            ) from None

    def suite(self, suite_name: str) -> List[Workload]:
        """All workloads of one suite, sorted by name."""
        found = sorted(
            (w for w in self._workloads.values() if w.suite == suite_name),
            key=lambda w: w.name,
        )
        if not found:
            raise WorkloadError(f"unknown suite {suite_name!r}; suites: {self.suites}")
        return found


_DEFAULT_REGISTRY = None


def default_registry() -> WorkloadRegistry:
    """The process-wide registry of the paper's benchmark models."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = WorkloadRegistry()
    return _DEFAULT_REGISTRY


def get_workload(name: str) -> Workload:
    """Convenience lookup in the default registry."""
    return default_registry().get(name)
