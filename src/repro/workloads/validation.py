"""Validation of workload profiles.

User-defined workloads (hand-written profiles or trace fits) can
silently encode physically implausible behaviour — a memory roofline
that never binds, a working set the machine can never cache, phases
that differ so little the model is effectively phase-free. This module
checks a :class:`~repro.workloads.model.Workload` against a catalog
and reports findings, so profile bugs surface before they skew an
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH, ResourceCatalog, default_catalog
from repro.workloads.model import Workload

#: Severity levels for findings.
INFO = "info"
WARNING = "warning"
ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One validation finding."""

    severity: str
    phase_index: Optional[int]
    message: str

    def __str__(self) -> str:
        where = "workload" if self.phase_index is None else f"phase {self.phase_index}"
        return f"[{self.severity}] {where}: {self.message}"


def validate_workload(
    workload: Workload, catalog: Optional[ResourceCatalog] = None
) -> List[Finding]:
    """Check a workload's profile for plausibility on a catalog.

    Returns findings sorted most-severe first; an empty list means the
    profile looks sound. Never raises on content issues — the caller
    decides what severity to tolerate.
    """
    catalog = catalog or default_catalog()
    findings: List[Finding] = []
    llc_capacity = catalog.get(LLC_WAYS).capacity
    bw_capacity = catalog.get(MEMORY_BANDWIDTH).capacity
    cores = catalog.get(CORES).units

    phases = [phase for _, phase in workload.schedule.segments]
    for index, phase in enumerate(phases):
        compute_peak = phase.compute_rate(cores)
        mem_full = phase.memory_rate(llc_capacity, bw_capacity)
        mem_min = phase.memory_rate(llc_capacity / 10.0, bw_capacity / 10.0)

        if mem_full > 20.0 * compute_peak:
            findings.append(
                Finding(
                    WARNING,
                    index,
                    "memory roofline never binds (memory rate "
                    f"{mem_full / compute_peak:.0f}x the compute peak); cache and "
                    "bandwidth allocations will be irrelevant for this phase",
                )
            )
        if mem_min > 3.0 * compute_peak:
            findings.append(
                Finding(
                    WARNING,
                    index,
                    "phase is compute-bound even at 10% of the memory resources; "
                    "partitioning decisions cannot differentiate it",
                )
            )
        if compute_peak > 50.0 * mem_full:
            findings.append(
                Finding(
                    WARNING,
                    index,
                    "phase is extremely memory-bound (compute peak "
                    f"{compute_peak / mem_full:.0f}x the memory rate); core "
                    "allocations will be irrelevant",
                )
            )
        if phase.working_set_bytes > 20.0 * llc_capacity:
            findings.append(
                Finding(
                    INFO,
                    index,
                    f"working set ({phase.working_set_bytes / 2**20:.0f} MB) dwarfs "
                    f"the LLC ({llc_capacity / 2**20:.1f} MB); cache allocation "
                    "yields only its floor effect",
                )
            )
        if phase.miss_peak > 0.1:
            findings.append(
                Finding(
                    ERROR,
                    index,
                    f"miss_peak {phase.miss_peak:.3f}/instr exceeds 100 MPKI — "
                    "beyond plausible LLC behaviour",
                )
            )
        if phase.ips_per_core > 2e10:
            findings.append(
                Finding(ERROR, index, f"ips_per_core {phase.ips_per_core:.2e} exceeds any real core")
            )

    if len(phases) >= 2:
        spread = _phase_spread(phases)
        if spread < 0.02:
            findings.append(
                Finding(
                    INFO,
                    None,
                    f"phases differ by <2% ({100 * spread:.1f}%); the workload is "
                    "effectively phase-free and will not exercise re-adaptation",
                )
            )

    severity_rank = {ERROR: 0, WARNING: 1, INFO: 2}
    findings.sort(key=lambda f: severity_rank[f.severity])
    return findings


def _phase_spread(phases) -> float:
    """Relative spread of the phases' key parameters."""
    spreads = []
    for attribute in ("ips_per_core", "working_set_bytes", "stream_bytes_per_instr", "parallel_fraction"):
        values = np.array([getattr(p, attribute) for p in phases], dtype=float)
        mean = values.mean()
        if mean > 0:
            spreads.append(values.std() / mean)
    return float(max(spreads)) if spreads else 0.0


def assert_valid(workload: Workload, catalog: Optional[ResourceCatalog] = None) -> None:
    """Raise ``ValueError`` if the profile has error-level findings."""
    errors = [f for f in validate_workload(workload, catalog) if f.severity == ERROR]
    if errors:
        raise ValueError("; ".join(str(f) for f in errors))
