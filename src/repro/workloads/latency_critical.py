"""Latency-critical workloads and their tail-latency model.

The paper adapts PARTIES — designed for *QoS of latency-critical (LC)
services* — to its throughput setting, and explicitly caveats that
PARTIES "should not be necessarily expected to perform for the
situation it was not designed for" (Sec. IV). To honour that
discussion, this module provides the LC setting itself: request-driven
workloads with a tail-latency target, so PARTIES can also be exercised
in its native role (see ``repro.policies.qos_parties`` and
``repro.experiments.qos``).

The latency model is queueing-theoretic: a workload's resource
allocation determines its service *capacity* through the same roofline
model (IPS), each request costs ``instructions_per_request``, and the
99th-percentile latency follows the M/M/1 tail

    p99(lambda, mu) = -ln(0.01) / (mu - lambda)        for lambda < mu

saturating to infinity at or beyond capacity. This captures exactly
the cliff behaviour that makes LC co-location hard: tail latency is
flat while utilization is low and explodes near saturation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.workloads.model import Workload

#: -ln(1 - 0.99): the M/M/1 99th-percentile factor.
_P99_FACTOR = -math.log(1.0 - 0.99)


@dataclass(frozen=True)
class RequestProfile:
    """Request-level behaviour of a latency-critical service.

    Attributes:
        instructions_per_request: work per request; divides the
            allocation's IPS into a service rate (requests/s).
        target_p99_s: the QoS target on 99th-percentile latency.
        load_rps: offered load in requests per second. A sequence
            models a load curve sampled at fixed steps; a scalar is a
            constant load.
        load_step_s: seconds per load-curve sample (ignored for
            constant loads).
    """

    instructions_per_request: float
    target_p99_s: float
    load_rps: Tuple[float, ...]
    load_step_s: float = 1.0

    def __post_init__(self) -> None:
        if self.instructions_per_request <= 0:
            raise WorkloadError("instructions_per_request must be positive")
        if self.target_p99_s <= 0:
            raise WorkloadError("target_p99_s must be positive")
        if not self.load_rps or any(v < 0 for v in self.load_rps):
            raise WorkloadError("load_rps must be non-empty and non-negative")
        if self.load_step_s <= 0:
            raise WorkloadError("load_step_s must be positive")

    @staticmethod
    def constant(
        instructions_per_request: float, target_p99_s: float, load_rps: float
    ) -> "RequestProfile":
        """A constant-load profile."""
        return RequestProfile(
            instructions_per_request=instructions_per_request,
            target_p99_s=target_p99_s,
            load_rps=(float(load_rps),),
        )

    def load_at(self, t: float) -> float:
        """Offered load at elapsed time ``t`` (the curve repeats)."""
        if len(self.load_rps) == 1:
            return self.load_rps[0]
        index = int(t / self.load_step_s) % len(self.load_rps)
        return self.load_rps[index]


@dataclass(frozen=True)
class LatencyCriticalJob:
    """A workload paired with its request profile and QoS target."""

    workload: Workload
    profile: RequestProfile

    @property
    def name(self) -> str:
        return self.workload.name

    def service_rate(self, ips: float) -> float:
        """Requests/s sustainable at a measured IPS."""
        return ips / self.profile.instructions_per_request

    def p99_latency_s(self, ips: float, t: float) -> float:
        """M/M/1 p99 latency under the current load at capacity ``ips``.

        Returns ``inf`` when the offered load meets or exceeds the
        service capacity (an overloaded LC service has unbounded tail).
        """
        mu = self.service_rate(ips)
        lam = self.profile.load_at(t)
        if mu <= lam:
            return math.inf
        return _P99_FACTOR / (mu - lam)

    def meets_qos(self, ips: float, t: float) -> bool:
        """Whether the tail-latency target holds at this capacity/load."""
        return self.p99_latency_s(ips, t) <= self.profile.target_p99_s

    def headroom(self, ips: float, t: float) -> float:
        """QoS slack: ``target / p99`` (>1 satisfied, <1 violating)."""
        p99 = self.p99_latency_s(ips, t)
        if math.isinf(p99):
            return 0.0
        return self.profile.target_p99_s / p99

    def required_ips(self, t: float, slack: float = 1.0) -> float:
        """IPS needed to meet the target with a given slack factor.

        Inverts the M/M/1 tail: ``mu = lambda + factor / target`` and
        scales by ``slack`` (>1 asks for margin).
        """
        lam = self.profile.load_at(t)
        mu = lam + _P99_FACTOR / self.profile.target_p99_s
        return mu * self.profile.instructions_per_request * slack


def latency_critical_suite(
    registry=None,
    load_fraction: float = 0.5,
    target_p99_ms: float = 20.0,
) -> Sequence[LatencyCriticalJob]:
    """LC versions of the interactive CloudSuite services.

    Each job's offered load is set to ``load_fraction`` of the service
    capacity it would have with an equal share of the machine — the
    regime where allocations decide QoS, as in the PARTIES evaluation.
    """
    from repro.resources.types import default_catalog
    from repro.workloads.registry import default_registry

    registry = registry or default_registry()
    catalog = default_catalog()
    services = ("web_search", "media_streaming", "in_memory_analytics")
    # Request costs sized so equal-share service rates land in the
    # hundreds-to-thousands of RPS — the regime where a 20 ms p99
    # target is feasible but allocation-sensitive.
    instructions_per_request = {
        "web_search": 2e6,
        "media_streaming": 1e6,
        "in_memory_analytics": 4e6,
    }

    jobs = []
    for name in services:
        workload = registry.get(name)
        equal_share_ips = workload.ips_under(
            catalog,
            0.0,
            cores=catalog.get("cores").units / len(services),
            llc_ways=catalog.get("llc_ways").units / len(services),
            bandwidth_units=catalog.get("memory_bandwidth").units / len(services),
        )
        ipr = instructions_per_request[name]
        load = load_fraction * equal_share_ips / ipr
        jobs.append(
            LatencyCriticalJob(
                workload=workload,
                profile=RequestProfile.constant(ipr, target_p99_ms / 1000.0, load),
            )
        )
    return jobs
