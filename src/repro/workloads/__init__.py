"""Workload models: roofline phases, benchmark suites, job mixes."""

from repro.workloads.mixes import SUITE_MIX_SIZE, JobMix, mix_from_names, suite_mixes
from repro.workloads.model import (
    CACHE_LINE_BYTES,
    Phase,
    PhaseSchedule,
    Workload,
    smoothmin,
)
from repro.workloads.latency_critical import (
    LatencyCriticalJob,
    RequestProfile,
    latency_critical_suite,
)
from repro.workloads.registry import WorkloadRegistry, default_registry, get_workload
from repro.workloads.trace import TraceSample, synthesize_trace, workload_from_trace
from repro.workloads.validation import assert_valid, validate_workload
from repro.workloads.synthetic import random_phase, random_workload, random_workloads

__all__ = [
    "CACHE_LINE_BYTES",
    "JobMix",
    "LatencyCriticalJob",
    "RequestProfile",
    "TraceSample",
    "assert_valid",
    "latency_critical_suite",
    "synthesize_trace",
    "validate_workload",
    "workload_from_trace",
    "Phase",
    "PhaseSchedule",
    "SUITE_MIX_SIZE",
    "Workload",
    "WorkloadRegistry",
    "default_registry",
    "get_workload",
    "mix_from_names",
    "random_phase",
    "random_workload",
    "random_workloads",
    "smoothmin",
    "suite_mixes",
]
