"""PARSEC benchmark models (paper Table I, plus ``vips``).

The paper evaluates on 7 PARSEC benchmarks (Table I lists six; the
per-mix analysis in Sec. V names ``vips`` as the seventh, and
``C(7,5) = 21`` mixes confirms seven). Each profile below encodes the
benchmark's published resource-sensitivity character — which is all
SATORI can observe — as roofline-phase parameters:

* ``fluidanimate`` is strongly core-count sensitive (the paper's
  explanation for job-mix 0's low gain) and pushes streaming memory
  traffic (the paper notes it contends with ``blackscholes`` for
  memory bandwidth).
* ``blackscholes`` is compute-regular with bursts of bandwidth demand.
* ``canneal`` and ``freqmine`` are LLC-capacity sensitive.
* ``streamcluster`` is bandwidth bound.
* ``swaptions`` is embarrassingly parallel and cache-resident.
* ``vips`` is a balanced pipeline.

Phase durations are mutually prime-ish so co-located schedules drift
against each other, reproducing the optimal-configuration churn of
Fig. 1.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.model import Phase, PhaseSchedule, Workload

MB = float(2**20)

SUITE = "parsec"


def _workload(name: str, description: str, schedule: PhaseSchedule, **kwargs: float) -> Workload:
    return Workload(name=name, suite=SUITE, description=description, schedule=schedule, **kwargs)


def build_parsec_workloads() -> Dict[str, Workload]:
    """Construct the seven PARSEC workload models keyed by name."""
    blackscholes_base = Phase(
        ips_per_core=2.4e9,
        parallel_fraction=0.90,
        working_set_bytes=1.5 * MB,
        miss_peak=0.004,
        miss_floor=0.0008,
        stream_bytes_per_instr=1.8,
        latency_sensitivity=0.10,
    )
    canneal_base = Phase(
        ips_per_core=0.9e9,
        parallel_fraction=0.50,
        working_set_bytes=12.0 * MB,
        miss_peak=0.016,
        miss_floor=0.002,
        stream_bytes_per_instr=0.25,
        latency_sensitivity=0.60,
    )
    fluidanimate_base = Phase(
        ips_per_core=2.8e9,
        parallel_fraction=0.99,
        working_set_bytes=3.0 * MB,
        miss_peak=0.006,
        miss_floor=0.0012,
        stream_bytes_per_instr=0.85,
        latency_sensitivity=0.15,
    )
    freqmine_base = Phase(
        ips_per_core=1.5e9,
        parallel_fraction=0.70,
        working_set_bytes=9.0 * MB,
        miss_peak=0.012,
        miss_floor=0.0015,
        stream_bytes_per_instr=0.3,
        latency_sensitivity=0.45,
    )
    streamcluster_base = Phase(
        ips_per_core=1.8e9,
        parallel_fraction=0.88,
        working_set_bytes=2.0 * MB,
        miss_peak=0.008,
        miss_floor=0.003,
        stream_bytes_per_instr=2.4,
        latency_sensitivity=0.05,
    )
    swaptions_base = Phase(
        ips_per_core=3.2e9,
        parallel_fraction=0.99,
        working_set_bytes=0.5 * MB,
        miss_peak=0.002,
        miss_floor=0.0003,
        stream_bytes_per_instr=0.05,
        latency_sensitivity=0.05,
    )
    vips_base = Phase(
        ips_per_core=2.0e9,
        parallel_fraction=0.87,
        working_set_bytes=4.0 * MB,
        miss_peak=0.007,
        miss_floor=0.0012,
        stream_bytes_per_instr=0.5,
        latency_sensitivity=0.25,
    )

    workloads = {
        "blackscholes": _workload(
            "blackscholes",
            "Option pricing with Black-Scholes Partial Differential Eq.",
            PhaseSchedule(
                (
                    (4.0, blackscholes_base),
                    (2.5, blackscholes_base.scaled(stream_bytes_per_instr=2.4, ips_per_core=0.9)),
                    (3.5, blackscholes_base.scaled(ips_per_core=1.1, stream_bytes_per_instr=0.6)),
                )
            ),
            contention_sensitivity=0.06,
        ),
        "canneal": _workload(
            "canneal",
            "Simulated cache-aware annealing to optimize chip design",
            PhaseSchedule(
                (
                    (5.0, canneal_base),
                    (3.0, canneal_base.scaled(working_set_bytes=0.6, miss_peak=0.85)),
                    (4.5, canneal_base.scaled(working_set_bytes=1.3, miss_peak=1.15)),
                )
            ),
            contention_sensitivity=0.08,
        ),
        "fluidanimate": _workload(
            "fluidanimate",
            "Fluid dynamics for animation with Smoothed Particle Hydrodynamics",
            PhaseSchedule(
                (
                    (3.0, fluidanimate_base),
                    (2.0, fluidanimate_base.scaled(parallel_fraction=0.99, stream_bytes_per_instr=1.2)),
                    (2.5, fluidanimate_base.scaled(ips_per_core=0.85)),
                )
            ),
            contention_sensitivity=0.07,
        ),
        "freqmine": _workload(
            "freqmine",
            "Frequent itemset mining",
            PhaseSchedule(
                (
                    (4.0, freqmine_base),
                    (3.5, freqmine_base.scaled(working_set_bytes=1.4, ips_per_core=0.9)),
                    (2.5, freqmine_base.scaled(working_set_bytes=0.7, ips_per_core=1.1)),
                )
            ),
            contention_sensitivity=0.07,
        ),
        "streamcluster": _workload(
            "streamcluster",
            "Online clustering of an input stream",
            PhaseSchedule(
                (
                    (3.5, streamcluster_base),
                    (3.0, streamcluster_base.scaled(stream_bytes_per_instr=1.25)),
                    (2.0, streamcluster_base.scaled(stream_bytes_per_instr=0.6, ips_per_core=1.1)),
                )
            ),
            contention_sensitivity=0.09,
        ),
        "swaptions": _workload(
            "swaptions",
            "Pricing of a portfolio of swaptions",
            PhaseSchedule(
                (
                    (6.0, swaptions_base),
                    (3.0, swaptions_base.scaled(ips_per_core=0.92, parallel_fraction=0.98)),
                )
            ),
            contention_sensitivity=0.04,
        ),
        "vips": _workload(
            "vips",
            "Image processing pipeline (VASARI Image Processing System)",
            PhaseSchedule(
                (
                    (3.0, vips_base),
                    (2.5, vips_base.scaled(working_set_bytes=1.5, stream_bytes_per_instr=1.2)),
                    (3.5, vips_base.scaled(ips_per_core=1.1, working_set_bytes=0.7)),
                )
            ),
            contention_sensitivity=0.06,
        ),
    }
    return workloads
