"""Deterministic random-number helpers.

All stochastic components of the reproduction (measurement noise,
random search, BO candidate pools, synthetic workload generation) draw
from :class:`numpy.random.Generator` instances derived from explicit
seeds, so every experiment in the paper-reproduction harness is exactly
repeatable.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer seed, an existing generator (returned
    unchanged, so components can share a stream), or ``None`` for an
    OS-entropy seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, key: Optional[int] = None) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used to give each job / policy / monitor its own stream so that
    adding one consumer does not perturb the random sequence observed
    by the others.
    """
    seed = int(rng.integers(0, 2**63 - 1)) if key is None else key
    return np.random.default_rng(seed)
