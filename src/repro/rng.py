"""Deterministic random-number helpers.

All stochastic components of the reproduction (measurement noise,
random search, BO candidate pools, synthetic workload generation) draw
from :class:`numpy.random.Generator` instances derived from explicit
seeds, so every experiment in the paper-reproduction harness is exactly
repeatable.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer seed, an existing generator (returned
    unchanged, so components can share a stream), or ``None`` for an
    OS-entropy seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, key: Optional[int] = None) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used to give each job / policy / monitor its own stream so that
    adding one consumer does not perturb the random sequence observed
    by the others.
    """
    seed = int(rng.integers(0, 2**63 - 1)) if key is None else key
    return np.random.default_rng(seed)


def rng_state(rng: np.random.Generator) -> dict:
    """A generator's exact stream position as JSON-compatible plain data.

    Numpy exposes the underlying bit generator's state as a dict of
    ints and strings (Python ints are arbitrary-precision, so the
    128-bit PCG64 words survive JSON untouched). Restoring this state
    via :func:`rng_from_state` resumes the stream bit-identically —
    the property the policy snapshot/restore protocol is built on.
    """
    return _plain(rng.bit_generator.state)


def rng_from_state(state: dict) -> np.random.Generator:
    """A fresh generator resumed at the stream position of ``state``."""
    name = state.get("bit_generator", "PCG64")
    try:
        bit_generator = getattr(np.random, name)()
    except AttributeError:
        raise ValueError(f"unknown numpy bit generator {name!r}") from None
    bit_generator.state = _plain(state)
    return np.random.Generator(bit_generator)


def _plain(value):
    """Deep-copy nested dicts/lists with numpy scalars coerced to Python."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value
