"""Declarative run specifications with content-addressed identity.

A :class:`RunSpec` captures everything that determines one policy run:
the job mix (full workload models, not just names), the policy-factory
id and its kwargs, the resource catalog, the methodology knobs, the
goal metrics, and a base seed. Two specs with equal content have equal
digests — across processes and Python sessions — which is what lets
the engine deduplicate work, fan it out to workers, and cache results
on disk.

Randomness is derived *from the spec digest*, never from submission
order: each consumer (policy search, measurement noise) gets its own
stream via :meth:`RunSpec.seed_for`, so a spec produces bit-identical
telemetry whether it runs first or last, serially or on worker 7.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, Mapping, Tuple

from typing import Optional

from repro.errors import EngineError
from repro.experiments.runner import RunConfig
from repro.faults.plan import FaultPlan
from repro.metrics.goals import GoalSet
from repro.resources.types import Resource, ResourceCatalog, ResourceKind
from repro.state import PolicyState
from repro.workloads.mixes import JobMix

#: Derived seeds live in numpy's legal seed range.
_SEED_SPACE = 2**63 - 1


def derive_seed(*parts: Any) -> int:
    """A stable 63-bit seed from arbitrary string-able parts.

    Used wherever a deterministic child seed is needed outside a spec
    (e.g. legacy in-process policies that bypass the registry).
    """
    text = "/".join(str(p) for p in parts)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big") % _SEED_SPACE


def _freeze(value: Any) -> Any:
    """Recursively convert plain data into a hashable canonical form."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise EngineError(
        f"policy kwargs must be JSON-compatible plain data; got {type(value).__name__}: {value!r}"
    )


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for passing kwargs to factories."""
    if isinstance(value, tuple):
        if all(isinstance(v, tuple) and len(v) == 2 and isinstance(v[0], str) for v in value):
            return {k: _thaw(v) for k, v in value}
        return tuple(_thaw(v) for v in value)
    return value


def _jsonable(value: Any) -> Any:
    """Frozen kwargs rendered back into JSON-native containers."""
    thawed = _thaw(value)
    if isinstance(thawed, tuple):
        return [_jsonable(v) for v in thawed]
    if isinstance(thawed, dict):
        return {k: _jsonable(v) for k, v in thawed.items()}
    return thawed


def _listify(value: Any) -> Any:
    """Tuples (from frozen dataclasses) rendered as JSON-native lists."""
    if isinstance(value, dict):
        return {k: _listify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_listify(v) for v in value]
    return value


@dataclass(frozen=True)
class RunSpec:
    """A frozen, hashable description of one policy run.

    Attributes:
        mix: the co-located workloads (frozen dataclasses — the digest
            covers their full analytic models, so regenerated synthetic
            workloads with different parameters hash differently).
        policy: a policy-factory id registered in
            :mod:`repro.policies.registry` (e.g. ``"SATORI"``).
        catalog: the server's resource catalog.
        policy_kwargs: JSON-compatible kwargs for the factory, stored
            canonically as sorted key/value tuples (pass a dict).
        run_config: methodology knobs (duration, intervals, noise).
        goals: ``(throughput_metric, fairness_metric)`` names.
        seed: base seed; all RNG streams derive from the digest, which
            includes this value.
        fault_plan: optional :class:`~repro.faults.plan.FaultPlan` to
            inject during the run. The plan is part of the digest (a
            faulted run is a different experiment than a clean one) and
            its realization draws from the *environment* digest — which
            excludes the policy — so variants compared under the same
            plan, mix, and seed face the identical fault timeline
            (hardware does not care which controller is running).
        initial_state: optional :class:`~repro.state.PolicyState` to
            warm-start the policy from. Part of the content digest (a
            warm run is a different experiment than a cold one — the
            cache must never serve one for the other) but excluded
            from :attr:`cold_digest` and the environment digest: the
            measurement-noise stream derives from the cold digest, so
            a warm run and its cold twin face bit-identical noise and
            every difference between them is the carried state.
    """

    mix: JobMix
    policy: str
    catalog: ResourceCatalog
    policy_kwargs: Tuple[Tuple[str, Any], ...] = ()
    run_config: RunConfig = RunConfig()
    goals: Tuple[str, str] = ("sum_ips", "jain")
    seed: int = 0
    fault_plan: Optional[FaultPlan] = None
    initial_state: Optional[PolicyState] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy_kwargs", _freeze(dict(self.policy_kwargs)
                           if isinstance(self.policy_kwargs, Mapping)
                           else dict(tuple(self.policy_kwargs))))
        object.__setattr__(self, "goals", (str(self.goals[0]), str(self.goals[1])))
        object.__setattr__(self, "seed", int(self.seed))
        if isinstance(self.fault_plan, Mapping):
            object.__setattr__(self, "fault_plan", FaultPlan.from_dict(dict(self.fault_plan)))
        if isinstance(self.initial_state, Mapping):
            object.__setattr__(
                self, "initial_state", PolicyState.from_dict(dict(self.initial_state))
            )

    # -- identity --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-compatible representation (digest input).

        ``initial_state`` is emitted only when set, so cold-start specs
        keep the digests they had before warm-start existed (cached
        results stay addressable), while a warm-start spec can never
        collide with its cold twin.
        """
        content = {
            "mix": self.mix_payload,
            "policy": self.policy,
            "policy_kwargs": _jsonable(self.policy_kwargs),
            "catalog": [
                {
                    "kind": r.kind.value,
                    "units": r.units,
                    "min_units": r.min_units,
                    "unit_capacity": r.unit_capacity,
                }
                for r in self.catalog
            ],
            "run_config": self.run_config.to_dict(),
            "goals": list(self.goals),
            "seed": self.seed,
            "faults": self.fault_plan.to_dict() if self.fault_plan is not None else None,
        }
        if self.initial_state is not None:
            content["initial_state"] = self.initial_state.to_dict()
        return content

    @cached_property
    def mix_payload(self) -> Dict[str, Any]:
        """The mix's canonical JSON form — the heavy part of the spec.

        Cached because every digest (and every cache write) needs it,
        and rendering the full analytic workload models dominates
        :meth:`to_dict`. Treat the returned dict as read-only; it is
        shared across calls.
        """
        return {
            "label": self.mix.label,
            "workloads": [_listify(dataclasses.asdict(w)) for w in self.mix],
        }

    @cached_property
    def mix_digest(self) -> str:
        """SHA-256 digest of the mix alone — the blob-transport address.

        Specs differing only in policy, seed, or methodology share one
        mix digest, so pool workers hydrate the workload models once
        per mix rather than once per submission (see
        :mod:`repro.engine.blobs`).
        """
        payload = json.dumps(self.mix_payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    @cached_property
    def digest(self) -> str:
        """SHA-256 hex digest of the canonical representation."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def __eq__(self, other: object) -> bool:
        """Content equality via digests.

        Semantically identical to the field-tuple comparison a frozen
        dataclass would generate (the digest covers every field), but
        after the first comparison it is a single cached-string check —
        the engine's dedup map and the cluster's speculative-future
        table key on specs, and hashing the full workload models on
        every lookup dominated submission cost.
        """
        if self is other:
            return True
        if not isinstance(other, RunSpec):
            return NotImplemented
        return self.digest == other.digest

    def __hash__(self) -> int:
        return hash(self.digest)

    @cached_property
    def cold_digest(self) -> str:
        """Digest of the spec with any warm-start state stripped.

        The measurement-noise seed derives from this digest: a warm
        continuation and its cold twin then sample identical noise, so
        their comparison is paired — and for cold specs it equals
        :attr:`digest`, preserving every pre-warm-start noise stream.
        """
        if self.initial_state is None:
            return self.digest
        content = self.to_dict()
        del content["initial_state"]
        payload = json.dumps(content, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    @cached_property
    def environment_digest(self) -> str:
        """Digest of the run's *environment*: everything but the policy.

        Seeds for physical events the policy cannot influence — fault
        realizations — derive from this digest, so two specs differing
        only in policy (or policy kwargs, or scoring metrics) face
        bit-identical environments. That is what makes A/B policy
        comparisons under faults *paired* rather than merely
        statistically equivalent.
        """
        content = self.to_dict()
        for key in ("policy", "policy_kwargs", "goals"):
            del content[key]
        # Warm-start state is policy baggage, not environment: a warm
        # and a cold run of the same mix/seed face identical fault
        # realizations, so their comparison is paired.
        content.pop("initial_state", None)
        payload = json.dumps(content, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def seed_for(self, stream: str) -> int:
        """A deterministic seed for one named consumer of this spec.

        Distinct ``stream`` names (``"policy"``, ``"noise"``) yield
        independent streams; both are functions of the content digest
        only, so they are identical in every process that runs the
        spec.
        """
        return derive_seed(self.digest, stream)

    # -- reconstruction helpers -----------------------------------------

    @property
    def n_jobs(self) -> int:
        return len(self.mix)

    def goal_set(self) -> GoalSet:
        return GoalSet(*self.goals)

    def kwargs_dict(self) -> Dict[str, Any]:
        """Policy kwargs as a plain dict for the factory call."""
        return dict(_thaw(self.policy_kwargs))

    @staticmethod
    def catalog_from_dict(entries) -> ResourceCatalog:
        """Rebuild a catalog from the ``catalog`` part of :meth:`to_dict`."""
        return ResourceCatalog(
            Resource(
                kind=ResourceKind(e["kind"]),
                units=int(e["units"]),
                min_units=int(e["min_units"]),
                unit_capacity=float(e["unit_capacity"]),
            )
            for e in entries
        )

    def __repr__(self) -> str:  # keep logs readable: the mix dataclass repr is huge
        return (
            f"RunSpec(policy={self.policy!r}, mix={self.mix.label!r}, "
            f"seed={self.seed}, digest={self.digest[:12]})"
        )
