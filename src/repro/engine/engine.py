"""The execution engine: batch fan-out with deterministic results.

:class:`ExecutionEngine.run` takes a batch of :class:`RunSpec` jobs
and returns their :class:`RunResult` objects in submission order. The
engine guarantees *bit-identical* results regardless of worker count,
submission order, or completion order, because

* every RNG stream a run consumes is derived from the spec's content
  digest (:meth:`RunSpec.seed_for`), never from shared generators or
  submission sequence;
* every result — computed serially, computed in a worker, or loaded
  from cache — passes through the same lossless JSON representation
  (:meth:`RunResult.to_dict` / ``from_dict``), so all three paths
  yield structurally equal objects.

Duplicate specs inside a batch execute once (the 21-mix PARSEC grid
shares one Balanced Oracle run per mix across all drivers that ask for
it), and an attached :class:`~repro.engine.cache.RunCache` extends the
dedup across engine instances, processes, and sessions.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.engine.cache import RunCache
from repro.engine.spec import RunSpec
from repro.errors import EngineError
from repro.experiments.runner import RunResult, run_policy
from repro.policies.registry import make_policy


def execute_run(spec: RunSpec) -> RunResult:
    """Execute one spec from scratch (no cache, current process).

    This is the single choke point every run goes through — the
    warm-cache tests monkeypatch :func:`repro.experiments.runner.run_policy`
    via this module to prove cached batches trigger zero executions.
    """
    goals = spec.goal_set()
    policy = make_policy(
        spec.policy,
        spec.mix,
        spec.catalog,
        goals,
        rng=spec.seed_for("policy"),
        **spec.kwargs_dict(),
    )
    return run_policy(
        policy, spec.mix, spec.catalog, spec.run_config, goals, seed=spec.seed_for("noise")
    )


def _execute_run_payload(spec: RunSpec) -> dict:
    """Worker entry point: run a spec, ship the result as plain data."""
    return execute_run(spec).to_dict()


@dataclass
class EngineStats:
    """Counters for one engine's lifetime (all ``run`` calls summed).

    Attributes:
        submitted: specs passed to ``run`` (including duplicates).
        executed: specs actually run via :func:`execute_run`.
        deduplicated: duplicate specs coalesced within batches.
        cache_hits / cache_misses: disk-cache lookups (zero without a
            cache attached).
        batches: number of ``run`` calls.
    """

    submitted: int = 0
    executed: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "deduplicated": self.deduplicated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "batches": self.batches,
        }

    def summary(self) -> str:
        """One-line human-readable form for CLI/report output."""
        return (
            f"{self.submitted} submitted, {self.executed} executed, "
            f"{self.deduplicated} deduplicated, "
            f"{self.cache_hits} cache hits, {self.cache_misses} cache misses"
        )


class ExecutionEngine:
    """Runs batches of specs serially or across worker processes.

    Args:
        workers: process count; ``1`` (the default) executes in-process
            with no multiprocessing dependency, which is also the
            deterministic fallback on single-core machines.
        cache: optional :class:`RunCache`; hits skip execution
            entirely and misses are stored after execution.
    """

    def __init__(self, workers: int = 1, cache: Optional[RunCache] = None):
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self._workers = int(workers)
        self._cache = cache
        self._stats = EngineStats()

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def cache(self) -> Optional[RunCache]:
        return self._cache

    @property
    def stats(self) -> EngineStats:
        return self._stats

    def run_one(self, spec: RunSpec) -> RunResult:
        """Convenience wrapper: run a single spec."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute a batch; results align with ``specs`` by position.

        Identical specs (equal content, hence equal digest) execute at
        most once per batch; with a cache attached, at most once ever
        per code version.
        """
        specs = list(specs)
        self._stats.batches += 1
        self._stats.submitted += len(specs)

        # First-seen order of unique specs keeps scheduling deterministic.
        unique: Dict[RunSpec, Optional[RunResult]] = {}
        for spec in specs:
            if spec in unique:
                self._stats.deduplicated += 1
            else:
                unique[spec] = None

        pending: List[RunSpec] = []
        for spec in unique:
            cached = self._cache.get(spec) if self._cache is not None else None
            if cached is not None:
                self._stats.cache_hits += 1
                unique[spec] = cached
            else:
                if self._cache is not None:
                    self._stats.cache_misses += 1
                pending.append(spec)

        for spec, payload in zip(pending, self._execute_batch(pending)):
            result = RunResult.from_dict(payload)
            self._stats.executed += 1
            if self._cache is not None:
                self._cache.put(spec, result)
            unique[spec] = result

        return [unique[spec] for spec in specs]

    # -- internals -------------------------------------------------------

    def _execute_batch(self, pending: Sequence[RunSpec]) -> List[dict]:
        """Run ``pending`` specs, returning payload dicts in order.

        Results are collected by index, so out-of-order completion in
        the pool cannot reorder or cross-wire them.
        """
        if not pending:
            return []
        if self._workers == 1 or len(pending) == 1:
            return [_execute_run_payload(spec) for spec in pending]

        payloads: List[Optional[dict]] = [None] * len(pending)
        max_workers = min(self._workers, len(pending))
        with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(_execute_run_payload, spec): index
                for index, spec in enumerate(pending)
            }
            for future in concurrent.futures.as_completed(futures):
                payloads[futures[future]] = future.result()
        return payloads  # type: ignore[return-value]
