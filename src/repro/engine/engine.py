"""The execution engine: incremental fan-out with deterministic results.

The engine exposes two surfaces over one internal scheduler:

* the historical blocking batch call — :meth:`ExecutionEngine.run`
  takes a batch of :class:`RunSpec` jobs and returns their
  :class:`RunResult` objects in submission order;
* a non-blocking futures surface — :meth:`ExecutionEngine.submit`
  returns an :class:`EngineFuture` immediately, :meth:`ExecutionEngine.poll`
  makes bounded progress without blocking, and
  :meth:`ExecutionEngine.as_completed` yields futures as their specs
  finish. Long-lived callers (the ``repro.serve`` control plane, the
  cluster's speculative batching) interleave submission with other work
  instead of parking on a whole batch.

Worker processes live in one persistent pool per engine, created
lazily on first parallel work and reused across batches — per-batch
pool spin-up is gone. :meth:`ExecutionEngine.close` (or the context
manager form) releases the pool; an abandoned straggler retires the
pool so a stuck worker cannot poison later batches.

Both surfaces guarantee *bit-identical* results regardless of worker
count, submission order, or completion order, because

* every RNG stream a run consumes is derived from the spec's content
  digest (:meth:`RunSpec.seed_for`), never from shared generators or
  submission sequence;
* every result — computed serially, computed in a worker, or loaded
  from cache — passes through the same lossless JSON representation
  (:meth:`RunResult.to_dict` / ``from_dict``), so all three paths
  yield structurally equal objects.

Duplicate specs inside a batch execute once (the 21-mix PARSEC grid
shares one Balanced Oracle run per mix across all drivers that ask for
it), and an attached :class:`~repro.engine.cache.RunCache` extends the
dedup across engine instances, processes, and sessions.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.engine.blobs import BlobStore, SpecRef
from repro.engine.cache import RunCache
from repro.engine.spec import RunSpec, derive_seed
from repro.errors import EngineError
from repro.experiments.runner import RunResult, run_policy
from repro.obs import TraceCollector, TraceEvent, active_collector, use_collector
from repro.policies.registry import make_policy


def execute_run(spec: RunSpec) -> RunResult:
    """Execute one spec from scratch (no cache, current process).

    This is the single choke point every run goes through — the
    warm-cache tests monkeypatch :func:`repro.experiments.runner.run_policy`
    via this module to prove cached batches trigger zero executions.
    """
    goals = spec.goal_set()
    policy = make_policy(
        spec.policy,
        spec.mix,
        spec.catalog,
        goals,
        rng=spec.seed_for("policy"),
        initial_state=spec.initial_state,
        **spec.kwargs_dict(),
    )
    # Noise derives from the cold digest — the spec with any warm-start
    # state stripped — so a warm continuation and its cold twin measure
    # the same perturbed hardware (their delta is the carried state),
    # while cold specs keep their historical noise streams.
    return run_policy(
        policy,
        spec.mix,
        spec.catalog,
        spec.run_config,
        goals,
        seed=derive_seed(spec.cold_digest, "noise"),
        faults=spec.fault_plan,
        fault_seed=derive_seed(spec.environment_digest, "faults"),
    )


def _execute_run_payload(spec: RunSpec) -> dict:
    """Worker entry point: run a spec, ship the result as plain data."""
    return execute_run(spec).to_dict()


def _execute_run_traced(
    spec: RunSpec, collect: bool = False
) -> Tuple[dict, float, Optional[List[dict]]]:
    """Worker entry point reporting wall time and (optionally) spans.

    Worker processes have their own memory, so spans recorded inside
    them never reach the parent's collector directly. With ``collect``
    set, the worker records its spans into a local collector and ships
    them back serialized alongside the payload; the parent adopts them
    onto its own timeline (:meth:`TraceCollector.adopt`) under a
    per-worker lane. Without it, only the measured duration crosses
    the pipe — enough for run timing and worker-utilization metrics.
    """
    started = time.perf_counter()
    if not collect:
        return _execute_run_payload(spec), time.perf_counter() - started, None
    local = TraceCollector()
    with use_collector(local):
        with local.span("run_spec", "engine"):
            payload = _execute_run_payload(spec)
    events = [event.to_dict() for event in local.events]
    return payload, time.perf_counter() - started, events


def _execute_run_traced_blob(
    ref: SpecRef, collect: bool = False
) -> Tuple[dict, float, Optional[List[dict]], bool]:
    """Worker entry point for digest-addressed spec transport.

    The submission carries a :class:`~repro.engine.blobs.SpecRef`
    instead of a pickled spec; the worker hydrates the mix from its
    per-process blob cache (at most one disk read + unpickle per mix
    per worker) and runs the rebuilt spec exactly as the pickle
    transport would. The extra tuple element reports whether the mix
    came from the cache, for the parent's hit/miss counters.
    """
    spec, blob_hit = ref.hydrate()
    payload, duration_s, events = _execute_run_traced(spec, collect)
    return payload, duration_s, events, blob_hit


@dataclass(frozen=True)
class RunError:
    """A spec that could not be executed (partial-batch bookkeeping).

    Produced by :meth:`ExecutionEngine.run` with ``on_error="record"``
    in place of the failed spec's :class:`RunResult`, so one crashed or
    hung run does not discard the rest of the batch.

    Attributes:
        spec: the failed spec.
        error: ``"ExceptionType: message"`` of the last failure, or the
            straggler-timeout description.
        attempts: how many times the spec was tried (1 + retries used).
    """

    spec: RunSpec
    error: str
    attempts: int


@dataclass
class EngineStats:
    """Counters for one engine's lifetime (all ``run`` calls summed).

    Attributes:
        submitted: specs passed to ``run``/``submit`` (including
            duplicates).
        executed: specs actually run via :func:`execute_run`.
        deduplicated: duplicate specs coalesced onto an in-flight twin.
        cache_hits / cache_misses: disk-cache lookups (zero without a
            cache attached).
        batches: number of ``run`` calls.
        retried: failed executions that were re-attempted.
        failed: specs that still had no result after all retries.
        cache_errors: cache writes that failed (the cache disables
            itself after the first, so this is at most 1 per cache).
    """

    submitted: int = 0
    executed: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0
    retried: int = 0
    failed: int = 0
    cache_errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "deduplicated": self.deduplicated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "batches": self.batches,
            "retried": self.retried,
            "failed": self.failed,
            "cache_errors": self.cache_errors,
        }

    def summary(self) -> str:
        """One-line human-readable form for CLI/report output."""
        text = (
            f"{self.submitted} submitted, {self.executed} executed, "
            f"{self.deduplicated} deduplicated, "
            f"{self.cache_hits} cache hits, {self.cache_misses} cache misses"
        )
        if self.retried or self.failed:
            text += f", {self.retried} retried, {self.failed} failed"
        if self.cache_errors:
            text += f", {self.cache_errors} cache errors"
        return text


# Slot lifecycle: QUEUED -> RUNNING -> (DONE | RETRY_WAIT -> QUEUED -> ...)
_QUEUED = "queued"
_RUNNING = "running"
_RETRY_WAIT = "retry_wait"
_DONE = "done"


class _Slot:
    """One unique in-flight spec: shared by every future that maps to it."""

    __slots__ = (
        "spec", "state", "outcome", "attempts", "error",
        "pool_future", "retry_at", "retry_delay", "lane",
    )

    def __init__(self, spec: RunSpec):
        self.spec = spec
        self.state = _QUEUED
        self.outcome: Optional[Union[RunResult, RunError]] = None
        self.attempts = 0
        self.error: Optional[str] = None
        self.pool_future: Optional[concurrent.futures.Future] = None
        self.retry_at: Optional[float] = None
        self.retry_delay = 0.0
        self.lane = 0

    @property
    def done(self) -> bool:
        return self.state == _DONE

    def resolve(self, outcome: Union[RunResult, RunError]) -> None:
        self.outcome = outcome
        self.state = _DONE
        self.pool_future = None


class EngineFuture:
    """Handle to one submitted spec.

    Futures for equal specs share one underlying execution (and one
    outcome object); a future stays valid after the engine has moved on
    to other work.
    """

    __slots__ = ("_engine", "_slot")

    def __init__(self, engine: "ExecutionEngine", slot: _Slot):
        self._engine = engine
        self._slot = slot

    @property
    def spec(self) -> RunSpec:
        return self._slot.spec

    @property
    def done(self) -> bool:
        return self._slot.done

    def peek(self) -> Optional[Union[RunResult, RunError]]:
        """The outcome if resolved, else ``None`` (never blocks)."""
        return self._slot.outcome

    def outcome(self, timeout_s: Optional[float] = None) -> Union[RunResult, RunError]:
        """Block (driving the engine) until resolved; never raises for
        a failed spec — the :class:`RunError` is returned instead."""
        self._engine._wait_for(self._slot, timeout_s)
        return self._slot.outcome

    def result(self, timeout_s: Optional[float] = None) -> RunResult:
        """Block until resolved; raise :class:`~repro.errors.EngineError`
        if the spec exhausted its retries."""
        value = self.outcome(timeout_s)
        if isinstance(value, RunError):
            raise EngineError(
                f"{value.spec!r} failed after {value.attempts} attempt(s): {value.error}"
            )
        return value


class ExecutionEngine:
    """Runs specs serially or across a persistent worker-process pool.

    Args:
        workers: process count; ``1`` (the default) executes in-process
            with no multiprocessing dependency, which is also the
            deterministic fallback on single-core machines.
        cache: optional :class:`RunCache`; hits skip execution
            entirely and misses are stored after execution.
        retries: extra execution rounds for specs that failed — a
            worker crash or transient exception is re-attempted up to
            this many times before the spec counts as failed.
        timeout_s: batch deadline in seconds for the worker-pool path
            of :meth:`run`, applied per retry round; specs still
            running when it expires are recorded as straggler failures
            (and retried if ``retries`` allows). ``None`` waits
            indefinitely; the serial path and the non-blocking futures
            surface ignore it.
        spec_timeout_s: per-spec deadline in seconds for the
            worker-pool path of :meth:`run`, measured from when the
            spec is first observed *running* (queue time doesn't
            count). A spec past its deadline is abandoned as a
            straggler without waiting for the rest of the batch.
            ``None`` disables it; the serial path ignores it (a serial
            run can't be abandoned).
        backoff_base_s: base delay for exponential backoff between
            retry rounds; round *r* waits ``backoff_base_s * 2**(r-1)``
            seconds. ``0`` (the default) retries immediately.
        backoff_jitter: fractional jitter added to each backoff delay,
            drawn deterministically from the retried spec's digest so
            reruns sleep identically (``0.25`` stretches delays by up
            to 25%).
        spec_transport: how specs cross the pool boundary. ``"blob"``
            (the default) ships a light :class:`~repro.engine.blobs.SpecRef`
            and spools each distinct mix once into a content-addressed
            :class:`~repro.engine.blobs.BlobStore`, so workers stop
            unpickling identical workload models per submission;
            ``"pickle"`` is the historical whole-spec pickle. Results
            are bit-identical either way — only transport cost changes.
        trace_workers: when the active collector is enabled, workers
            normally record their spans locally and ship them back for
            replay into the parent's collector. Set ``False`` to skip
            that — parent-side spans (engine rounds, broker decides)
            are still recorded, but worker-interior traces are
            dropped at the source. Long runs emit thousands of events
            per spec, and pickling them across the pool boundary can
            dominate a benchmark that only reads parent-side spans.

    The worker pool is created lazily on first parallel work and then
    reused for the engine's lifetime (no per-batch spin-up); call
    :meth:`close` — or use the engine as a context manager — to
    release it. Abandoning a straggler retires the pool (its stuck
    process must not serve later work); a fresh pool replaces it on
    the next parallel round.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[RunCache] = None,
        retries: int = 0,
        timeout_s: Optional[float] = None,
        spec_timeout_s: Optional[float] = None,
        backoff_base_s: float = 0.0,
        backoff_jitter: float = 0.0,
        spec_transport: str = "blob",
        trace_workers: bool = True,
    ):
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise EngineError(f"retries must be >= 0, got {retries}")
        if timeout_s is not None and timeout_s <= 0:
            raise EngineError(f"timeout_s must be positive, got {timeout_s}")
        if spec_timeout_s is not None and spec_timeout_s <= 0:
            raise EngineError(
                f"spec_timeout_s must be positive, got {spec_timeout_s}"
            )
        if backoff_base_s < 0:
            raise EngineError(f"backoff_base_s must be >= 0, got {backoff_base_s}")
        if backoff_jitter < 0:
            raise EngineError(f"backoff_jitter must be >= 0, got {backoff_jitter}")
        if spec_transport not in ("blob", "pickle"):
            raise EngineError(
                f"spec_transport must be 'blob' or 'pickle', got {spec_transport!r}"
            )
        self._workers = int(workers)
        self._cache = cache
        self._retries = int(retries)
        self._timeout_s = timeout_s
        self._spec_timeout_s = spec_timeout_s
        self._backoff_base_s = float(backoff_base_s)
        self._backoff_jitter = float(backoff_jitter)
        self._stats = EngineStats()
        self._spec_transport = spec_transport
        self._trace_workers = bool(trace_workers)
        self._slots: Dict[RunSpec, _Slot] = {}
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._blobs: Optional[BlobStore] = None
        self._inflight: Dict[concurrent.futures.Future, _Slot] = {}
        self._lane_counter = 0

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def cache(self) -> Optional[RunCache]:
        return self._cache

    @property
    def retries(self) -> int:
        return self._retries

    @property
    def timeout_s(self) -> Optional[float]:
        return self._timeout_s

    @property
    def spec_timeout_s(self) -> Optional[float]:
        return self._spec_timeout_s

    @property
    def stats(self) -> EngineStats:
        return self._stats

    @property
    def pending(self) -> int:
        """Number of submitted specs not yet resolved."""
        return sum(1 for slot in self._slots.values() if not slot.done)

    # -- lifecycle --------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Release the persistent worker pool (idempotent).

        The engine stays usable afterwards — the next parallel round
        simply creates a fresh pool.
        """
        pool, self._pool = self._pool, None
        self._inflight.clear()
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)
        blobs, self._blobs = self._blobs, None
        if blobs is not None:
            blobs.close()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close(wait=False)
        except Exception:
            pass

    # -- blocking batch surface -------------------------------------------

    def run_one(self, spec: RunSpec) -> RunResult:
        """Convenience wrapper: run a single spec."""
        return self.run([spec])[0]

    def run(
        self, specs: Sequence[RunSpec], on_error: str = "raise"
    ) -> List[Union[RunResult, RunError]]:
        """Execute a batch; results align with ``specs`` by position.

        Identical specs (equal content, hence equal digest) execute at
        most once per batch; with a cache attached, at most once ever
        per code version.

        This is a thin wrapper over the futures surface: every spec is
        :meth:`submit`-ted, then the engine is driven to completion
        with the historical round-synchronized retry/backoff and
        straggler-deadline semantics.

        Args:
            specs: the batch.
            on_error: ``"raise"`` (default) raises
                :class:`~repro.errors.EngineError` on the first spec
                that still fails after all retries; ``"record"``
                returns a :class:`RunError` in that spec's position and
                keeps the rest of the batch (partial results).
        """
        if on_error not in ("raise", "record"):
            raise EngineError(f"on_error must be 'raise' or 'record', got {on_error!r}")
        specs = list(specs)
        self._stats.batches += 1
        obs = active_collector()

        with obs.span("engine_batch", "engine"):
            slots = [self._submit_slot(spec, obs) for spec in specs]
            # First-seen order of unique slots keeps scheduling
            # deterministic (dict preserves insertion order).
            batch: Dict[RunSpec, _Slot] = {}
            for slot in slots:
                batch.setdefault(slot.spec, slot)
            try:
                self._drive(list(batch.values()), obs)
                results: List[Union[RunResult, RunError]] = []
                for slot in slots:
                    value = slot.outcome
                    if isinstance(value, RunError) and on_error == "raise":
                        raise EngineError(
                            f"{value.spec!r} failed after {value.attempts} "
                            f"attempt(s): {value.error}"
                        )
                    results.append(value)
            finally:
                self._purge_resolved()
        return results

    # -- futures surface ---------------------------------------------------

    def submit(self, spec: RunSpec) -> EngineFuture:
        """Register one spec for execution and return its future.

        Never blocks: a cache hit resolves the future immediately, a
        spec equal to one already in flight coalesces onto it, and
        anything else is queued. Queued work proceeds during
        :meth:`poll`, :meth:`as_completed`, :meth:`EngineFuture.result`,
        or a later :meth:`run` that includes the same spec.
        """
        return EngineFuture(self, self._submit_slot(spec, active_collector()))

    def cancel(self, future: EngineFuture) -> bool:
        """Withdraw a submitted spec that has not started executing.

        Returns ``True`` if the spec was still queued: its slot is
        removed from the dedup map (a later equal submit starts fresh)
        and the future resolves to a :class:`RunError` — ``result()``
        raises, ``outcome()`` returns the error. Returns ``False`` for
        specs already running, resolved, or in retry backoff: started
        work is never abandoned mid-flight, so a failed cancel simply
        means the result will arrive.

        Futures for equal specs share one execution, so cancelling one
        cancels them all — callers juggling speculative work (the
        cluster's cross-epoch batching) should track one future per
        spec and cancel only futures they own.
        """
        slot = future._slot
        if slot.state != _QUEUED:
            return False
        existing = self._slots.get(slot.spec)
        if existing is slot:
            del self._slots[slot.spec]
        slot.resolve(
            RunError(spec=slot.spec, error="cancelled before execution", attempts=0)
        )
        active_collector().metrics.counter("engine.cancelled").inc()
        return True

    def poll(self, timeout_s: float = 0.0) -> int:
        """Make bounded progress and return the number of unresolved specs.

        Harvests finished worker results, launches queued specs
        (serial engines execute at most one spec per call, so callers
        can interleave), and re-queues retries whose backoff has
        elapsed. ``timeout_s`` bounds how long the call may block
        waiting on worker results (0 = never block).

        The futures surface applies retry backoff as a deadline rather
        than a sleep and does not enforce ``timeout_s``/
        ``spec_timeout_s`` deadlines — long-lived callers own their
        own pacing; the blocking :meth:`run` keeps the historical
        deadline semantics.
        """
        self._pump(active_collector(), timeout_s)
        self._purge_resolved()
        return self.pending

    def as_completed(
        self, futures: Iterable[EngineFuture], timeout_s: Optional[float] = None
    ) -> Iterator[EngineFuture]:
        """Yield ``futures`` as their specs resolve (completion order).

        Raises :class:`~repro.errors.EngineError` if ``timeout_s``
        elapses with futures still unresolved.
        """
        remaining = list(futures)
        deadline = None if timeout_s is None else time.perf_counter() + timeout_s
        obs = active_collector()
        while remaining:
            ready = [future for future in remaining if future.done]
            if ready:
                for future in ready:
                    remaining.remove(future)
                    yield future
                continue
            if deadline is not None and time.perf_counter() >= deadline:
                raise EngineError(
                    f"as_completed timed out with {len(remaining)} future(s) unresolved"
                )
            self._pump(obs, 0.05)
        self._purge_resolved()

    # -- internals -------------------------------------------------------

    def _submit_slot(self, spec: RunSpec, obs) -> _Slot:
        self._stats.submitted += 1
        slot = self._slots.get(spec)
        if slot is not None:
            self._stats.deduplicated += 1
            obs.metrics.counter("engine.deduplicated").inc()
            return slot
        slot = _Slot(spec)
        self._slots[spec] = slot
        cached = self._cache.get(spec) if self._cache is not None else None
        if cached is not None:
            self._stats.cache_hits += 1
            obs.metrics.counter("engine.cache_hits").inc()
            obs.event("cache_hit", "engine")
            slot.resolve(cached)
        elif self._cache is not None:
            self._stats.cache_misses += 1
            obs.metrics.counter("engine.cache_misses").inc()
        return slot

    def _purge_resolved(self) -> None:
        """Drop resolved slots so the dedup window matches one batch.

        Futures keep their slot references, so purging never
        invalidates a handle; it only means a *later* equal submit
        re-consults the cache instead of aliasing a finished run.
        """
        for spec in [spec for spec, slot in self._slots.items() if slot.done]:
            del self._slots[spec]
        if not self._slots and not self._inflight:
            self._lane_counter = 0

    def _store(self, spec: RunSpec, result: RunResult) -> None:
        """Cache a fresh result; count the write that disables the cache."""
        if self._cache is None:
            return
        was_disabled = self._cache.disabled
        self._cache.put(spec, result)
        if self._cache.disabled and not was_disabled:
            self._stats.cache_errors += 1

    def _note_success(self, slot: _Slot, payload: dict, obs) -> None:
        slot.attempts += 1
        result = RunResult.from_dict(payload)
        self._stats.executed += 1
        obs.metrics.counter("engine.executed").inc()
        self._store(slot.spec, result)
        slot.resolve(result)

    def _note_failure(self, slot: _Slot, error: str, obs) -> None:
        slot.attempts += 1
        slot.error = error
        slot.pool_future = None
        if slot.attempts <= self._retries:
            slot.state = _RETRY_WAIT
            slot.retry_at = None
            return
        self._stats.failed += 1
        obs.metrics.counter("engine.failed").inc()
        slot.resolve(RunError(spec=slot.spec, error=str(error), attempts=slot.attempts))

    def _retry_delay(self, spec: RunSpec, round_number: int) -> float:
        """Backoff before retry round ``round_number`` (exponential + jitter).

        The jitter fraction derives from the spec's digest and the
        round number, so identical reruns back off identically —
        determinism extends to the retry schedule.
        """
        if self._backoff_base_s <= 0:
            return 0.0
        delay = self._backoff_base_s * 2 ** (round_number - 1)
        if self._backoff_jitter > 0:
            unit = derive_seed(spec.digest, "backoff", round_number) % 10**6 / 10**6
            delay *= 1.0 + self._backoff_jitter * unit
        return delay

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self._workers
            )
        return self._pool

    def _pool_submit(
        self, pool: concurrent.futures.ProcessPoolExecutor, slot: _Slot, obs
    ) -> concurrent.futures.Future:
        """Submit one slot to the pool via the configured transport."""
        collect = obs.enabled and self._trace_workers
        if self._spec_transport == "blob":
            if self._blobs is None:
                self._blobs = BlobStore()
            blob_path = self._blobs.put_mix(slot.spec)
            ref = SpecRef.from_spec(slot.spec, blob_path)
            return pool.submit(_execute_run_traced_blob, ref, collect)
        return pool.submit(_execute_run_traced, slot.spec, collect)

    def _retire_pool(self) -> None:
        """Abandon the pool without waiting (a straggler may be stuck)."""
        pool, self._pool = self._pool, None
        self._inflight.clear()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _harvest(self, future: concurrent.futures.Future, slot: _Slot,
                 lane: int, obs) -> Optional[float]:
        """Fold one finished worker future back into its slot.

        Returns the worker-measured duration on success (for the
        utilization gauge), ``None`` on failure.
        """
        try:
            outcome = future.result()
        except Exception as error:  # noqa: BLE001 - reported per spec
            self._note_failure(slot, f"{type(error).__name__}: {error}", obs)
            return None
        if len(outcome) == 4:  # blob transport reports its cache fate
            payload, duration_s, events, blob_hit = outcome
            obs.metrics.counter(
                "engine.blob_cache_hits" if blob_hit else "engine.blob_cache_misses"
            ).inc()
        else:
            payload, duration_s, events = outcome
        obs.metrics.histogram("engine.run_seconds").observe(duration_s)
        obs.event("run_spec", "engine", duration_s=duration_s)
        if events:
            # Rebase the worker's spans so they end now (completion
            # instant parent-side) and keep their internal
            # nesting/parenting intact.
            obs.adopt(
                [TraceEvent.from_dict(d) for d in events],
                at_ns=obs.now_ns() - int(duration_s * 1e9),
                lane=f"worker:{lane}",
            )
        self._note_success(slot, payload, obs)
        return duration_s

    def _execute_serial(self, slot: _Slot, obs) -> None:
        """Run one spec in-process (the serial path of both surfaces)."""
        slot.state = _RUNNING
        started = time.perf_counter()
        try:
            with obs.span("run_spec", "engine"):
                payload = _execute_run_payload(slot.spec)
        except Exception as error:  # noqa: BLE001 - reported per spec
            self._note_failure(slot, f"{type(error).__name__}: {error}", obs)
        else:
            self._note_success(slot, payload, obs)
        obs.metrics.histogram("engine.run_seconds").observe(
            time.perf_counter() - started
        )

    # -- blocking drive (run()) -------------------------------------------

    def _drive(self, slots: List[_Slot], obs) -> None:
        """Drive ``slots`` to resolution with round-synchronized retries.

        Each round executes every queued slot (serially or on the
        pool); failures eligible for retry wait for the *whole* round,
        then back off once — via ``time.sleep``, announced as a
        ``retry_backoff`` event — and re-queue together. This
        reproduces the historical retry schedule exactly.
        """
        while True:
            round_slots = [slot for slot in slots if slot.state == _QUEUED]
            if round_slots:
                if self._workers == 1 or len(round_slots) == 1:
                    for slot in round_slots:
                        self._execute_serial(slot, obs)
                else:
                    self._pool_round(round_slots, obs)
                continue
            retry = [slot for slot in slots if slot.state == _RETRY_WAIT]
            if not retry:
                if any(slot.state == _RUNNING for slot in slots):
                    # In flight via the futures surface (submitted
                    # before this run() call): finish them there.
                    self._pump(obs, 0.05)
                    continue
                return
            self._stats.retried += len(retry)
            round_number = retry[0].attempts
            delay = self._retry_delay(retry[0].spec, round_number)
            if delay > 0:
                obs.event(
                    "retry_backoff", "engine",
                    round=round_number, delay_s=delay, specs=len(retry),
                )
                time.sleep(delay)
            for slot in retry:
                slot.state = _QUEUED
                slot.retry_at = None

    def _pool_round(self, round_slots: List[_Slot], obs) -> None:
        """One parallel round on the persistent pool, with deadlines."""
        max_workers = min(self._workers, len(round_slots))
        round_started = time.perf_counter()
        busy_seconds = 0.0
        pool = self._ensure_pool()
        abandoned = False
        futures: Dict[concurrent.futures.Future, Tuple[int, _Slot]] = {}
        for index, slot in enumerate(round_slots):
            slot.state = _RUNNING
            futures[self._pool_submit(pool, slot, obs)] = (index, slot)
        remaining = set(futures)
        batch_deadline = (
            None if self._timeout_s is None else round_started + self._timeout_s
        )
        # When any spec was first seen *running* (queue time does not
        # count against its deadline).
        first_running: Dict[concurrent.futures.Future, float] = {}
        try:
            while remaining:
                if self._spec_timeout_s is not None:
                    # Poll often enough that an overdue spec is caught
                    # within a quarter of its deadline.
                    poll: Optional[float] = min(0.05, self._spec_timeout_s / 4)
                elif batch_deadline is not None:
                    poll = max(0.0, batch_deadline - time.perf_counter())
                else:
                    poll = None
                done, _ = concurrent.futures.wait(remaining, timeout=poll)
                now = time.perf_counter()
                for future in done:
                    remaining.discard(future)
                    index, slot = futures[future]
                    duration_s = self._harvest(future, slot, index, obs)
                    if duration_s is not None:
                        busy_seconds += duration_s
                for future in list(remaining):
                    if future not in first_running and future.running():
                        first_running[future] = now
                if self._spec_timeout_s is not None:
                    for future in list(remaining):
                        started = first_running.get(future)
                        if started is None or now - started < self._spec_timeout_s:
                            continue
                        remaining.discard(future)
                        future.cancel()  # running futures won't cancel; abandon
                        abandoned = True
                        _, slot = futures[future]
                        self._note_failure(
                            slot,
                            f"straggler: no result within the "
                            f"{self._spec_timeout_s}s per-spec deadline",
                            obs,
                        )
                if batch_deadline is not None and time.perf_counter() >= batch_deadline:
                    for future in remaining:
                        future.cancel()
                        _, slot = futures[future]
                        self._note_failure(
                            slot,
                            f"straggler: no result within the "
                            f"{self._timeout_s}s batch deadline",
                            obs,
                        )
                    abandoned = abandoned or bool(remaining)
                    remaining = set()
        except BaseException:
            self._retire_pool()
            raise
        if abandoned:
            # A stuck worker must not serve later rounds: retire the
            # pool; the next parallel round starts a fresh one.
            self._retire_pool()
        wall = time.perf_counter() - round_started
        if wall > 0:
            obs.metrics.gauge("engine.worker_utilization").set(
                busy_seconds / (max_workers * wall)
            )

    # -- non-blocking pump (futures surface) -------------------------------

    def _pump(self, obs, timeout_s: float) -> None:
        """One scheduling pass for the futures surface.

        Launches queued slots, harvests finished workers (waiting up
        to ``timeout_s``), and re-queues elapsed retries. Serial
        engines execute at most one queued spec per pass so callers
        can interleave work between polls.
        """
        now = time.perf_counter()
        for slot in self._slots.values():
            if slot.state != _RETRY_WAIT:
                continue
            if slot.retry_at is None:
                # Freshly failed: schedule its backoff deadline.
                slot.retry_delay = self._retry_delay(slot.spec, slot.attempts)
                slot.retry_at = now + slot.retry_delay
                if slot.retry_delay > 0:
                    obs.event(
                        "retry_backoff", "engine",
                        round=slot.attempts, delay_s=slot.retry_delay, specs=1,
                    )
            if now >= slot.retry_at:
                self._stats.retried += 1
                slot.state = _QUEUED
                slot.retry_at = None

        queued = [slot for slot in self._slots.values() if slot.state == _QUEUED]
        if self._workers == 1:
            if queued:
                self._execute_serial(queued[0], obs)
            return

        pool = self._ensure_pool() if (queued or self._inflight) else None
        for slot in queued:
            slot.state = _RUNNING
            slot.lane = self._lane_counter
            self._lane_counter += 1
            self._inflight[self._pool_submit(pool, slot, obs)] = slot
        if not self._inflight:
            return
        done, _ = concurrent.futures.wait(
            set(self._inflight), timeout=max(0.0, timeout_s)
        )
        for future in done:
            slot = self._inflight.pop(future)
            self._harvest(future, slot, slot.lane, obs)

    def _wait_for(self, slot: _Slot, timeout_s: Optional[float]) -> None:
        """Block until ``slot`` resolves, driving the futures pump."""
        deadline = None if timeout_s is None else time.perf_counter() + timeout_s
        obs = active_collector()
        while not slot.done:
            if deadline is not None and time.perf_counter() >= deadline:
                raise EngineError(f"timed out waiting for {slot.spec!r}")
            if slot.state == _RETRY_WAIT and slot.retry_at is not None:
                # Sleep out the remaining backoff (bounded by deadline).
                pause = max(0.0, slot.retry_at - time.perf_counter())
                if deadline is not None:
                    pause = min(pause, max(0.0, deadline - time.perf_counter()))
                if pause > 0:
                    time.sleep(min(pause, 0.25))
            self._pump(obs, 0.05)
        self._purge_resolved()
