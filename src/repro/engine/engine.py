"""The execution engine: batch fan-out with deterministic results.

:class:`ExecutionEngine.run` takes a batch of :class:`RunSpec` jobs
and returns their :class:`RunResult` objects in submission order. The
engine guarantees *bit-identical* results regardless of worker count,
submission order, or completion order, because

* every RNG stream a run consumes is derived from the spec's content
  digest (:meth:`RunSpec.seed_for`), never from shared generators or
  submission sequence;
* every result — computed serially, computed in a worker, or loaded
  from cache — passes through the same lossless JSON representation
  (:meth:`RunResult.to_dict` / ``from_dict``), so all three paths
  yield structurally equal objects.

Duplicate specs inside a batch execute once (the 21-mix PARSEC grid
shares one Balanced Oracle run per mix across all drivers that ask for
it), and an attached :class:`~repro.engine.cache.RunCache` extends the
dedup across engine instances, processes, and sessions.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.cache import RunCache
from repro.engine.spec import RunSpec, derive_seed
from repro.errors import EngineError
from repro.experiments.runner import RunResult, run_policy
from repro.obs import TraceCollector, TraceEvent, active_collector, use_collector
from repro.policies.registry import make_policy


def execute_run(spec: RunSpec) -> RunResult:
    """Execute one spec from scratch (no cache, current process).

    This is the single choke point every run goes through — the
    warm-cache tests monkeypatch :func:`repro.experiments.runner.run_policy`
    via this module to prove cached batches trigger zero executions.
    """
    goals = spec.goal_set()
    policy = make_policy(
        spec.policy,
        spec.mix,
        spec.catalog,
        goals,
        rng=spec.seed_for("policy"),
        initial_state=spec.initial_state,
        **spec.kwargs_dict(),
    )
    # Noise derives from the cold digest — the spec with any warm-start
    # state stripped — so a warm continuation and its cold twin measure
    # the same perturbed hardware (their delta is the carried state),
    # while cold specs keep their historical noise streams.
    return run_policy(
        policy,
        spec.mix,
        spec.catalog,
        spec.run_config,
        goals,
        seed=derive_seed(spec.cold_digest, "noise"),
        faults=spec.fault_plan,
        fault_seed=derive_seed(spec.environment_digest, "faults"),
    )


def _execute_run_payload(spec: RunSpec) -> dict:
    """Worker entry point: run a spec, ship the result as plain data."""
    return execute_run(spec).to_dict()


def _execute_run_traced(
    spec: RunSpec, collect: bool = False
) -> Tuple[dict, float, Optional[List[dict]]]:
    """Worker entry point reporting wall time and (optionally) spans.

    Worker processes have their own memory, so spans recorded inside
    them never reach the parent's collector directly. With ``collect``
    set, the worker records its spans into a local collector and ships
    them back serialized alongside the payload; the parent adopts them
    onto its own timeline (:meth:`TraceCollector.adopt`) under a
    per-worker lane. Without it, only the measured duration crosses
    the pipe — enough for run timing and worker-utilization metrics.
    """
    started = time.perf_counter()
    if not collect:
        return _execute_run_payload(spec), time.perf_counter() - started, None
    local = TraceCollector()
    with use_collector(local):
        with local.span("run_spec", "engine"):
            payload = _execute_run_payload(spec)
    events = [event.to_dict() for event in local.events]
    return payload, time.perf_counter() - started, events


@dataclass(frozen=True)
class RunError:
    """A spec that could not be executed (partial-batch bookkeeping).

    Produced by :meth:`ExecutionEngine.run` with ``on_error="record"``
    in place of the failed spec's :class:`RunResult`, so one crashed or
    hung run does not discard the rest of the batch.

    Attributes:
        spec: the failed spec.
        error: ``"ExceptionType: message"`` of the last failure, or the
            straggler-timeout description.
        attempts: how many times the spec was tried (1 + retries used).
    """

    spec: RunSpec
    error: str
    attempts: int


@dataclass
class EngineStats:
    """Counters for one engine's lifetime (all ``run`` calls summed).

    Attributes:
        submitted: specs passed to ``run`` (including duplicates).
        executed: specs actually run via :func:`execute_run`.
        deduplicated: duplicate specs coalesced within batches.
        cache_hits / cache_misses: disk-cache lookups (zero without a
            cache attached).
        batches: number of ``run`` calls.
        retried: failed executions that were re-attempted.
        failed: specs that still had no result after all retries.
        cache_errors: cache writes that failed (the cache disables
            itself after the first, so this is at most 1 per cache).
    """

    submitted: int = 0
    executed: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0
    retried: int = 0
    failed: int = 0
    cache_errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "deduplicated": self.deduplicated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "batches": self.batches,
            "retried": self.retried,
            "failed": self.failed,
            "cache_errors": self.cache_errors,
        }

    def summary(self) -> str:
        """One-line human-readable form for CLI/report output."""
        text = (
            f"{self.submitted} submitted, {self.executed} executed, "
            f"{self.deduplicated} deduplicated, "
            f"{self.cache_hits} cache hits, {self.cache_misses} cache misses"
        )
        if self.retried or self.failed:
            text += f", {self.retried} retried, {self.failed} failed"
        if self.cache_errors:
            text += f", {self.cache_errors} cache errors"
        return text


#: One spec's execution outcome: (payload, error). Exactly one is set.
_Outcome = Tuple[Optional[dict], Optional[str]]


class ExecutionEngine:
    """Runs batches of specs serially or across worker processes.

    Args:
        workers: process count; ``1`` (the default) executes in-process
            with no multiprocessing dependency, which is also the
            deterministic fallback on single-core machines.
        cache: optional :class:`RunCache`; hits skip execution
            entirely and misses are stored after execution.
        retries: extra execution rounds for specs that failed — a
            worker crash or transient exception is re-attempted up to
            this many times before the spec counts as failed.
        timeout_s: batch deadline in seconds for the worker-pool path;
            specs still running when it expires are recorded as
            straggler failures (and retried if ``retries`` allows).
            ``None`` waits indefinitely; the serial path ignores it.
        spec_timeout_s: per-spec deadline in seconds for the
            worker-pool path, measured from when the spec is first
            observed *running* (queue time doesn't count). A spec past
            its deadline is abandoned as a straggler without waiting
            for the rest of the batch. ``None`` disables it; the
            serial path ignores it (a serial run can't be abandoned).
        backoff_base_s: base delay for exponential backoff between
            retry rounds; round *r* waits ``backoff_base_s * 2**(r-1)``
            seconds. ``0`` (the default) retries immediately.
        backoff_jitter: fractional jitter added to each backoff delay,
            drawn deterministically from the retried spec's digest so
            reruns sleep identically (``0.25`` stretches delays by up
            to 25%).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[RunCache] = None,
        retries: int = 0,
        timeout_s: Optional[float] = None,
        spec_timeout_s: Optional[float] = None,
        backoff_base_s: float = 0.0,
        backoff_jitter: float = 0.0,
    ):
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise EngineError(f"retries must be >= 0, got {retries}")
        if timeout_s is not None and timeout_s <= 0:
            raise EngineError(f"timeout_s must be positive, got {timeout_s}")
        if spec_timeout_s is not None and spec_timeout_s <= 0:
            raise EngineError(
                f"spec_timeout_s must be positive, got {spec_timeout_s}"
            )
        if backoff_base_s < 0:
            raise EngineError(f"backoff_base_s must be >= 0, got {backoff_base_s}")
        if backoff_jitter < 0:
            raise EngineError(f"backoff_jitter must be >= 0, got {backoff_jitter}")
        self._workers = int(workers)
        self._cache = cache
        self._retries = int(retries)
        self._timeout_s = timeout_s
        self._spec_timeout_s = spec_timeout_s
        self._backoff_base_s = float(backoff_base_s)
        self._backoff_jitter = float(backoff_jitter)
        self._stats = EngineStats()

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def cache(self) -> Optional[RunCache]:
        return self._cache

    @property
    def retries(self) -> int:
        return self._retries

    @property
    def timeout_s(self) -> Optional[float]:
        return self._timeout_s

    @property
    def spec_timeout_s(self) -> Optional[float]:
        return self._spec_timeout_s

    @property
    def stats(self) -> EngineStats:
        return self._stats

    def run_one(self, spec: RunSpec) -> RunResult:
        """Convenience wrapper: run a single spec."""
        return self.run([spec])[0]

    def run(
        self, specs: Sequence[RunSpec], on_error: str = "raise"
    ) -> List[Union[RunResult, RunError]]:
        """Execute a batch; results align with ``specs`` by position.

        Identical specs (equal content, hence equal digest) execute at
        most once per batch; with a cache attached, at most once ever
        per code version.

        Args:
            specs: the batch.
            on_error: ``"raise"`` (default) raises
                :class:`~repro.errors.EngineError` on the first spec
                that still fails after all retries; ``"record"``
                returns a :class:`RunError` in that spec's position and
                keeps the rest of the batch (partial results).
        """
        if on_error not in ("raise", "record"):
            raise EngineError(f"on_error must be 'raise' or 'record', got {on_error!r}")
        specs = list(specs)
        self._stats.batches += 1
        self._stats.submitted += len(specs)
        obs = active_collector()

        with obs.span("engine_batch", "engine"):
            # First-seen order of unique specs keeps scheduling deterministic.
            unique: Dict[RunSpec, Optional[Union[RunResult, RunError]]] = {}
            for spec in specs:
                if spec in unique:
                    self._stats.deduplicated += 1
                    obs.metrics.counter("engine.deduplicated").inc()
                else:
                    unique[spec] = None

            pending: List[RunSpec] = []
            for spec in unique:
                cached = self._cache.get(spec) if self._cache is not None else None
                if cached is not None:
                    self._stats.cache_hits += 1
                    obs.metrics.counter("engine.cache_hits").inc()
                    obs.event("cache_hit", "engine")
                    unique[spec] = cached
                else:
                    if self._cache is not None:
                        self._stats.cache_misses += 1
                        obs.metrics.counter("engine.cache_misses").inc()
                    pending.append(spec)

            for spec, (payload, error, attempts) in self._execute_with_retries(pending).items():
                if payload is not None:
                    result = RunResult.from_dict(payload)
                    self._stats.executed += 1
                    obs.metrics.counter("engine.executed").inc()
                    self._store(spec, result)
                    unique[spec] = result
                else:
                    self._stats.failed += 1
                    obs.metrics.counter("engine.failed").inc()
                    if on_error == "raise":
                        raise EngineError(
                            f"{spec!r} failed after {attempts} attempt(s): {error}"
                        )
                    unique[spec] = RunError(spec=spec, error=str(error), attempts=attempts)

        return [unique[spec] for spec in specs]

    # -- internals -------------------------------------------------------

    def _store(self, spec: RunSpec, result: RunResult) -> None:
        """Cache a fresh result; count the write that disables the cache."""
        if self._cache is None:
            return
        was_disabled = self._cache.disabled
        self._cache.put(spec, result)
        if self._cache.disabled and not was_disabled:
            self._stats.cache_errors += 1

    def _execute_with_retries(
        self, pending: Sequence[RunSpec]
    ) -> Dict[RunSpec, Tuple[Optional[dict], Optional[str], int]]:
        """Run ``pending``, re-running failures up to ``retries`` times.

        Returns ``spec -> (payload, error, attempts)`` preserving the
        first-seen order of ``pending``.
        """
        outcomes: Dict[RunSpec, Tuple[Optional[dict], Optional[str], int]] = {
            spec: (None, "not executed", 0) for spec in pending
        }
        todo = list(pending)
        for round_number in range(1 + self._retries):
            if not todo:
                break
            if round_number:
                self._stats.retried += len(todo)
                self._backoff(round_number, todo)
            failed: List[RunSpec] = []
            for spec, (payload, error) in zip(todo, self._execute_batch(todo)):
                outcomes[spec] = (payload, error, round_number + 1)
                if payload is None:
                    failed.append(spec)
            todo = failed
        return outcomes

    def _backoff(self, round_number: int, todo: Sequence[RunSpec]) -> None:
        """Sleep before retry round ``round_number`` (exponential + jitter).

        The jitter fraction derives from the first retried spec's
        digest and the round number, so identical reruns back off
        identically — determinism extends to the retry schedule.
        """
        if self._backoff_base_s <= 0:
            return
        delay = self._backoff_base_s * 2 ** (round_number - 1)
        if self._backoff_jitter > 0:
            unit = derive_seed(todo[0].digest, "backoff", round_number) % 10**6 / 10**6
            delay *= 1.0 + self._backoff_jitter * unit
        obs = active_collector()
        obs.event(
            "retry_backoff", "engine",
            round=round_number, delay_s=delay, specs=len(todo),
        )
        time.sleep(delay)

    def _execute_batch(self, pending: Sequence[RunSpec]) -> List[_Outcome]:
        """Run ``pending`` specs, returning per-spec outcomes in order.

        Results are collected by index, so out-of-order completion in
        the pool cannot reorder or cross-wire them. Failures are
        captured per spec instead of aborting the batch.
        """
        if not pending:
            return []
        obs = active_collector()
        if self._workers == 1 or len(pending) == 1:
            outcomes: List[_Outcome] = []
            for spec in pending:
                started = time.perf_counter()
                try:
                    with obs.span("run_spec", "engine"):
                        payload = _execute_run_payload(spec)
                except Exception as error:  # noqa: BLE001 - reported per spec
                    outcomes.append((None, f"{type(error).__name__}: {error}"))
                else:
                    outcomes.append((payload, None))
                obs.metrics.histogram("engine.run_seconds").observe(
                    time.perf_counter() - started
                )
            return outcomes

        outcomes = [(None, "not executed")] * len(pending)
        max_workers = min(self._workers, len(pending))
        batch_started = time.perf_counter()
        busy_seconds = 0.0
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=max_workers)
        abandoned = False
        try:
            futures = {
                pool.submit(_execute_run_traced, spec, obs.enabled): index
                for index, spec in enumerate(pending)
            }
            remaining = set(futures)
            batch_deadline = (
                None if self._timeout_s is None
                else batch_started + self._timeout_s
            )
            # When any spec was first seen *running* (queue time does
            # not count against its deadline).
            first_running: Dict[concurrent.futures.Future, float] = {}
            while remaining:
                if self._spec_timeout_s is not None:
                    # Poll often enough that an overdue spec is caught
                    # within a quarter of its deadline.
                    poll: Optional[float] = min(0.05, self._spec_timeout_s / 4)
                elif batch_deadline is not None:
                    poll = max(0.0, batch_deadline - time.perf_counter())
                else:
                    poll = None
                done, _ = concurrent.futures.wait(remaining, timeout=poll)
                now = time.perf_counter()
                for future in done:
                    remaining.discard(future)
                    index = futures[future]
                    try:
                        payload, duration_s, events = future.result()
                    except Exception as error:  # noqa: BLE001 - reported per spec
                        outcomes[index] = (None, f"{type(error).__name__}: {error}")
                    else:
                        outcomes[index] = (payload, None)
                        busy_seconds += duration_s
                        obs.metrics.histogram("engine.run_seconds").observe(duration_s)
                        obs.event("run_spec", "engine", duration_s=duration_s)
                        if events:
                            # Rebase the worker's spans so they end now
                            # (completion instant parent-side) and keep
                            # their internal nesting/parenting intact.
                            obs.adopt(
                                [TraceEvent.from_dict(d) for d in events],
                                at_ns=obs.now_ns() - int(duration_s * 1e9),
                                lane=f"worker:{index}",
                            )
                for future in list(remaining):
                    if future not in first_running and future.running():
                        first_running[future] = now
                if self._spec_timeout_s is not None:
                    for future in list(remaining):
                        started = first_running.get(future)
                        if started is None or now - started < self._spec_timeout_s:
                            continue
                        remaining.discard(future)
                        future.cancel()  # running futures won't cancel; abandon
                        abandoned = True
                        outcomes[futures[future]] = (
                            None,
                            f"straggler: no result within the "
                            f"{self._spec_timeout_s}s per-spec deadline",
                        )
                if batch_deadline is not None and time.perf_counter() >= batch_deadline:
                    for future in remaining:
                        future.cancel()
                        outcomes[futures[future]] = (
                            None,
                            f"straggler: no result within the "
                            f"{self._timeout_s}s batch deadline",
                        )
                    abandoned = abandoned or bool(remaining)
                    remaining = set()
        finally:
            # With stragglers outstanding, don't block the whole batch
            # on them: abandon the pool without waiting (its processes
            # exit once their current task finishes or is killed).
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        wall = time.perf_counter() - batch_started
        if wall > 0:
            obs.metrics.gauge("engine.worker_utilization").set(
                busy_seconds / (max_workers * wall)
            )
        return outcomes
