"""Unified parallel execution engine for experiment campaigns.

Every figure and table in the reproduction boils down to the same unit
of work: *run one policy on one mix under one configuration and seed*.
This package turns that unit into a declarative, content-addressed job:

* :class:`~repro.engine.spec.RunSpec` — a frozen, hashable description
  that fully determines a :class:`~repro.experiments.runner.RunResult`;
* :class:`~repro.engine.engine.ExecutionEngine` — fans batches of
  specs out over worker processes (or runs them serially) with results
  guaranteed bit-identical regardless of worker count, submission
  order, or completion order;
* :class:`~repro.engine.cache.RunCache` — an on-disk JSON artifact
  store keyed by spec digest + code-version salt, so shared reference
  runs (the Balanced Oracle behind Figs. 7-15) are computed once.

See DESIGN.md ("Execution engine") for the determinism and cache
layout contracts.
"""

from repro.engine.blobs import BlobStore, SpecRef
from repro.engine.cache import CACHE_SCHEMA_VERSION, RunCache, default_cache_salt
from repro.engine.engine import (
    EngineFuture,
    EngineStats,
    ExecutionEngine,
    RunError,
    execute_run,
)
from repro.engine.spec import RunSpec, derive_seed

__all__ = [
    "BlobStore",
    "CACHE_SCHEMA_VERSION",
    "EngineFuture",
    "EngineStats",
    "ExecutionEngine",
    "RunCache",
    "RunError",
    "RunSpec",
    "SpecRef",
    "default_cache_salt",
    "derive_seed",
    "execute_run",
]
