"""Content-addressed on-disk cache of completed runs.

Artifacts are JSON files addressed by ``sha256(spec digest | salt)``:
the spec digest covers everything that determines the result (workload
models, policy id + kwargs, catalog, run config, goal metrics, seed),
and the *salt* folds in a code-version tag so results computed by an
older engine/runner are never served after the code changes — bumping
:data:`CACHE_SCHEMA_VERSION` (or the package version) invalidates the
whole store without deleting anything.

Layout::

    <root>/<salt>/<key[:2]>/<key>.json

Each artifact stores the full spec dict alongside the result, so a
cache directory is self-describing and greppable. Reads and writes are
crash-safe: artifacts are written to a temp file and atomically
renamed, and unreadable/mismatched artifacts count as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import warnings
from pathlib import Path
from typing import Optional, Union

from repro.engine.spec import RunSpec
from repro.experiments.runner import RunResult

#: Bump to invalidate every cached artifact after a semantic change to
#: the runner, the workload models, or the serialization format.
#: v2: RunSpec digests cover the fault plan ("faults" key).
#: v3: BO proxy-model update changed (length-scale refits gated by
#: sample count instead of every call, default every 10 samples, with
#: incremental Cholesky extension in between), so SATORI/Oracle-
#: adjacent run results differ from v2 at the trajectory level; v2
#: artifacts must not be served.
#: v4: policy-state protocol. RunResult carries the policy's final
#: snapshot (``final_state``), RunSpec digests cover the optional
#: ``initial_state`` (warm-start specs can never collide with cold
#: ones), and measurement-noise seeds derive from the cold digest —
#: the spec with warm-start state stripped — so a warm run and its
#: cold twin face paired noise while cold runs keep their historical
#: streams. v3 artifacts lack the final state; they must not be
#: served.
#: v5: elastic node budgets. A node-epoch's spec catalog is now the
#: node's *effective* (budget-scaled) catalog, so shrunken-budget
#: epochs digest differently from full-budget ones. Full-budget specs
#: are constructed from the identical catalog object and keep their
#: v4 digests, but the schema bump retires v4 artifacts anyway as
#: cheap insurance against serving a pre-budget result.
#: v6: batched evaluation core. ``smoothmin`` now keeps its outer
#: power on the array-ufunc path (numpy's scalar-math ``**`` rounds
#: 1 ulp differently), so every modeled IPS value can shift by 1 ulp
#: relative to v5 artifacts; digests are unchanged but v5 results
#: must not be served next to freshly computed ones.
CACHE_SCHEMA_VERSION = 6


def default_cache_salt() -> str:
    """The code-version salt: package version + cache schema."""
    try:
        from repro import __version__ as version
    except ImportError:  # pragma: no cover - repro always has a version
        version = "unknown"
    return f"repro-{version}-schema{CACHE_SCHEMA_VERSION}"


class RunCache:
    """Content-addressed JSON store of :class:`RunResult` artifacts.

    An unwritable cache root (read-only volume, bad path, quota) does
    not fail the run: the first failed write emits one warning, flips
    :attr:`disabled`, and every subsequent operation becomes a no-op —
    the batch computes everything it needs, just without persistence.

    Args:
        root: cache directory (created lazily on first write).
        salt: code-version tag mixed into every key; defaults to
            :func:`default_cache_salt`.
    """

    def __init__(self, root: Union[str, Path], salt: Optional[str] = None):
        self._root = Path(root)
        self._salt = salt or default_cache_salt()
        self._hits = 0
        self._misses = 0
        self._disabled = False

    @property
    def root(self) -> Path:
        return self._root

    @property
    def salt(self) -> str:
        return self._salt

    @property
    def hits(self) -> int:
        """Number of ``get`` calls served from disk."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of ``get`` calls that found no usable artifact."""
        return self._misses

    @property
    def disabled(self) -> bool:
        """Whether caching shut itself off after a failed write."""
        return self._disabled

    def path_for(self, spec: RunSpec) -> Path:
        """The artifact path a spec's result lives at (existing or not)."""
        key = hashlib.sha256(f"{spec.digest}|{self._salt}".encode()).hexdigest()
        return self._root / self._salt / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None`` (counted as a miss)."""
        if self._disabled:
            self._misses += 1
            return None
        path = self.path_for(spec)
        try:
            with open(path) as handle:
                artifact = json.load(handle)
            if artifact.get("digest") != spec.digest:
                raise ValueError("artifact digest mismatch")
            result = RunResult.from_dict(artifact["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self._misses += 1
            return None
        self._hits += 1
        return result

    def put(self, spec: RunSpec, result: RunResult) -> Optional[Path]:
        """Store ``result`` under ``spec``'s key (atomic replace).

        Returns the artifact path, or ``None`` if the cache root is
        unwritable — in which case caching is disabled for the rest of
        this cache's lifetime and a single warning is emitted.
        """
        if self._disabled:
            return None
        path = self.path_for(spec)
        artifact = {
            "digest": spec.digest,
            "salt": self._salt,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as handle:
                json.dump(artifact, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError as error:
            self._disabled = True
            try:
                tmp.unlink()
            except OSError:
                pass
            warnings.warn(
                f"run cache at {self._root} is unwritable ({error}); "
                f"caching disabled, results will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return path

    def invalidate(self, spec: RunSpec) -> bool:
        """Delete one spec's artifact; returns whether one existed."""
        path = self.path_for(spec)
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Delete every artifact under this cache's salt; returns the count."""
        salt_dir = self._root / self._salt
        count = sum(1 for _ in salt_dir.rglob("*.json")) if salt_dir.exists() else 0
        shutil.rmtree(salt_dir, ignore_errors=True)
        return count

    def stats(self) -> dict:
        """Hit/miss counters as a JSON-compatible dict."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "salt": self._salt,
            "disabled": self._disabled,
        }
