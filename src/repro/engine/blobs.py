"""Digest-addressed workload-model transport for pool workers.

Pickling a :class:`~repro.engine.spec.RunSpec` ships the full analytic
workload models — phase schedules, roofline parameters, arrival
metadata — across the process boundary on *every* submission. A
cluster epoch submits one spec per node, and every one of them carries
the same handful of mixes; the persistent pool workers then unpickle
identical models thousands of times per sweep.

This module splits the spec at its heavy seam:

* the parent :class:`BlobStore` spools each mix once, content-addressed
  by :attr:`RunSpec.mix_digest` (write-once, atomic rename);
* submissions carry a :class:`SpecRef` — every spec field *except* the
  mix, plus the mix digest, the blob path, and the spec's precomputed
  content digests;
* workers hydrate the mix through a per-process LRU keyed by digest
  (:func:`hydrate_mix`), so each worker reads and unpickles a given
  mix at most once per cache generation, no matter how many specs
  reference it.

Because the worker rebuilds the spec from the identical mix object and
the content digests ride along precomputed, every derived RNG stream —
policy, noise, faults — is bit-identical to the pickle-the-whole-spec
transport; ``tests/test_batched_eval.py`` pins the pairing.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from repro.engine.spec import RunSpec
from repro.experiments.runner import RunConfig
from repro.faults.plan import FaultPlan
from repro.obs import active_collector
from repro.resources.types import ResourceCatalog
from repro.state import PolicyState
from repro.workloads.mixes import JobMix

#: Hydrated mixes kept alive per worker process. Sweeps cycle through
#: the 21 PARSEC mixes plus synthetic variants; 64 holds any realistic
#: working set while bounding worker memory.
_MIX_CACHE_SIZE = 64

#: Per-process hydration cache: mix digest -> JobMix (insertion = LRU).
_MIX_CACHE: "OrderedDict[str, JobMix]" = OrderedDict()


class BlobStore:
    """Parent-side content-addressed spool of pickled job mixes.

    Each mix is written at most once per store, keyed by its content
    digest; concurrent engines sharing a root are safe because writes
    go to a temp file and ``os.replace`` into place (equal digests mean
    equal bytes, so a lost race is harmless).

    Args:
        root: spool directory. ``None`` (the default) creates a private
            temp directory owned — and deleted on :meth:`close` — by
            this store.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self._owned = root is None
        if root is None:
            self._root = Path(tempfile.mkdtemp(prefix="repro-blobs-"))
        else:
            self._root = Path(root)
            self._root.mkdir(parents=True, exist_ok=True)
        self._known: set = set()

    @property
    def root(self) -> Path:
        return self._root

    def put_mix(self, spec: RunSpec) -> str:
        """Spool ``spec``'s mix (write-once) and return the blob path."""
        digest = spec.mix_digest
        path = self._root / f"{digest}.pkl"
        obs = active_collector()
        if digest in self._known or path.exists():
            self._known.add(digest)
            obs.metrics.counter("engine.blob_store_reuses").inc()
            return str(path)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "wb") as handle:
            pickle.dump(spec.mix, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self._known.add(digest)
        obs.metrics.counter("engine.blob_store_writes").inc()
        return str(path)

    def close(self) -> None:
        """Delete an owned spool directory (idempotent)."""
        self._known.clear()
        if self._owned:
            shutil.rmtree(self._root, ignore_errors=True)


def hydrate_mix(blob_path: str, mix_digest: str) -> Tuple[JobMix, bool]:
    """The mix for ``mix_digest``, from this process's cache or disk.

    Returns ``(mix, cache_hit)``. Mixes are immutable (frozen workload
    dataclasses), so sharing one object across every spec that
    references it is safe.
    """
    mix = _MIX_CACHE.get(mix_digest)
    if mix is not None:
        _MIX_CACHE.move_to_end(mix_digest)
        return mix, True
    with open(blob_path, "rb") as handle:
        mix = pickle.load(handle)
    _MIX_CACHE[mix_digest] = mix
    while len(_MIX_CACHE) > _MIX_CACHE_SIZE:
        _MIX_CACHE.popitem(last=False)
    return mix, False


@dataclass(frozen=True)
class SpecRef:
    """A :class:`RunSpec` with the workload models replaced by an address.

    Everything the worker needs rides along: the light spec fields, the
    blob coordinates, and the three precomputed content digests — so
    the worker neither unpickles the mix per submission nor re-hashes
    the full mix payload to derive its RNG streams.
    """

    blob_path: str
    mix_digest: str
    policy: str
    catalog: ResourceCatalog
    policy_kwargs: Tuple[Tuple[str, Any], ...]
    run_config: RunConfig
    goals: Tuple[str, str]
    seed: int
    fault_plan: Optional[FaultPlan]
    initial_state: Optional[PolicyState]
    digest: str
    cold_digest: str
    environment_digest: str

    @classmethod
    def from_spec(cls, spec: RunSpec, blob_path: str) -> "SpecRef":
        return cls(
            blob_path=blob_path,
            mix_digest=spec.mix_digest,
            policy=spec.policy,
            catalog=spec.catalog,
            policy_kwargs=spec.policy_kwargs,
            run_config=spec.run_config,
            goals=spec.goals,
            seed=spec.seed,
            fault_plan=spec.fault_plan,
            initial_state=spec.initial_state,
            digest=spec.digest,
            cold_digest=spec.cold_digest,
            environment_digest=spec.environment_digest,
        )

    def hydrate(self) -> Tuple[RunSpec, bool]:
        """Rebuild the full spec in this process.

        Returns ``(spec, mix_cache_hit)``. The precomputed digests are
        seeded into the rebuilt spec's ``cached_property`` storage, so
        no worker ever re-renders the mix payload just to derive seeds.
        """
        mix, hit = hydrate_mix(self.blob_path, self.mix_digest)
        spec = RunSpec(
            mix=mix,
            policy=self.policy,
            catalog=self.catalog,
            policy_kwargs=self.policy_kwargs,
            run_config=self.run_config,
            goals=self.goals,
            seed=self.seed,
            fault_plan=self.fault_plan,
            initial_state=self.initial_state,
        )
        spec.__dict__["digest"] = self.digest
        spec.__dict__["cold_digest"] = self.cold_digest
        spec.__dict__["environment_digest"] = self.environment_digest
        spec.__dict__["mix_digest"] = self.mix_digest
        return spec, hit
