"""Gaussian-process regression for the BO proxy model.

A deliberately small, dependency-free GP: Cholesky-factored exact
inference with a Matérn 5/2 kernel, internal standardization of the
targets, and an optional grid-search marginal-likelihood update of the
length scale. The paper's point (Sec. I, III-A) is that the proxy
model only needs to be "just accurate enough" to steer sampling — so
the implementation favours robustness and speed (it runs every 100 ms
interval) over hyperparameter sophistication.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.core.kernels import RBF, Kernel, Matern52
from repro.core.stacked import stacked_cholesky
from repro.obs import active_collector
from repro.state import GPState

#: Kernel classes by snapshot name (lowercase class name).
_KERNELS = {"matern52": Matern52, "rbf": RBF}

#: Jitter added to the kernel diagonal for numerical stability.
_JITTER = 1e-8

#: Length-scale grid used by the marginal-likelihood update. The
#: encoded configuration space has 10-35 dimensions, where typical
#: inter-point distances are well above 1, so useful length scales are
#: larger than the rule-of-thumb for low-dimensional BO.
_LENGTHSCALE_GRID = (0.3, 0.5, 0.8, 1.2, 2.0)


class GaussianProcess:
    """Exact GP regression with standardized targets.

    Args:
        kernel: covariance function; defaults to Matérn 5/2 with the
            length scale suited to [0, 1]-normalized configuration
            encodings.
        noise: observation-noise variance in *standardized* target
            units. SATORI's measurements carry a few percent of pqos
            sampling noise, which is a large fraction of the
            objective's dynamic range, so the default is substantial —
            an interpolating GP would chase measurement noise.
        lengthscale_refit_every: when ``fit(optimize_lengthscale=True)``
            is called repeatedly, actually re-run the length-scale grid
            search only every this-many optimize calls (in the
            controller's steady state, one call per new sample); in
            between the incumbent length scale is reused. The grid
            search costs
            ``len(_LENGTHSCALE_GRID)`` Cholesky factorizations, which
            dominates the 100 ms control interval's budget, while the
            marginal-likelihood winner almost never changes from one
            sample to the next. The default of 1 preserves
            search-every-call semantics; the BO engine passes 10.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 5e-2,
        lengthscale_refit_every: int = 1,
    ):
        if noise < 0:
            raise ModelError(f"noise must be >= 0, got {noise}")
        if lengthscale_refit_every < 1:
            raise ModelError(
                f"lengthscale_refit_every must be >= 1, got {lengthscale_refit_every}"
            )
        self.kernel = kernel or Matern52()
        self.noise = float(noise)
        self._refit_every = int(lengthscale_refit_every)
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._fits_since_search: Optional[int] = None
        self._fit_key: Optional[tuple] = None

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    @property
    def n_samples(self) -> int:
        return 0 if self._x is None else self._x.shape[0]

    def fit(
        self,
        x: np.ndarray,
        y: Sequence[float],
        optimize_lengthscale: bool = False,
    ) -> "GaussianProcess":
        """Condition the GP on observations.

        Args:
            x: ``(n, d)`` input matrix (normalized encodings).
            y: ``n`` target values (objective scores).
            optimize_lengthscale: if True, pick the length scale from a
                small grid by marginal likelihood before factorizing.

        Returns:
            self, for chaining.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        if x.shape[0] != y.shape[0]:
            raise ModelError(f"{x.shape[0]} inputs but {y.shape[0]} targets")
        if x.shape[0] == 0:
            raise ModelError("cannot fit a GP on zero samples")
        n = x.shape[0]

        self._y_mean = float(np.mean(y))
        self._y_std = float(np.std(y))
        if self._y_std < 1e-12:
            self._y_std = 1.0
        z = (y - self._y_mean) / self._y_std

        chol = None
        if optimize_lengthscale and n >= 4:
            # Gate by optimize-requested fit calls, not by n: the
            # controller appends one sample per call, but GoalRecords'
            # sliding window pins n at max_samples once full — a
            # growth-based gate would then never refit again.
            if self._fits_since_search is None:
                due = True  # the first optimize call always searches
            else:
                self._fits_since_search += 1
                due = self._fits_since_search >= self._refit_every
            if due:
                self.kernel, chol = self._best_kernel(x, z)
                self._fits_since_search = 0
                active_collector().metrics.counter("gp.lengthscale_searches").inc()
            else:
                active_collector().metrics.counter("gp.lengthscale_reuses").inc()

        if chol is None:
            chol = self._factorize(x)

        self._x = x
        self._chol = chol
        self._alpha = _cho_solve(chol, z)
        self._fit_key = self._kernel_key()
        return self

    # -- snapshot / restore ----------------------------------------------

    def snapshot(self) -> GPState:
        """The full posterior as a versioned, JSON-codable value.

        The Cholesky factor is captured verbatim rather than recomputed
        on restore: a from-scratch factorization matches an
        incrementally extended one only to floating-point error, and
        the snapshot protocol promises bit-identical resume.
        """
        kernel_name = type(self.kernel).__name__.lower()
        if kernel_name not in _KERNELS:
            raise ModelError(f"kernel {type(self.kernel).__name__} has no snapshot name")
        return GPState(
            kernel=kernel_name,
            lengthscale=self.kernel.lengthscale,
            variance=self.kernel.variance,
            noise=self.noise,
            y_mean=self._y_mean,
            y_std=self._y_std,
            fits_since_search=self._fits_since_search,
            x=None if self._x is None else tuple(map(tuple, self._x.tolist())),
            chol=None if self._chol is None else tuple(map(tuple, self._chol.tolist())),
            alpha=None if self._alpha is None else tuple(self._alpha.tolist()),
        )

    def restore(self, state: GPState) -> "GaussianProcess":
        """Resume from a :meth:`snapshot`; returns self for chaining.

        ``_fit_key`` is recomputed from the restored kernel (it holds a
        type object and cannot ride through JSON); the next ``fit``
        call therefore extends the restored factor incrementally,
        exactly as an uninterrupted run would.
        """
        try:
            kernel_cls = _KERNELS[state.kernel]
        except KeyError:
            raise ModelError(f"unknown kernel name {state.kernel!r} in GP state") from None
        self.kernel = kernel_cls(lengthscale=state.lengthscale, variance=state.variance)
        self.noise = float(state.noise)
        self._y_mean = float(state.y_mean)
        self._y_std = float(state.y_std)
        self._fits_since_search = (
            None if state.fits_since_search is None else int(state.fits_since_search)
        )
        if state.x is None:
            self._x = self._chol = self._alpha = None
            self._fit_key = None
        else:
            if state.chol is None or state.alpha is None:
                raise ModelError("GP state has inputs but no factorization")
            self._x = np.asarray(state.x, dtype=float)
            self._chol = np.asarray(state.chol, dtype=float)
            self._alpha = np.asarray(state.alpha, dtype=float)
            self._fit_key = self._kernel_key()
        return self

    def _kernel_key(self) -> tuple:
        """Hashable hyperparameter state, for factorization reuse."""
        return (type(self.kernel), self.kernel.lengthscale, self.kernel.variance, self.noise)

    def _factorize(self, x: np.ndarray) -> np.ndarray:
        """Cholesky factor of the (noise-augmented) kernel matrix.

        When ``x`` extends the previously fitted inputs as a prefix and
        the hyperparameters are unchanged — the steady state of the
        controller, which appends one observation per 100 ms interval —
        the existing factor is extended by a block update:
        ``L21 = L11⁻¹ K12`` and ``L22 = chol(K22 − L21ᵀL21)``, costing
        O(n²·m) instead of the O(n³) full refactorization.
        """
        old_n = 0 if self._x is None else self._x.shape[0]
        if (
            self._chol is not None
            and self._fit_key == self._kernel_key()
            and 0 < old_n < x.shape[0]
            and x.shape[1] == self._x.shape[1]
            and np.array_equal(x[:old_n], self._x)
        ):
            new = x[old_n:]
            k12 = self.kernel(self._x, new)
            k22 = self.kernel(new, new)
            k22[np.diag_indices_from(k22)] += self.noise + _JITTER
            l21t = np.linalg.solve(self._chol, k12)  # L11 @ l21t = K12
            schur = k22 - l21t.T @ l21t
            try:
                l22 = np.linalg.cholesky(schur)
            except np.linalg.LinAlgError:
                pass  # ill-conditioned extension: fall through to full
            else:
                n = x.shape[0]
                chol = np.zeros((n, n))
                chol[:old_n, :old_n] = self._chol
                chol[old_n:, :old_n] = l21t.T
                chol[old_n:, old_n:] = l22
                active_collector().metrics.counter("gp.chol_extended").inc()
                return chol

        active_collector().metrics.counter("gp.chol_full").inc()
        k = self.kernel(x, x)
        k[np.diag_indices_from(k)] += self.noise + _JITTER
        try:
            return np.linalg.cholesky(k)
        except np.linalg.LinAlgError as exc:
            raise ModelError(f"kernel matrix not positive definite: {exc}") from exc

    def predict(self, x_query: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points.

        Returns values in the original (unstandardized) target units.
        """
        if not self.is_fitted:
            raise ModelError("predict() before fit()")
        x_query = np.atleast_2d(np.asarray(x_query, dtype=float))
        k_star = self.kernel(x_query, self._x)
        mean_z = k_star @ self._alpha

        v = np.linalg.solve(self._chol, k_star.T)
        var_z = self.kernel.diagonal(x_query.shape[0]) - np.sum(v**2, axis=0)
        var_z = np.maximum(var_z, 1e-12)

        mean = mean_z * self._y_std + self._y_mean
        std = np.sqrt(var_z) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """Log evidence of the fitted data under the current kernel."""
        if not self.is_fitted:
            raise ModelError("log_marginal_likelihood() before fit()")
        z_fit = self._chol @ (self._chol.T @ self._alpha)  # reconstruct z
        n = self._x.shape[0]
        return float(
            -0.5 * z_fit @ self._alpha
            - np.sum(np.log(np.diag(self._chol)))
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    def _best_kernel(self, x: np.ndarray, z: np.ndarray) -> Tuple[Kernel, Optional[np.ndarray]]:
        """Grid-search the length scale by marginal likelihood.

        The grid's kernel matrices are factored as one stacked Cholesky
        (one gufunc call for the whole grid instead of one LAPACK trip
        per length scale); the factors are bit-identical to per-matrix
        calls, so the winner and its evidence are unchanged.

        Returns the winning kernel together with its Cholesky factor so
        the caller can reuse it instead of refactorizing (``None`` only
        when every grid point failed to factorize).
        """
        n = x.shape[0]
        kernels = [self.kernel.with_params(lengthscale=ls) for ls in _LENGTHSCALE_GRID]
        stack = np.empty((len(kernels), n, n))
        for i, kernel in enumerate(kernels):
            k = kernel(x, x)
            k[np.diag_indices_from(k)] += self.noise + _JITTER
            stack[i] = k
        chols, ok = stacked_cholesky(stack)

        best_kernel = self.kernel
        best_chol: Optional[np.ndarray] = None
        best_evidence = -np.inf
        for kernel, chol, factorized in zip(kernels, chols, ok):
            if not factorized:
                continue
            alpha = _cho_solve(chol, z)
            evidence = (
                -0.5 * z @ alpha
                - np.sum(np.log(np.diag(chol)))
                - 0.5 * n * np.log(2.0 * np.pi)
            )
            if evidence > best_evidence:
                best_evidence = evidence
                best_kernel = kernel
                best_chol = chol
        return best_kernel, best_chol


def _cho_solve(chol: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``K x = b`` given the lower Cholesky factor of K."""
    return np.linalg.solve(chol.T, np.linalg.solve(chol, b))
