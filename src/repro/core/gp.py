"""Gaussian-process regression for the BO proxy model.

A deliberately small, dependency-free GP: Cholesky-factored exact
inference with a Matérn 5/2 kernel, internal standardization of the
targets, and an optional grid-search marginal-likelihood update of the
length scale. The paper's point (Sec. I, III-A) is that the proxy
model only needs to be "just accurate enough" to steer sampling — so
the implementation favours robustness and speed (it runs every 100 ms
interval) over hyperparameter sophistication.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.core.kernels import Kernel, Matern52

#: Jitter added to the kernel diagonal for numerical stability.
_JITTER = 1e-8

#: Length-scale grid used by the marginal-likelihood update. The
#: encoded configuration space has 10-35 dimensions, where typical
#: inter-point distances are well above 1, so useful length scales are
#: larger than the rule-of-thumb for low-dimensional BO.
_LENGTHSCALE_GRID = (0.3, 0.5, 0.8, 1.2, 2.0)


class GaussianProcess:
    """Exact GP regression with standardized targets.

    Args:
        kernel: covariance function; defaults to Matérn 5/2 with the
            length scale suited to [0, 1]-normalized configuration
            encodings.
        noise: observation-noise variance in *standardized* target
            units. SATORI's measurements carry a few percent of pqos
            sampling noise, which is a large fraction of the
            objective's dynamic range, so the default is substantial —
            an interpolating GP would chase measurement noise.
    """

    def __init__(self, kernel: Optional[Kernel] = None, noise: float = 5e-2):
        if noise < 0:
            raise ModelError(f"noise must be >= 0, got {noise}")
        self.kernel = kernel or Matern52()
        self.noise = float(noise)
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    @property
    def n_samples(self) -> int:
        return 0 if self._x is None else self._x.shape[0]

    def fit(
        self,
        x: np.ndarray,
        y: Sequence[float],
        optimize_lengthscale: bool = False,
    ) -> "GaussianProcess":
        """Condition the GP on observations.

        Args:
            x: ``(n, d)`` input matrix (normalized encodings).
            y: ``n`` target values (objective scores).
            optimize_lengthscale: if True, pick the length scale from a
                small grid by marginal likelihood before factorizing.

        Returns:
            self, for chaining.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        if x.shape[0] != y.shape[0]:
            raise ModelError(f"{x.shape[0]} inputs but {y.shape[0]} targets")
        if x.shape[0] == 0:
            raise ModelError("cannot fit a GP on zero samples")

        self._y_mean = float(np.mean(y))
        self._y_std = float(np.std(y))
        if self._y_std < 1e-12:
            self._y_std = 1.0
        z = (y - self._y_mean) / self._y_std

        if optimize_lengthscale and x.shape[0] >= 4:
            self.kernel = self._best_kernel(x, z)

        k = self.kernel(x, x)
        k[np.diag_indices_from(k)] += self.noise + _JITTER
        try:
            chol = np.linalg.cholesky(k)
        except np.linalg.LinAlgError as exc:
            raise ModelError(f"kernel matrix not positive definite: {exc}") from exc

        self._x = x
        self._chol = chol
        self._alpha = _cho_solve(chol, z)
        return self

    def predict(self, x_query: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points.

        Returns values in the original (unstandardized) target units.
        """
        if not self.is_fitted:
            raise ModelError("predict() before fit()")
        x_query = np.atleast_2d(np.asarray(x_query, dtype=float))
        k_star = self.kernel(x_query, self._x)
        mean_z = k_star @ self._alpha

        v = np.linalg.solve(self._chol, k_star.T)
        var_z = self.kernel.diagonal(x_query.shape[0]) - np.sum(v**2, axis=0)
        var_z = np.maximum(var_z, 1e-12)

        mean = mean_z * self._y_std + self._y_mean
        std = np.sqrt(var_z) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """Log evidence of the fitted data under the current kernel."""
        if not self.is_fitted:
            raise ModelError("log_marginal_likelihood() before fit()")
        z_fit = self._chol @ (self._chol.T @ self._alpha)  # reconstruct z
        n = self._x.shape[0]
        return float(
            -0.5 * z_fit @ self._alpha
            - np.sum(np.log(np.diag(self._chol)))
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    def _best_kernel(self, x: np.ndarray, z: np.ndarray) -> Kernel:
        """Grid-search the length scale by marginal likelihood."""
        best_kernel = self.kernel
        best_evidence = -np.inf
        for lengthscale in _LENGTHSCALE_GRID:
            kernel = self.kernel.with_params(lengthscale=lengthscale)
            k = kernel(x, x)
            k[np.diag_indices_from(k)] += self.noise + _JITTER
            try:
                chol = np.linalg.cholesky(k)
            except np.linalg.LinAlgError:
                continue
            alpha = _cho_solve(chol, z)
            evidence = (
                -0.5 * z @ alpha
                - np.sum(np.log(np.diag(chol)))
                - 0.5 * x.shape[0] * np.log(2.0 * np.pi)
            )
            if evidence > best_evidence:
                best_evidence = evidence
                best_kernel = kernel
        return best_kernel


def _cho_solve(chol: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``K x = b`` given the lower Cholesky factor of K."""
    return np.linalg.solve(chol.T, np.linalg.solve(chol, b))
