"""SATORI's multi-goal objective with per-goal records (Sec. III-B).

Traditional BO keeps one scalar observation per sampled point. When
the goal weights change, those scalars become stale and the point
would have to be *re-run* on the machine to re-score it — prohibitive
online. SATORI's enhancement is to record the **goal-specific**
outcomes (throughput score and fairness score) of every sample
separately, and reconstruct a fresh scalar objective

    f(x) = W_T * T(x) + W_F * F(x)          (Eq. 2)

in software at every iteration from the current weights. This module
is that record book. It is goal-count agnostic: the experiments use
(throughput, fairness), but any K goal scores per sample work, which
is the paper's extensibility claim (e.g. adding energy efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.resources.allocation import Configuration
from repro.serialize import thaw_data
from repro.state import GoalRecordsState


@dataclass(frozen=True)
class GoalSample:
    """One evaluated configuration with its per-goal scores.

    ``ips``/``isolation_ips`` optionally retain the raw per-job
    measurements the scores were computed from. They make the sample
    *rescorable*: just as recording per-goal scores lets the scalar
    objective be rebuilt when the goal weights change, recording the
    raw telemetry lets the goal scores themselves be rebuilt when the
    scoring context changes (e.g. a QoS guarantee tilts a job's
    baseline — see :class:`~repro.policies.bopf.BoPFPolicy`)."""

    config: Configuration
    encoded: Tuple[float, ...]
    scores: Tuple[float, ...]
    ips: Optional[Tuple[float, ...]] = None
    isolation_ips: Optional[Tuple[float, ...]] = None


class GoalRecords:
    """Separate per-goal performance records of all evaluated configs.

    Args:
        goal_names: names of the goals in score order, e.g.
            ``("throughput", "fairness")``.
        max_samples: cap on retained samples; the oldest samples are
            dropped beyond it. This both bounds the GP's cubic fit
            cost and ages out observations taken under old program
            phases — at the 0.1 s sampling interval the default keeps
            roughly one phase-length of history, mirroring the paper's
            periodic baseline resets.
    """

    def __init__(self, goal_names: Sequence[str] = ("throughput", "fairness"), max_samples: int = 64):
        if len(goal_names) < 1:
            raise ModelError("need at least one goal")
        if max_samples < 2:
            raise ModelError(f"max_samples must be >= 2, got {max_samples}")
        self._goal_names = tuple(goal_names)
        self._max_samples = max_samples
        self._samples: List[GoalSample] = []

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def goal_names(self) -> Tuple[str, ...]:
        return self._goal_names

    @property
    def n_goals(self) -> int:
        return len(self._goal_names)

    @property
    def samples(self) -> List[GoalSample]:
        return list(self._samples)

    def add(
        self,
        config: Configuration,
        encoded: Sequence[float],
        scores: Sequence[float],
        ips: Optional[Sequence[float]] = None,
        isolation_ips: Optional[Sequence[float]] = None,
    ) -> None:
        """Record one evaluation; scores are in goal order.

        Re-evaluations of an already-sampled configuration are added
        as new samples (the paper keeps re-evaluations so the model
        tracks phase changes, Sec. III-C). Pass the raw ``ips`` and
        ``isolation_ips`` the scores were derived from to make the
        sample rescorable (see :meth:`rescore`).
        """
        if len(scores) != self.n_goals:
            raise ModelError(f"expected {self.n_goals} goal scores, got {len(scores)}")
        self._samples.append(
            GoalSample(
                config=config,
                encoded=tuple(float(v) for v in encoded),
                scores=tuple(float(s) for s in scores),
                ips=None if ips is None else tuple(float(v) for v in ips),
                isolation_ips=(
                    None if isolation_ips is None else tuple(float(v) for v in isolation_ips)
                ),
            )
        )
        if len(self._samples) > self._max_samples:
            del self._samples[0]

    def rescore(self, scorer) -> int:
        """Recompute stored goal scores in place; returns samples changed.

        ``scorer`` maps a :class:`GoalSample` to fresh goal scores (in
        goal order) or ``None`` to leave that sample untouched — e.g.
        samples recorded without raw telemetry cannot be rescored.
        This is the software-based proxy reconstruction of Sec. III-B
        taken one level deeper: where :meth:`objective_values` rebuilds
        the *scalar* objective from per-goal scores under fresh
        weights, ``rescore`` rebuilds the per-goal *scores* from raw
        telemetry under a fresh scoring context, so the whole sample
        book shifts consistently when that context changes.
        """
        changed = 0
        for index, sample in enumerate(self._samples):
            fresh = scorer(sample)
            if fresh is None:
                continue
            fresh = tuple(float(s) for s in fresh)
            if len(fresh) != self.n_goals:
                raise ModelError(f"expected {self.n_goals} goal scores, got {len(fresh)}")
            if fresh != sample.scores:
                self._samples[index] = replace(sample, scores=fresh)
                changed += 1
        return changed

    def snapshot(self) -> GoalRecordsState:
        """The sample book as a versioned, JSON-codable value."""
        return GoalRecordsState(
            goal_names=self._goal_names,
            max_samples=self._max_samples,
            samples=[
                {
                    "config": s.config.to_dict(),
                    "encoded": list(s.encoded),
                    "scores": list(s.scores),
                    **({"ips": list(s.ips)} if s.ips is not None else {}),
                    **(
                        {"isolation_ips": list(s.isolation_ips)}
                        if s.isolation_ips is not None
                        else {}
                    ),
                }
                for s in self._samples
            ],
        )

    def restore(self, state: GoalRecordsState) -> "GoalRecords":
        """Replace the sample book with a :meth:`snapshot`'s contents."""
        if tuple(state.goal_names) != self._goal_names:
            raise ModelError(
                f"goal mismatch: records track {self._goal_names}, "
                f"state has {tuple(state.goal_names)}"
            )
        self._max_samples = int(state.max_samples)
        self._samples = [
            GoalSample(
                config=Configuration.from_dict(sample["config"]),
                encoded=tuple(float(v) for v in sample["encoded"]),
                scores=tuple(float(v) for v in sample["scores"]),
                ips=(
                    None
                    if sample.get("ips") is None
                    else tuple(float(v) for v in sample["ips"])
                ),
                isolation_ips=(
                    None
                    if sample.get("isolation_ips") is None
                    else tuple(float(v) for v in sample["isolation_ips"])
                ),
            )
            for sample in thaw_data(state.samples)
        ]
        return self

    def inputs(self) -> np.ndarray:
        """All encoded inputs as an ``(n, d)`` matrix."""
        if not self._samples:
            raise ModelError("no samples recorded yet")
        return np.asarray([s.encoded for s in self._samples], dtype=float)

    def goal_values(self, goal: str) -> np.ndarray:
        """All recorded values of one goal."""
        index = self._goal_index(goal)
        return np.asarray([s.scores[index] for s in self._samples], dtype=float)

    def objective_values(self, weights: Sequence[float]) -> np.ndarray:
        """Reconstruct Eq. 2 objective values under fresh weights.

        This is the "software-based reconstruction of the proxy model"
        (Sec. III-B): no configuration is re-run; the stored per-goal
        records are re-combined with the current weights.
        """
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n_goals,):
            raise ModelError(f"expected {self.n_goals} weights, got shape {weights.shape}")
        if not self._samples:
            raise ModelError("no samples recorded yet")
        scores = np.asarray([s.scores for s in self._samples], dtype=float)
        return scores @ weights

    def best(self, weights: Sequence[float]) -> Tuple[Configuration, float]:
        """Best recorded configuration under the given weights."""
        values = self.objective_values(weights)
        index = int(np.argmax(values))
        return self._samples[index].config, float(values[index])

    def latest(self) -> GoalSample:
        """The most recently recorded sample."""
        if not self._samples:
            raise ModelError("no samples recorded yet")
        return self._samples[-1]

    def goal_trace(self) -> Dict[str, np.ndarray]:
        """Each goal's recorded values in sample order (for analysis)."""
        return {name: self.goal_values(name) for name in self._goal_names}

    def _goal_index(self, goal: str) -> int:
        try:
            return self._goal_names.index(goal)
        except ValueError:
            raise ModelError(f"unknown goal {goal!r}; goals: {self._goal_names}") from None
