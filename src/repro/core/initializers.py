"""Initial configuration sets for the BO engine (Sec. V, overhead notes).

BO outcomes are sensitive to the initial sample set; the paper
mitigates this by starting from "a reasonable set of good
configurations (e.g., equal resource partitions, less imbalance in
partition share across resources for a job) instead of starting from
random configurations". This module builds that set:

* the equal partition (``S_init`` of Algorithm 1);
* one *mild-tilt* configuration per job, granting that job one extra
  unit of every resource taken from the most-provisioned other job —
  low cross-resource imbalance by construction;
* a few uniform samples for coverage of the wider space.
"""

from __future__ import annotations

from typing import List

from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.rng import SeedLike, make_rng


def tilt_toward(space: ConfigurationSpace, base: Configuration, job: int) -> Configuration:
    """Give ``job`` one extra unit of every resource, from the richest donor."""
    config = base
    for resource in space.catalog:
        units = list(config.units(resource.name))
        donors = [
            (units[j], j)
            for j in range(space.n_jobs)
            if j != job and units[j] - 1 >= resource.min_units
        ]
        if not donors:
            continue
        _, donor = max(donors)
        config = config.move_unit(resource.name, donor, job)
    return config


def good_initial_set(
    space: ConfigurationSpace,
    n_random: int = 2,
    rng: SeedLike = None,
) -> List[Configuration]:
    """The paper's "good" initial configurations for a space.

    Returns the equal partition first (it is also what the controller
    installs while measuring baselines), then one tilt per job, then
    ``n_random`` uniform samples, deduplicated in order.
    """
    rng = make_rng(rng)
    equal = space.equal_partition()
    candidates = [equal]
    candidates.extend(tilt_toward(space, equal, job) for job in range(space.n_jobs))
    candidates.extend(space.sample(rng) for _ in range(max(0, n_random)))

    seen = set()
    result = []
    for config in candidates:
        if config not in seen:
            seen.add(config)
            result.append(config)
    return result
