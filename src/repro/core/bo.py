"""The BO engine: proxy model + acquisition over the configuration space.

Implements the iterative loop of Algorithm 1's lines 6-8: update the
GP proxy model on the (freshly reconstructed) objective values, score
a candidate pool with the acquisition function, and emit the next
configuration to run.

Because the configuration space is discrete and combinatorially large,
the acquisition is maximized over a *candidate pool* rather than the
full space: uniform samples for global exploration, the one-unit-move
neighbors of the current best for local refinement, and the previously
sampled points themselves (the paper explicitly allows re-evaluation
of sampled configurations so phase changes are tracked, Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.acquisition import AcquisitionFunction, make_acquisition
from repro.core.gp import GaussianProcess
from repro.core.kernels import Kernel, Matern52
from repro.core.objective import GoalRecords
from repro.errors import ModelError
from repro.obs import active_collector
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.rng import SeedLike, make_rng, rng_from_state, rng_state
from repro.serialize import thaw_data
from repro.state import BOState


#: Spaces up to this size get exact acquisition maximization.
_EXACT_ACQUISITION_LIMIT = 2048


@dataclass(frozen=True)
class Suggestion:
    """The BO engine's output for one iteration."""

    config: Configuration
    acquisition_value: float
    predicted_mean: float
    predicted_std: float
    incumbent_value: float
    proxy_change_percent: float


class BayesianOptimizer:
    """Suggests the next configuration to evaluate (Algorithm 1, lines 6-8).

    Args:
        space: the configuration space being searched.
        acquisition: acquisition function or name (default the paper's
            Expected Improvement).
        kernel: GP kernel (default the paper's Matérn 5/2).
        noise: GP observation-noise variance (standardized units).
        candidate_pool_size: uniform random candidates per iteration.
        include_neighbors: add one-unit-move neighbors of the incumbent
            to the pool (local refinement).
        lengthscale_refit_every: re-select the kernel length scale by
            marginal likelihood after every N *new samples* (0 pins the
            initial length scale forever). Between refits the incumbent
            length scale is reused and the GP extends its Cholesky
            factor incrementally, keeping the per-interval cost of
            ``suggest()`` quadratic rather than cubic in the sample
            count (see ``benchmarks/test_bo_refit.py``). The default of
            10 keeps proxy-model trajectories indistinguishable from
            search-every-interval runs on the reproduction suite while
            skipping 90% of grid searches; pushing the cadence to ~5
            starts to chase GoalRecords window churn (transient grid
            winners) and measurably hurts adaptation after workload-mix
            changes.
        n_probes: size of the fixed probe set used to report the
            proxy-model change metric of Fig. 17(b).
        rng: seed or generator for candidate sampling.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        acquisition: "AcquisitionFunction | str" = "ei",
        kernel: Optional[Kernel] = None,
        noise: float = 5e-2,
        candidate_pool_size: int = 96,
        include_neighbors: bool = True,
        lengthscale_refit_every: int = 10,
        n_probes: int = 48,
        rng: SeedLike = None,
    ):
        if candidate_pool_size < 1:
            raise ModelError(f"candidate_pool_size must be >= 1, got {candidate_pool_size}")
        self._space = space
        self._acquisition = (
            make_acquisition(acquisition) if isinstance(acquisition, str) else acquisition
        )
        self._noise = noise
        self._pool_size = candidate_pool_size
        self._include_neighbors = include_neighbors
        self._refit_every = max(0, lengthscale_refit_every)
        # One persistent GP: reusing the instance is what lets fit()
        # extend its Cholesky factor as samples accumulate instead of
        # refactorizing from scratch each control interval.
        self._gp = GaussianProcess(
            kernel=kernel or Matern52(),
            noise=noise,
            lengthscale_refit_every=max(1, self._refit_every),
        )
        self._rng = make_rng(rng)

        self._iteration = 0
        self._probes = space.sample_batch(max(2, n_probes), self._rng)
        self._probe_x = space.encode_batch(self._probes)
        self._last_probe_means: Optional[np.ndarray] = None

        # On small spaces the acquisition is maximized exactly over the
        # whole space (Algorithm 1's "optimize a(x)"); on large spaces
        # a sampled candidate pool approximates it.
        self._full_space: Optional[List[Configuration]] = None
        self._full_space_encoded: Optional[np.ndarray] = None
        if space.size() <= _EXACT_ACQUISITION_LIMIT:
            self._full_space = list(space.enumerate())
            # Encoding the enumeration dominates suggest() on small
            # spaces if redone per interval; it never changes, so do
            # it once.
            self._full_space_encoded = space.encode_batch(self._full_space)

    @property
    def space(self) -> ConfigurationSpace:
        return self._space

    @property
    def iteration(self) -> int:
        return self._iteration

    # -- snapshot / restore ----------------------------------------------

    def snapshot(self) -> BOState:
        """The optimizer's mutable state as a versioned value.

        Captures the GP posterior, the candidate-sampling RNG position,
        the iteration counter, the proxy-change probe set (drawn from
        the RNG at construction — a restored optimizer is built from a
        different seed, so the probes must travel), and the previous
        probe means. The precomputed full-space enumeration is *not*
        state: it is a pure function of the space and is rebuilt by the
        constructor.
        """
        return BOState(
            gp=self._gp.snapshot(),
            rng=rng_state(self._rng),
            iteration=self._iteration,
            probes=[config.to_dict() for config in self._probes],
            last_probe_means=(
                None
                if self._last_probe_means is None
                else tuple(self._last_probe_means.tolist())
            ),
        )

    def restore(self, state: BOState) -> "BayesianOptimizer":
        """Resume from a :meth:`snapshot`; returns self for chaining."""
        self._gp.restore(state.gp)
        self._rng = rng_from_state(thaw_data(state.rng))
        self._iteration = int(state.iteration)
        probes = [Configuration.from_dict(d) for d in thaw_data(state.probes)]
        for probe in probes:
            if not self._space.contains(probe):
                raise ModelError(f"probe {probe!r} is outside this optimizer's space")
        self._probes = probes
        self._probe_x = self._space.encode_batch(probes)
        self._last_probe_means = (
            None
            if state.last_probe_means is None
            else np.asarray(state.last_probe_means, dtype=float)
        )
        return self

    def suggest(self, records: GoalRecords, weights: Sequence[float]) -> Suggestion:
        """Fit the proxy model and pick the next configuration.

        Args:
            records: the per-goal evaluation records.
            weights: current goal weights; the objective values are
                reconstructed from the records under these weights
                (Sec. III-B) before the GP is fitted.
        """
        if len(records) < 1:
            raise ModelError("BO needs at least one recorded sample; run the initial set first")
        obs = active_collector()
        gp = self._gp
        with obs.span("suggest", "bo"):
            # The gp_fit span covers the whole model update of
            # Algorithm 1 lines 6-7: reconstructing the objective
            # values under the current weights (Sec. III-B) and
            # conditioning the GP on them. The GP itself gates the grid
            # search by sample growth (lengthscale_refit_every);
            # refit_every == 0 disables it.
            with obs.span("gp_fit", "bo"):
                x = records.inputs()
                y = records.objective_values(weights)
                incumbent = float(np.max(y))
                gp.fit(x, y, optimize_lengthscale=self._refit_every > 0)

            # The acquisition span covers everything posterior-side:
            # the probe-set predictions of the proxy-change metric,
            # candidate generation, and the acquisition scan itself.
            with obs.span("acquisition", "bo"):
                proxy_change = self._track_proxy_change(gp)

                candidates = self._candidate_pool(records, weights)
                if candidates is self._full_space:
                    encoded = self._full_space_encoded
                else:
                    encoded = self._space.encode_batch(candidates)
                mean, std = gp.predict(encoded)
                scores = self._acquisition(mean, std, incumbent)
                best = int(np.argmax(scores))

            self._iteration += 1
            return Suggestion(
                config=candidates[best],
                acquisition_value=float(scores[best]),
                predicted_mean=float(mean[best]),
                predicted_std=float(std[best]),
                incumbent_value=incumbent,
                proxy_change_percent=proxy_change,
            )

    def _candidate_pool(
        self, records: GoalRecords, weights: Sequence[float]
    ) -> List[Configuration]:
        """Random + local-neighbor + already-sampled candidates.

        Small spaces return the full enumeration instead — the
        acquisition is then maximized exactly.
        """
        if self._full_space is not None:
            return self._full_space
        pool = self._space.sample_batch(self._pool_size, self._rng)
        if self._include_neighbors:
            best_config, _ = records.best(weights)
            pool.extend(self._space.neighbors(best_config))
            pool.append(best_config)
        # Previously sampled configurations stay eligible (re-evaluation
        # keeps the model honest across phase changes).
        pool.extend(s.config for s in records.samples[-8:])

        seen = set()
        unique = []
        for config in pool:
            if config not in seen:
                seen.add(config)
                unique.append(config)
        return unique

    def _track_proxy_change(self, gp: GaussianProcess) -> float:
        """Mean absolute change of proxy estimates on the probe set.

        This is the Fig. 17(b) metric: the percentage change in the
        proxy model's estimates from one iteration to the next,
        measured on a fixed set of configurations.
        """
        means, _ = gp.predict(self._probe_x)
        if self._last_probe_means is None:
            self._last_probe_means = means
            return 0.0
        denom = max(float(np.mean(np.abs(self._last_probe_means))), 1e-9)
        change = float(np.mean(np.abs(means - self._last_probe_means))) / denom * 100.0
        self._last_probe_means = means
        return change
