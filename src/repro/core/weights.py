"""Dynamic prioritization of goals (Sec. III-C, Eqs. 3-6).

SATORI temporarily prioritizes one goal over the other to exploit the
re-balancing opportunity of Observation 3, while guaranteeing that
over every *equalization period* ``T_E`` both goals average an equal
weight of 0.5. Each goal's weight has two components:

* the **prioritization weight** (Eq. 4), recomputed at every
  *prioritization period* ``T_P`` boundary from the percentage
  improvements of the goals during the previous period — the goal
  that improved *less* gets the larger weight next (prioritize the
  weaker goal; the paper found favoring the stronger goal instead
  underperforms by ~5%);
* the **equalization weight** (Eq. 3), the accumulated imbalance of
  the weights handed out so far in the current equalization period.

They are combined with a linearly growing emphasis on equalization as
the period end approaches (Eqs. 5-6). Following Sec. III-B/III-C, the
final weights are bounded to [0.25, 0.75] — "so as to not allow
weights to be 0 and 1" — and the pair is kept summing to 1.

Note on Eq. 3/5-6 as printed: the equalization terms are accumulated
imbalances whose magnitude is unbounded and whose raw combination
does not keep ``W_T + W_F = 1``; the paper's own bounding rule
(clamp to [0.25, 0.75]) is what restores well-formed weights, so the
implementation applies the equations verbatim and then that rule
(see DESIGN.md, "Faithfulness notes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import PolicyError
from repro.state import WeightSchedulerState

#: Paper bounds on the weight factors (Sec. III-B).
WEIGHT_LOWER_BOUND = 0.25
WEIGHT_UPPER_BOUND = 0.75

#: Paper defaults (Sec. IV): prioritization 1 s, equalization 10 s.
DEFAULT_PRIORITIZATION_PERIOD_S = 1.0
DEFAULT_EQUALIZATION_PERIOD_S = 10.0


@dataclass(frozen=True)
class WeightState:
    """The scheduler's outputs for one iteration (Fig. 14(a) data).

    ``w_throughput``/``w_fairness`` are the final bounded weights;
    the equalization/prioritization components are exposed for the
    weight-decomposition trace of Fig. 14(a).
    """

    w_throughput: float
    w_fairness: float
    equalization_throughput: float
    equalization_fairness: float
    prioritization_throughput: float
    prioritization_fairness: float
    equalization_fraction: float
    period_reset: bool

    @property
    def pair(self) -> Tuple[float, float]:
        return (self.w_throughput, self.w_fairness)


class StaticWeights:
    """Fixed goal weights: plain Eq. 2 without dynamic prioritization.

    Used by Throughput SATORI (1, 0), Fairness SATORI (0, 1), and the
    "SATORI without dynamic prioritization" variant (0.5, 0.5) that
    Figs. 14(b), 17 and 18 compare against.
    """

    def __init__(self, w_throughput: float = 0.5, w_fairness: float = 0.5):
        if w_throughput < 0 or w_fairness < 0:
            raise PolicyError("weights must be non-negative")
        total = w_throughput + w_fairness
        if total <= 0:
            raise PolicyError("at least one weight must be positive")
        self._w_t = w_throughput / total
        self._w_f = w_fairness / total

    def update(self, throughput: float, fairness: float) -> WeightState:
        """Return the fixed weights (inputs ignored; kept for protocol)."""
        return WeightState(
            w_throughput=self._w_t,
            w_fairness=self._w_f,
            equalization_throughput=0.0,
            equalization_fairness=0.0,
            prioritization_throughput=self._w_t,
            prioritization_fairness=self._w_f,
            equalization_fraction=0.0,
            period_reset=False,
        )

    def reset(self) -> None:
        """No state to reset; present for scheduler protocol parity."""

    def snapshot(self) -> Optional[WeightSchedulerState]:
        """Stateless: nothing to carry across runs."""
        return None

    def restore(self, state: Optional[WeightSchedulerState]) -> None:
        """Stateless: nothing to restore (protocol parity)."""


class DynamicWeightScheduler:
    """The paper's dynamic re-prioritization of throughput and fairness.

    Call :meth:`update` once per control interval with the goal scores
    measured in that interval; it returns the weights to use for the
    *next* objective-function reconstruction.

    Args:
        interval_s: control interval (0.1 s in the paper).
        prioritization_period_s: ``T_P`` (1 s default).
        equalization_period_s: ``T_E`` (10 s default).
        favor_weaker_goal: the paper's chosen design — prioritize the
            goal that improved *less* last period. ``False`` switches
            to favoring the stronger goal (the alternative the paper
            measured to underperform by ~5%), used in ablations.
    """

    def __init__(
        self,
        interval_s: float = 0.1,
        prioritization_period_s: float = DEFAULT_PRIORITIZATION_PERIOD_S,
        equalization_period_s: float = DEFAULT_EQUALIZATION_PERIOD_S,
        favor_weaker_goal: bool = True,
    ):
        if interval_s <= 0:
            raise PolicyError(f"interval must be positive, got {interval_s}")
        if prioritization_period_s < interval_s:
            raise PolicyError("prioritization period must cover at least one interval")
        if equalization_period_s < prioritization_period_s:
            raise PolicyError("equalization period must cover the prioritization period")
        self._interval = interval_s
        self._steps_per_tp = max(1, round(prioritization_period_s / interval_s))
        self._steps_per_te = max(self._steps_per_tp, round(equalization_period_s / interval_s))
        self._favor_weaker = favor_weaker_goal
        self.reset()

    @property
    def prioritization_period_s(self) -> float:
        return self._steps_per_tp * self._interval

    @property
    def equalization_period_s(self) -> float:
        return self._steps_per_te * self._interval

    def reset(self) -> None:
        """Start a fresh equalization period (e.g. on workload change)."""
        self._step_in_te = 0
        self._sum_w_t = 0.0
        self._sum_w_f = 0.0
        self._w_tp = 0.5
        self._w_fp = 0.5
        self._period_scores: list = []

    def snapshot(self) -> WeightSchedulerState:
        """The scheduler's position inside the current equalization period."""
        return WeightSchedulerState(
            step_in_te=self._step_in_te,
            sum_w_t=self._sum_w_t,
            sum_w_f=self._sum_w_f,
            w_tp=self._w_tp,
            w_fp=self._w_fp,
            period_scores=tuple(self._period_scores),
        )

    def restore(self, state: Optional[WeightSchedulerState]) -> None:
        """Resume mid-period from a :meth:`snapshot`."""
        if state is None:
            return
        self._step_in_te = int(state.step_in_te)
        self._sum_w_t = float(state.sum_w_t)
        self._sum_w_f = float(state.sum_w_f)
        self._w_tp = float(state.w_tp)
        self._w_fp = float(state.w_fp)
        self._period_scores = [(float(t), float(f)) for t, f in state.period_scores]

    def update(self, throughput: float, fairness: float) -> WeightState:
        """Advance one interval and produce the next weights.

        Args:
            throughput: normalized throughput score this interval.
            fairness: normalized fairness score this interval.
        """
        self._period_scores.append((throughput, fairness))

        # Prioritization-period boundary: recompute Eq. 4 from the
        # percent improvements over the period just ended.
        if self._step_in_te and self._step_in_te % self._steps_per_tp == 0:
            self._w_tp, self._w_fp = self._prioritization_weights()
            self._period_scores = self._period_scores[-1:]

        self._step_in_te += 1
        t_e = self._step_in_te  # elapsed iterations in the equalization period

        # Eq. 3: equalization weights from the accumulated imbalance.
        w_te = 0.5 * t_e - self._sum_w_t
        w_fe = 0.5 * t_e - self._sum_w_f

        # Eqs. 5-6: linear cross-fade toward equalization.
        fraction = t_e / self._steps_per_te
        w_t_raw = fraction * w_te + (1.0 - fraction) * self._w_tp
        w_f_raw = fraction * w_fe + (1.0 - fraction) * self._w_fp

        w_t, w_f = _bound_and_normalize(w_t_raw, w_f_raw)
        self._sum_w_t += w_t
        self._sum_w_f += w_f

        period_reset = self._step_in_te >= self._steps_per_te
        state = WeightState(
            w_throughput=w_t,
            w_fairness=w_f,
            equalization_throughput=fraction * w_te,
            equalization_fairness=fraction * w_fe,
            prioritization_throughput=(1.0 - fraction) * self._w_tp,
            prioritization_fairness=(1.0 - fraction) * self._w_fp,
            equalization_fraction=fraction,
            period_reset=period_reset,
        )
        if period_reset:
            # A new equalization period starts; prioritization history
            # carries over through _tp_start/_tp_last.
            self._step_in_te = 0
            self._sum_w_t = 0.0
            self._sum_w_f = 0.0
        return state

    def _prioritization_weights(self) -> Tuple[float, float]:
        """Eq. 4 from the percent improvements over the last period.

        The period's start and end levels are measured as short-window
        means (a quarter of the period each) rather than single
        samples, so pqos measurement noise does not masquerade as
        improvement and randomize the prioritization.
        """
        scores = self._period_scores
        k = max(1, len(scores) // 4)
        start_t = sum(s[0] for s in scores[:k]) / k
        start_f = sum(s[1] for s in scores[:k]) / k
        end_t = sum(s[0] for s in scores[-k:]) / k
        end_f = sum(s[1] for s in scores[-k:]) / k
        delta_t = max(_percent_change(start_t, end_t), 0.0)
        delta_f = max(_percent_change(start_f, end_f), 0.0)
        total = delta_t + delta_f
        if total <= 0:
            return 0.5, 0.5
        if self._favor_weaker:
            # Eq. 4: the goal whose counterpart improved more gets more
            # weight, i.e. the weaker goal is prioritized next.
            w_tp = 0.25 + 0.5 * (delta_f / total)
        else:
            # Ablation: favor the goal that just improved more.
            w_tp = 0.25 + 0.5 * (delta_t / total)
        return w_tp, 1.0 - w_tp


def _percent_change(start: float, end: float) -> float:
    if start <= 0:
        return 0.0
    return (end - start) / start * 100.0


def _bound_and_normalize(w_t: float, w_f: float) -> Tuple[float, float]:
    """Apply the paper's [0.25, 0.75] bounds and keep the pair summing to 1."""
    w_t = min(max(w_t, WEIGHT_LOWER_BOUND), WEIGHT_UPPER_BOUND)
    w_f = min(max(w_f, WEIGHT_LOWER_BOUND), WEIGHT_UPPER_BOUND)
    total = w_t + w_f
    w_t /= total
    w_f /= total
    # Renormalization can push one weight slightly past a bound when
    # the other sat at the opposite bound; a final clamp on one weight
    # (its complement derived) keeps both invariants exact.
    w_t = min(max(w_t, WEIGHT_LOWER_BOUND), WEIGHT_UPPER_BOUND)
    return w_t, 1.0 - w_t
