"""Covariance kernels for the Gaussian-process proxy model.

SATORI uses the Matérn 5/2 covariance kernel for its GP proxy model
(Sec. III-A, citing Snoek et al.). The squared-exponential (RBF)
kernel is provided as an alternative for ablation.

Kernels operate on inputs already normalized into ``[0, 1]`` per
dimension (the configuration-space encoding), so a single scalar
length scale is meaningful across resources.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ModelError


class Kernel(abc.ABC):
    """A stationary covariance function ``k(x, x')``."""

    def __init__(self, lengthscale: float = 0.8, variance: float = 1.0):
        if lengthscale <= 0:
            raise ModelError(f"lengthscale must be positive, got {lengthscale}")
        if variance <= 0:
            raise ModelError(f"variance must be positive, got {variance}")
        self.lengthscale = float(lengthscale)
        self.variance = float(variance)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Covariance matrix between row-sets ``a`` (n, d) and ``b`` (m, d)."""
        a = np.atleast_2d(np.asarray(a, dtype=float))
        b = np.atleast_2d(np.asarray(b, dtype=float))
        if a.shape[1] != b.shape[1]:
            raise ModelError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
        return self._from_distance(_pairwise_distance(a, b) / self.lengthscale)

    def diagonal(self, n: int) -> np.ndarray:
        """The prior variance at each of ``n`` points (``k(x, x)``)."""
        return np.full(n, self.variance)

    def with_params(self, lengthscale: float = None, variance: float = None) -> "Kernel":
        """A copy with replaced hyperparameters."""
        return type(self)(
            lengthscale=self.lengthscale if lengthscale is None else lengthscale,
            variance=self.variance if variance is None else variance,
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(lengthscale={self.lengthscale:.4g}, "
            f"variance={self.variance:.4g})"
        )

    @abc.abstractmethod
    def _from_distance(self, r: np.ndarray) -> np.ndarray:
        """Covariance as a function of scaled distance ``r >= 0``."""


class Matern52(Kernel):
    """Matérn covariance with smoothness 5/2 (the paper's choice)."""

    def _from_distance(self, r: np.ndarray) -> np.ndarray:
        sqrt5_r = np.sqrt(5.0) * r
        return self.variance * (1.0 + sqrt5_r + sqrt5_r**2 / 3.0) * np.exp(-sqrt5_r)


class RBF(Kernel):
    """Squared-exponential kernel (infinitely smooth alternative)."""

    def _from_distance(self, r: np.ndarray) -> np.ndarray:
        return self.variance * np.exp(-0.5 * r**2)


def _pairwise_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between row-sets, numerically clamped."""
    sq = (
        np.sum(a**2, axis=1)[:, None]
        + np.sum(b**2, axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    return np.sqrt(np.maximum(sq, 0.0))
