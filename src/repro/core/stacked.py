"""Stacked (batched) Cholesky linear algebra across many GPs.

The fleet runs one Gaussian process per node and the BO length-scale
search factorizes one kernel matrix per grid point — both are stacks
of same-shaped positive-definite matrices. LAPACK's ``dpotrf`` is
applied per matrix either way; handing numpy the whole ``(B, n, n)``
stack in one gufunc call removes B-1 Python round trips and dispatch
overheads without changing a single result bit (the batched gufunc
runs the identical routine on each stack element).

:func:`stacked_cholesky` is the shared primitive;
:class:`StackedGP` builds on it to fit B independent same-shape GPs —
one per node — in one factorization call, with per-task predictions
bit-identical to a loop of :class:`~repro.core.gp.GaussianProcess`
fits (``tests/test_stacked.py`` pins the pairing).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import Kernel, Matern52
from repro.errors import ModelError
from repro.obs import active_collector

#: Jitter added to kernel diagonals, kept equal to the scalar GP's.
_JITTER = 1e-8


def stacked_cholesky(matrices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Factor a ``(B, n, n)`` stack of matrices in one gufunc call.

    Returns ``(chols, ok)``: the lower Cholesky factors and a boolean
    mask of which stack entries factorized. numpy's batched
    ``cholesky`` raises if *any* entry fails, so on failure the stack
    is re-factored entry by entry — successful entries produce the
    identical factors either way — and failed entries hold zeros with
    ``ok[i] = False``.
    """
    matrices = np.asarray(matrices, dtype=float)
    if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
        raise ModelError(f"expected a (B, n, n) stack, got shape {matrices.shape}")
    size = matrices.shape[0]
    active_collector().metrics.histogram("gp.stacked_cholesky_batch").observe(float(size))
    try:
        return np.linalg.cholesky(matrices), np.ones(size, dtype=bool)
    except np.linalg.LinAlgError:
        chols = np.zeros_like(matrices)
        ok = np.zeros(size, dtype=bool)
        for i in range(size):
            try:
                chols[i] = np.linalg.cholesky(matrices[i])
            except np.linalg.LinAlgError:
                continue
            ok[i] = True
        return chols, ok


class StackedGP:
    """B independent GPs with shared hyperparameters, one factorization.

    The across-nodes batching primitive: every task (node) has its own
    inputs, targets, and standardization, but the kernel and noise are
    shared, so the B kernel matrices factor as one stacked Cholesky.
    Per-task posteriors are bit-identical to fitting B separate
    :class:`~repro.core.gp.GaussianProcess` instances — the stack only
    removes per-task dispatch, it never reorders arithmetic.

    Args:
        kernel: shared covariance function (default Matérn 5/2).
        noise: shared observation-noise variance (standardized units).
    """

    def __init__(self, kernel: Optional[Kernel] = None, noise: float = 5e-2):
        if noise < 0:
            raise ModelError(f"noise must be >= 0, got {noise}")
        self.kernel = kernel or Matern52()
        self.noise = float(noise)
        self._xs: Optional[List[np.ndarray]] = None
        self._chols: Optional[np.ndarray] = None
        self._alphas: Optional[List[np.ndarray]] = None
        self._y_means: Optional[np.ndarray] = None
        self._y_stds: Optional[np.ndarray] = None

    @property
    def n_tasks(self) -> int:
        return 0 if self._xs is None else len(self._xs)

    def fit(self, xs: Sequence[np.ndarray], ys: Sequence[Sequence[float]]) -> "StackedGP":
        """Condition every task's GP; one stacked factorization.

        Args:
            xs: per-task ``(n, d)`` input matrices; every task must
                have the same sample count ``n`` (pad or window
                upstream — the fleet's GoalRecords windows pin ``n``).
            ys: per-task target sequences of length ``n``.
        """
        if len(xs) != len(ys) or not xs:
            raise ModelError(f"need matching non-empty task lists, got {len(xs)}/{len(ys)}")
        xs = [np.atleast_2d(np.asarray(x, dtype=float)) for x in xs]
        shape = xs[0].shape
        if any(x.shape != shape for x in xs):
            raise ModelError("stacked fitting needs same-shape inputs across tasks")
        if shape[0] == 0:
            raise ModelError("cannot fit a GP on zero samples")

        zs = []
        y_means = np.empty(len(xs))
        y_stds = np.empty(len(xs))
        for i, y in enumerate(ys):
            y = np.asarray(y, dtype=float)
            if y.shape[0] != shape[0]:
                raise ModelError(f"task {i}: {shape[0]} inputs but {y.shape[0]} targets")
            y_means[i] = float(np.mean(y))
            y_stds[i] = float(np.std(y))
            if y_stds[i] < 1e-12:
                y_stds[i] = 1.0
            zs.append((y - y_means[i]) / y_stds[i])

        stack = np.empty((len(xs), shape[0], shape[0]))
        for i, x in enumerate(xs):
            k = self.kernel(x, x)
            k[np.diag_indices_from(k)] += self.noise + _JITTER
            stack[i] = k
        chols, ok = stacked_cholesky(stack)
        if not np.all(ok):
            bad = [i for i, good in enumerate(ok) if not good]
            raise ModelError(f"kernel matrix not positive definite for tasks {bad}")

        from repro.core.gp import _cho_solve

        self._xs = xs
        self._chols = chols
        self._alphas = [_cho_solve(chols[i], zs[i]) for i in range(len(xs))]
        self._y_means = y_means
        self._y_stds = y_stds
        return self

    def predict(self, x_query: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and std of every task at shared query points.

        Args:
            x_query: ``(m, d)`` query matrix, scored by every task's
                posterior (the common case: one candidate set, many
                nodes).

        Returns:
            ``(mean, std)`` arrays of shape ``(n_tasks, m)`` in each
            task's original target units.
        """
        if self._xs is None:
            raise ModelError("predict() before fit()")
        x_query = np.atleast_2d(np.asarray(x_query, dtype=float))
        m = x_query.shape[0]
        means = np.empty((len(self._xs), m))
        stds = np.empty((len(self._xs), m))
        for i, x in enumerate(self._xs):
            k_star = self.kernel(x_query, x)
            mean_z = k_star @ self._alphas[i]
            v = np.linalg.solve(self._chols[i], k_star.T)
            var_z = self.kernel.diagonal(m) - np.sum(v**2, axis=0)
            var_z = np.maximum(var_z, 1e-12)
            means[i] = mean_z * self._y_stds[i] + self._y_means[i]
            stds[i] = np.sqrt(var_z) * self._y_stds[i]
        return means, stds
