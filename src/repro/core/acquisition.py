"""Acquisition functions for the BO engine.

SATORI chooses Expected Improvement (EI) because it "provides a
reasonable balance between exploration vs. exploitation at a low
evaluation cost" (Sec. III-A). Probability of Improvement and
Upper Confidence Bound are provided for ablations.
"""

from __future__ import annotations

import abc

import numpy as np
from scipy import stats

from repro.errors import ModelError


class AcquisitionFunction(abc.ABC):
    """Scores candidate points from GP posterior mean/std (maximization)."""

    @abc.abstractmethod
    def __call__(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        """Acquisition values; higher means sample sooner.

        Args:
            mean: posterior means at the candidates.
            std: posterior standard deviations at the candidates.
            best: best objective value observed so far (the incumbent).
        """


class ExpectedImprovement(AcquisitionFunction):
    """EI with an exploration margin ``xi``."""

    def __init__(self, xi: float = 0.003):
        if xi < 0:
            raise ModelError(f"xi must be >= 0, got {xi}")
        self.xi = float(xi)

    def __call__(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        mean = np.asarray(mean, dtype=float)
        std = np.maximum(np.asarray(std, dtype=float), 1e-12)
        improvement = mean - best - self.xi
        z = improvement / std
        return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


class ProbabilityOfImprovement(AcquisitionFunction):
    """PI: chance the candidate beats the incumbent by ``xi``."""

    def __init__(self, xi: float = 0.01):
        if xi < 0:
            raise ModelError(f"xi must be >= 0, got {xi}")
        self.xi = float(xi)

    def __call__(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        mean = np.asarray(mean, dtype=float)
        std = np.maximum(np.asarray(std, dtype=float), 1e-12)
        return stats.norm.cdf((mean - best - self.xi) / std)


class UpperConfidenceBound(AcquisitionFunction):
    """UCB: ``mean + kappa * std`` (ignores the incumbent)."""

    def __init__(self, kappa: float = 2.0):
        if kappa < 0:
            raise ModelError(f"kappa must be >= 0, got {kappa}")
        self.kappa = float(kappa)

    def __call__(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        return np.asarray(mean, dtype=float) + self.kappa * np.asarray(std, dtype=float)


_ACQUISITIONS = {
    "ei": ExpectedImprovement,
    "pi": ProbabilityOfImprovement,
    "ucb": UpperConfidenceBound,
}


def make_acquisition(name: str, **kwargs: float) -> AcquisitionFunction:
    """Construct an acquisition function by name (``ei``/``pi``/``ucb``)."""
    try:
        factory = _ACQUISITIONS[name]
    except KeyError:
        raise ModelError(
            f"unknown acquisition {name!r}; choices: {sorted(_ACQUISITIONS)}"
        ) from None
    return factory(**kwargs)
