"""SATORI core: GP proxy model, acquisition, BO engine, dynamic weights."""

from repro.core.acquisition import (
    AcquisitionFunction,
    ExpectedImprovement,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    make_acquisition,
)
from repro.core.bo import BayesianOptimizer, Suggestion
from repro.core.controller import MODES, SatoriController
from repro.core.gp import GaussianProcess
from repro.core.initializers import good_initial_set, tilt_toward
from repro.core.kernels import RBF, Kernel, Matern52
from repro.core.objective import GoalRecords, GoalSample
from repro.core.weights import (
    DEFAULT_EQUALIZATION_PERIOD_S,
    DEFAULT_PRIORITIZATION_PERIOD_S,
    WEIGHT_LOWER_BOUND,
    WEIGHT_UPPER_BOUND,
    DynamicWeightScheduler,
    StaticWeights,
    WeightState,
)

__all__ = [
    "AcquisitionFunction",
    "BayesianOptimizer",
    "DEFAULT_EQUALIZATION_PERIOD_S",
    "DEFAULT_PRIORITIZATION_PERIOD_S",
    "DynamicWeightScheduler",
    "ExpectedImprovement",
    "GaussianProcess",
    "GoalRecords",
    "GoalSample",
    "Kernel",
    "MODES",
    "Matern52",
    "ProbabilityOfImprovement",
    "RBF",
    "SatoriController",
    "StaticWeights",
    "Suggestion",
    "UpperConfidenceBound",
    "WEIGHT_LOWER_BOUND",
    "WEIGHT_UPPER_BOUND",
    "WeightState",
    "good_initial_set",
    "make_acquisition",
    "tilt_toward",
]
