"""The SATORI controller (Algorithm 1).

Ties the pieces together into the paper's online loop:

1. run the initial "good" configuration set and record throughput and
   fairness per configuration (lines 1-2);
2. every interval, regenerate the goal weights (dynamic prioritization,
   Sec. III-C), reconstruct the objective from the per-goal records
   (Sec. III-B), update the GP proxy model, optimize the acquisition
   function, and emit the next configuration to run (lines 4-11).

Baseline (isolation) resets — Algorithm 1 line 12-13 — are handled by
the experiment runner, which owns the machine; the controller simply
consumes whatever ``isolation_ips`` its observations carry.

Variants (Sec. IV "Throughput and Fairness SATORI"):

* ``SatoriController(mode="dynamic")`` — full SATORI;
* ``mode="static"`` — fixed 0.5/0.5 weights (the "SATORI without
  dynamic prioritization" comparison of Figs. 14(b), 17, 18);
* ``mode="throughput"`` — weights (1, 0);
* ``mode="fairness"`` — weights (0, 1).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.bo import BayesianOptimizer, Suggestion
from repro.core.initializers import good_initial_set
from repro.core.objective import GoalRecords
from repro.core.weights import (
    DynamicWeightScheduler,
    StaticWeights,
    WeightState,
)
from repro import serialize
from repro.errors import PolicyError
from repro.obs import active_collector
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.rng import SeedLike, make_rng, rng_from_state, rng_state, spawn_rng
from repro.state import BOState, GoalRecordsState, PolicyState, WeightSchedulerState
from repro.system.simulation import Observation

MODES = ("dynamic", "static", "throughput", "fairness")


def _config_or_none(config: Optional[Configuration]) -> Optional[dict]:
    return None if config is None else config.to_dict()


def _restore_config(data: Optional[dict]) -> Optional[Configuration]:
    return None if data is None else Configuration.from_dict(data)


def _array_or_none(values) -> Optional[list]:
    return None if values is None else [float(v) for v in np.asarray(values).ravel()]


def _restore_array(data) -> Optional[np.ndarray]:
    return None if data is None else np.asarray(data, dtype=float)


class SatoriController(PartitioningPolicy):
    """SATORI: BO-driven multi-resource partitioning with dynamic goals.

    Args:
        space: configuration space over the controlled resources.
        goals: throughput/fairness metric choices.
        mode: ``"dynamic"`` (full SATORI), ``"static"``,
            ``"throughput"``, or ``"fairness"`` (see module docstring).
        interval_s: control interval (0.1 s in the paper).
        prioritization_period_s / equalization_period_s: the T_P / T_E
            knobs (1 s and 10 s paper defaults).
        favor_weaker_goal: Eq. 4 orientation; ``False`` is the paper's
            measured-worse alternative, kept for the Fig. 19 ablation.
        n_initial_random: extra random configurations in the initial set.
        idle_detection: hold the best-known configuration and skip BO
            work while the objective is stable (the paper's overhead
            optimization: SATORI "is invoked only when the performance
            of a specific job changes significantly"). On by default,
            as in the paper; the pure-BO ablations disable it.
        hardening: enable the resilience layer — sample validation
            (reject non-finite, stale, and outlier measurements before
            they reach the GP), actuation-aware attribution, and the
            actuation watchdog. Disable to get the naive controller the
            resilience experiments compare against.
        watchdog_threshold: consecutive actuation failures before the
            watchdog stops exploring and holds the installed
            configuration; BO re-engages as soon as actuation
            recovers.
        spike_factor: an isolated per-job speedup drop by more than
            this factor is rejected once; if it persists the next
            interval it is accepted as a real level shift (crash).
        speedup_ceiling: per-job co-located/isolation speedups above
            this are physically impossible and rejected (upward
            counter glitches).
        rng: seed or generator.

    Additional keyword arguments are forwarded to
    :class:`~repro.core.bo.BayesianOptimizer`.
    """

    name = "SATORI"
    state_kind = "SATORI"

    def __init__(
        self,
        space: ConfigurationSpace,
        goals: Optional[GoalSet] = None,
        mode: str = "dynamic",
        interval_s: float = 0.1,
        prioritization_period_s: float = 1.0,
        equalization_period_s: float = 10.0,
        favor_weaker_goal: bool = True,
        n_initial_random: int = 2,
        idle_detection: bool = True,
        idle_patience: int = 4,
        idle_tolerance: float = 0.12,
        hardening: bool = True,
        watchdog_threshold: int = 3,
        spike_factor: float = 4.0,
        speedup_ceiling: float = 2.0,
        rng: SeedLike = None,
        **bo_kwargs,
    ):
        super().__init__(space, goals)
        if mode not in MODES:
            raise PolicyError(f"unknown mode {mode!r}; choices: {MODES}")
        if watchdog_threshold < 1:
            raise PolicyError(f"watchdog_threshold must be >= 1, got {watchdog_threshold}")
        if spike_factor <= 1 or speedup_ceiling <= 1:
            raise PolicyError("spike_factor and speedup_ceiling must exceed 1")
        self._mode = mode
        self._rng = make_rng(rng)
        self._interval = interval_s
        self._scheduler = self._make_scheduler(
            mode,
            interval_s,
            prioritization_period_s,
            equalization_period_s,
            favor_weaker_goal,
        )
        self._bo = BayesianOptimizer(space, rng=spawn_rng(self._rng), **bo_kwargs)
        self._records = GoalRecords(("throughput", "fairness"))
        self._initial_set = good_initial_set(space, n_initial_random, spawn_rng(self._rng))
        self._initial_cursor = 0
        self._pending: Optional[Configuration] = None

        self._idle_detection = idle_detection
        self._idle_patience = max(2, idle_patience)
        self._idle_tolerance = idle_tolerance
        self._idle = False
        self._stable_best: Optional[Configuration] = None
        self._best_streak = 0
        self._idle_entry_objective = 0.0
        self._idle_ema = 0.0
        self._idle_config: Optional[Configuration] = None

        self._hardening = hardening
        self._watchdog_threshold = watchdog_threshold
        self._spike_factor = spike_factor
        self._speedup_ceiling = speedup_ceiling
        self._actuation_failures = 0
        self._watchdog_active = False
        self._fallback_intervals = 0
        self._rejected_samples = 0
        self._spike_pending = False
        self._noise_seen = False
        self._last_accepted_ips: Optional[np.ndarray] = None
        self._last_accepted_config: Optional[Configuration] = None
        self._last_good_speedups: Optional[np.ndarray] = None

        self._baseline_tilt: Optional[Tuple[float, ...]] = None
        self._last_weights: Optional[WeightState] = None
        self._last_suggestion: Optional[Suggestion] = None
        self._last_objective = 0.0
        self._decision_seconds = 0.0
        self._decision_count = 0
        self._idle_intervals = 0
        if mode == "throughput":
            self.name = "Throughput SATORI"
        elif mode == "fairness":
            self.name = "Fairness SATORI"
        elif mode == "static":
            self.name = "SATORI (static weights)"
        if not hardening:
            self.name = f"{self.name} (unhardened)"

    # -- protocol -----------------------------------------------------------

    def decide(self, observation: Optional[Observation]) -> Configuration:
        """One Algorithm-1 iteration; returns the next configuration."""
        started = time.perf_counter()
        try:
            with active_collector().span("decide", "controller"):
                return self._decide(observation)
        finally:
            self._decision_seconds += time.perf_counter() - started
            self._decision_count += 1

    def reset(self) -> None:
        """Drop all learned state (fresh records, scheduler, initial set)."""
        self._scheduler.reset()
        self._records = GoalRecords(("throughput", "fairness"))
        self._initial_cursor = 0
        self._pending = None
        self._idle = False
        self._stable_best = None
        self._best_streak = 0
        self._idle_entry_objective = 0.0
        self._idle_ema = 0.0
        self._idle_config = None
        self._last_weights = None
        self._last_suggestion = None
        self._actuation_failures = 0
        self._watchdog_active = False
        self._spike_pending = False
        self._noise_seen = False
        self._last_accepted_ips = None
        self._last_accepted_config = None
        self._last_good_speedups = None
        self._baseline_tilt = None

    def set_baseline_tilt(self, tilt: Optional[Sequence[float]]) -> int:
        """Install per-job isolation-baseline multipliers; returns rescores.

        While a tilt is installed every observation is *scored* (and
        recorded) as if job ``j``'s isolation baseline were
        ``isolation_ips[j] * tilt[j]`` — shrinking its apparent speedup
        so the equalization objective pulls resources toward it. The
        raw measurements are untouched; only the scoring context
        changes, and the whole sample book is rescored under the new
        context at once (see :meth:`GoalRecords.rescore`), so the
        optimizer's belief about *every* configuration — visited before
        or during the tilt — shifts atomically. Without the rescore a
        tilt would only devalue configurations re-visited afterwards,
        leaving the incumbent argmax pinned where the untilted history
        put it.

        ``None`` (or all-ones) clears the tilt. The tilt is wrapper
        state, not controller state: wrappers such as
        :class:`~repro.policies.bopf.BoPFPolicy` own its lifecycle and
        re-install it after a :meth:`restore`.
        """
        new = None if tilt is None else tuple(float(v) for v in tilt)
        if new is not None:
            if len(new) != self._space.n_jobs:
                raise PolicyError(
                    f"baseline tilt has {len(new)} entries for {self._space.n_jobs} jobs"
                )
            if any(v <= 0 for v in new):
                raise PolicyError(f"baseline tilt must be positive, got {new}")
            if all(v == 1.0 for v in new):
                new = None
        if new == self._baseline_tilt:
            return 0
        self._baseline_tilt = new

        def rescorer(sample):
            if sample.ips is None or sample.isolation_ips is None:
                return None
            scores = self._goals.scores(sample.ips, self._tilt_baselines(sample.isolation_ips))
            return (scores.throughput, scores.fairness)

        changed = self._records.rescore(rescorer)
        if changed:
            # The objective the idle latch froze on no longer exists:
            # its entry reference and held configuration were chosen
            # under the old scoring context. Wake the search and make
            # it re-earn stability under the new one.
            self._idle = False
            self._stable_best = None
            self._best_streak = 0
        return changed

    def _tilt_baselines(self, isolation_ips: Sequence[float]) -> Sequence[float]:
        if self._baseline_tilt is None:
            return isolation_ips
        return tuple(v * t for v, t in zip(isolation_ips, self._baseline_tilt))

    def diagnostics(self) -> Dict[str, float]:
        """Weights, objective, and proxy-change internals for telemetry."""
        out: Dict[str, float] = {}
        if self._last_weights is not None:
            w = self._last_weights
            out.update(
                weight_throughput=w.w_throughput,
                weight_fairness=w.w_fairness,
                weight_eq_throughput=w.equalization_throughput,
                weight_eq_fairness=w.equalization_fairness,
                weight_pr_throughput=w.prioritization_throughput,
                weight_pr_fairness=w.prioritization_fairness,
            )
        out["objective"] = self._last_objective
        if self._last_suggestion is not None:
            out["proxy_change_percent"] = self._last_suggestion.proxy_change_percent
            out["incumbent"] = self._last_suggestion.incumbent_value
        if self._hardening:
            out["watchdog_active"] = float(self._watchdog_active)
            out["rejected_samples"] = float(self._rejected_samples)
            out["fallback_intervals"] = float(self._fallback_intervals)
        return out

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self) -> PolicyState:
        """Everything the decision path reads, as one serializable value.

        Includes the construction-time RNG draws (the initial "good"
        set and the BO probe set) because a restored controller is
        built from a *different* seed than the one that produced the
        snapshot; excludes only wall-clock accounting
        (``_decision_seconds``), which is irrelevant to decisions and
        non-deterministic by nature.
        """
        scheduler_state = self._scheduler.snapshot()
        suggestion = self._last_suggestion
        payload = {
            "mode": self._mode,
            "rng": rng_state(self._rng),
            "scheduler": None if scheduler_state is None else scheduler_state.to_dict(),
            "bo": self._bo.snapshot().to_dict(),
            "records": self._records.snapshot().to_dict(),
            "initial_set": [config.to_dict() for config in self._initial_set],
            "initial_cursor": self._initial_cursor,
            "pending": _config_or_none(self._pending),
            "idle": self._idle,
            "stable_best": _config_or_none(self._stable_best),
            "best_streak": self._best_streak,
            "idle_entry_objective": self._idle_entry_objective,
            "idle_ema": self._idle_ema,
            "idle_config": _config_or_none(self._idle_config),
            "actuation_failures": self._actuation_failures,
            "watchdog_active": self._watchdog_active,
            "fallback_intervals": self._fallback_intervals,
            "rejected_samples": self._rejected_samples,
            "spike_pending": self._spike_pending,
            "noise_seen": self._noise_seen,
            "last_accepted_ips": _array_or_none(self._last_accepted_ips),
            "last_accepted_config": _config_or_none(self._last_accepted_config),
            "last_good_speedups": _array_or_none(self._last_good_speedups),
            "last_weights": (
                None
                if self._last_weights is None
                else serialize.dataclass_to_dict(self._last_weights)
            ),
            "last_suggestion": (
                None
                if suggestion is None
                else {
                    "config": suggestion.config.to_dict(),
                    "acquisition_value": suggestion.acquisition_value,
                    "predicted_mean": suggestion.predicted_mean,
                    "predicted_std": suggestion.predicted_std,
                    "incumbent_value": suggestion.incumbent_value,
                    "proxy_change_percent": suggestion.proxy_change_percent,
                }
            ),
            "last_objective": self._last_objective,
            "decision_count": self._decision_count,
            "idle_intervals": self._idle_intervals,
            "baseline_tilt": (
                None if self._baseline_tilt is None else list(self._baseline_tilt)
            ),
        }
        return PolicyState(policy=self.state_kind, payload=payload)

    def restore(self, state: Optional[PolicyState]) -> None:
        """Resume from a :meth:`snapshot` taken by a same-mode controller.

        The controller must be constructed with the same configuration
        knobs (space, mode, periods, hardening settings) as the one
        that produced the snapshot — the engine guarantees this by
        rebuilding policies from identical spec kwargs. Continuing from
        here is bit-identical to never having torn the controller down.
        """
        if state is None:
            return
        self._check_state(state)
        payload = state.payload_dict()
        if payload.get("mode") != self._mode:
            raise PolicyError(
                f"cannot restore a {payload.get('mode')!r}-mode snapshot into a "
                f"{self._mode!r}-mode controller"
            )
        self._rng = rng_from_state(payload["rng"])
        scheduler_state = payload.get("scheduler")
        self._scheduler.restore(
            None
            if scheduler_state is None
            else WeightSchedulerState.from_dict(scheduler_state)
        )
        self._bo.restore(BOState.from_dict(payload["bo"]))
        self._records.restore(GoalRecordsState.from_dict(payload["records"]))
        self._initial_set = [
            Configuration.from_dict(d) for d in payload["initial_set"]
        ]
        self._initial_cursor = int(payload["initial_cursor"])
        self._pending = _restore_config(payload.get("pending"))
        self._idle = bool(payload["idle"])
        self._stable_best = _restore_config(payload.get("stable_best"))
        self._best_streak = int(payload["best_streak"])
        self._idle_entry_objective = float(payload["idle_entry_objective"])
        self._idle_ema = float(payload["idle_ema"])
        self._idle_config = _restore_config(payload.get("idle_config"))
        self._actuation_failures = int(payload["actuation_failures"])
        self._watchdog_active = bool(payload["watchdog_active"])
        self._fallback_intervals = int(payload["fallback_intervals"])
        self._rejected_samples = int(payload["rejected_samples"])
        self._spike_pending = bool(payload["spike_pending"])
        self._noise_seen = bool(payload["noise_seen"])
        self._last_accepted_ips = _restore_array(payload.get("last_accepted_ips"))
        self._last_accepted_config = _restore_config(payload.get("last_accepted_config"))
        self._last_good_speedups = _restore_array(payload.get("last_good_speedups"))
        weights = payload.get("last_weights")
        self._last_weights = (
            None if weights is None else serialize.dataclass_from_dict(WeightState, weights)
        )
        suggestion = payload.get("last_suggestion")
        self._last_suggestion = (
            None
            if suggestion is None
            else Suggestion(
                config=Configuration.from_dict(suggestion["config"]),
                acquisition_value=float(suggestion["acquisition_value"]),
                predicted_mean=float(suggestion["predicted_mean"]),
                predicted_std=float(suggestion["predicted_std"]),
                incumbent_value=float(suggestion["incumbent_value"]),
                proxy_change_percent=float(suggestion["proxy_change_percent"]),
            )
        )
        self._last_objective = float(payload["last_objective"])
        self._decision_count = int(payload["decision_count"])
        self._idle_intervals = int(payload["idle_intervals"])
        tilt = payload.get("baseline_tilt")
        self._baseline_tilt = None if tilt is None else tuple(float(v) for v in tilt)

    # -- introspection -------------------------------------------------------

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def records(self) -> GoalRecords:
        return self._records

    @property
    def initial_configurations(self) -> List[Configuration]:
        """The "good" initial set run before BO engages (Alg. 1 line 1)."""
        return list(self._initial_set)

    @property
    def weights(self) -> Optional[WeightState]:
        """The most recent weight state (Fig. 14(a) decomposition)."""
        return self._last_weights

    @property
    def probing(self) -> bool:
        """Whether the initial probe set is still being drained.

        While probing, measured speedups reflect deliberately diverse
        (often bad) configurations rather than the controller's best
        belief — wrappers layering guarantees on top (e.g. BoPF)
        should not react to them.
        """
        return self._initial_cursor < len(self._initial_set)

    @property
    def mean_decision_time_s(self) -> float:
        """Mean wall-clock cost of one decide() call (overhead metric)."""
        if self._decision_count == 0:
            return 0.0
        return self._decision_seconds / self._decision_count

    @property
    def idle_fraction(self) -> float:
        """Fraction of intervals spent idle (overhead optimization)."""
        if self._decision_count == 0:
            return 0.0
        return self._idle_intervals / self._decision_count

    @property
    def hardening(self) -> bool:
        """Whether the resilience layer is enabled."""
        return self._hardening

    @property
    def watchdog_active(self) -> bool:
        """Whether the actuation watchdog is currently holding."""
        return self._watchdog_active

    @property
    def rejected_samples(self) -> int:
        """Observations rejected by sample validation so far."""
        return self._rejected_samples

    @property
    def fallback_intervals(self) -> int:
        """Intervals spent on the watchdog's hold-installed fallback."""
        return self._fallback_intervals

    # -- internals -------------------------------------------------------------

    def _decide(self, observation: Optional[Observation]) -> Configuration:
        if observation is None:
            # Session (re)start: there is no previous interval to
            # attribute. A fresh controller opens the initial "good"
            # set (Alg. 1 line 1); a warm-started one resumes from
            # what it already learned instead of re-paying for probes
            # a previous epoch already drained.
            if self._initial_cursor < len(self._initial_set):
                self._pending = self._initial_set[self._initial_cursor]
                self._initial_cursor += 1
                return self._pending
            if self._idle and self._idle_config is not None:
                # Resume on the held optimum. The idle latch survives
                # the restart on purpose: the idle-exit tolerance is
                # the arbiter of whether the new epoch's environment
                # moved enough to warrant re-exploring — waking
                # unconditionally would let BO exploit records from
                # the *previous* environment, which measures worse.
                self._pending = self._idle_config
                return self._pending
            return self._retreat_configuration()

        if self._hardening:
            fallback = self._watchdog_gate(observation)
            if fallback is not None:
                return fallback
            if not self._validate_observation(observation):
                # A corrupted measurement must not reach the GP; spend
                # the interval on the best recorded configuration (not
                # on whatever exploration point was last emitted) and
                # wait for a clean sample.
                self._rejected_samples += 1
                active_collector().event(
                    "sample_rejected", "controller", time_s=observation.time_s
                )
                return self._retreat_configuration()

        scores = self._record(observation)
        weight_state = self._scheduler.update(scores.throughput, scores.fairness)
        self._last_weights = weight_state
        weights = weight_state.pair
        self._last_objective = scores.weighted(*weights)

        # Drain the initial good set before engaging BO (Alg. 1 line 1-2).
        if self._initial_cursor < len(self._initial_set):
            self._pending = self._initial_set[self._initial_cursor]
            self._initial_cursor += 1
            return self._pending

        if self._idle_detection and self._check_idle(weights):
            self._idle_intervals += 1
            self._pending = self._idle_config
            return self._idle_config

        suggestion = self._bo.suggest(self._records, weights)
        self._last_suggestion = suggestion
        self._pending = suggestion.config
        self._track_stability()
        return suggestion.config

    def _record(self, observation: Observation):
        """Record the previous interval's per-goal outcome (Alg. 1 line 10-11).

        Scores are computed under the installed baseline tilt (if any)
        so fresh samples and the rescored book stay consistent; the raw
        measurements are stored alongside so the sample remains
        rescorable when the tilt changes.
        """
        scores = self._goals.scores(
            observation.ips, self._tilt_baselines(observation.isolation_ips)
        )
        config = self._pending
        if self._hardening and not observation.actuation_ok:
            # The suggested configuration never got installed; the
            # interval ran under the last-known-good configuration the
            # observation reports. Attributing the outcome to the
            # uninstalled suggestion would poison the GP.
            config = None
        if config is None:
            # The run was started outside decide(); fall back to the
            # observation's installed configuration restricted to the
            # controlled resources.
            if observation.config is None:
                raise PolicyError("cannot attribute observation to a configuration")
            config = observation.config.restrict(self.controlled_resources)
        self._records.add(
            config,
            self._space.encode(config),
            (scores.throughput, scores.fairness),
            ips=observation.ips,
            isolation_ips=observation.isolation_ips,
        )
        return scores

    def _hold_configuration(self) -> Configuration:
        """Re-emit the last decision (or ``S_init`` if nothing ran yet)."""
        if self._pending is None:
            self._pending = self._initial_set[0]
        return self._pending

    def _retreat_configuration(self) -> Configuration:
        """The best recorded configuration under the current weights.

        Used while rejecting corrupted samples: if the rejection lands
        mid-exploration, freezing on the half-evaluated probe point
        could pin a bad configuration for the whole burst; retreating
        to the incumbent spends the burst on known-good ground.
        """
        if len(self._records) == 0 or self._last_weights is None:
            return self._hold_configuration()
        values = self._records.objective_values(self._last_weights.pair)
        if not np.any(np.isfinite(values)):
            return self._hold_configuration()
        best = int(np.nanargmax(values))
        self._pending = self._records.samples[best].config
        return self._pending

    def _watchdog_gate(self, observation: Observation) -> Optional[Configuration]:
        """Track actuation health; stop exploring during an outage.

        After ``watchdog_threshold`` consecutive failed installs the
        controller stops exploring — every suggestion is bouncing off a
        dead actuator — and repeatedly requests the configuration that
        is actually installed (the last-known-good one the observation
        reports), so nothing moves when the actuator comes back;
        ``S_init`` is the fallback if no configuration is known. The
        first successful install clears the watchdog and BO resumes
        with its records intact (faulted intervals were never
        recorded).
        """
        if observation.actuation_ok:
            self._actuation_failures = 0
            self._watchdog_active = False
            return None
        self._actuation_failures += 1
        if self._actuation_failures >= self._watchdog_threshold:
            if not self._watchdog_active:
                active_collector().event(
                    "watchdog_engaged", "controller", failures=self._actuation_failures
                )
            self._watchdog_active = True
        if self._watchdog_active:
            self._fallback_intervals += 1
            if observation.config is not None:
                self._pending = observation.config.restrict(self.controlled_resources)
            else:
                self._pending = self._initial_set[0]
            return self._pending
        return None

    def _validate_observation(self, observation: Observation) -> bool:
        """Gate measurements before they reach the records/GP.

        Rejects: non-finite IPS or baselines (dropped samples, NaN
        glitches); a job repeating its previous accepted IPS
        bit-for-bit once measurement noise has been observed (with
        noise present, exact float repeats only come from a stuck
        counter; on a noise-free deterministic run the check stays
        dormant); per-job speedups above ``speedup_ceiling``
        (physically impossible, an upward counter glitch); and
        isolated speedup drops by more than ``spike_factor`` (rejected
        once — if the drop persists it is a real level shift and is
        accepted).
        """
        ips = np.asarray(observation.ips, dtype=float)
        iso = np.asarray(observation.isolation_ips, dtype=float)
        if not (np.all(np.isfinite(ips)) and np.all(np.isfinite(iso))):
            return False
        if not np.any(ips > 0):
            # A fully-starved interval (mass crash/hang) has no defined
            # fairness CoV; scoring it would raise mid-decide.
            return False
        if self._last_accepted_ips is not None and len(self._last_accepted_ips) == len(ips):
            if not self._noise_seen and self._same_config(observation):
                # Small nonzero change under an unchanged configuration
                # is measurement noise (phase shifts move levels by
                # much more); from here on exact repeats are stuck.
                with np.errstate(divide="ignore", invalid="ignore"):
                    rel = np.abs(ips - self._last_accepted_ips) / np.where(
                        self._last_accepted_ips > 0, self._last_accepted_ips, 1.0
                    )
                if np.any((rel > 0) & (rel < 0.05)):
                    self._noise_seen = True
            if self._noise_seen:
                stale = (ips == self._last_accepted_ips) & (ips > 0)
                if np.any(stale):
                    return False
        safe_iso = np.where(iso > 0, iso, 1.0)
        speedup = np.where(iso > 0, ips / safe_iso, 0.0)
        if np.any(speedup > self._speedup_ceiling):
            return False
        if self._last_good_speedups is not None and len(self._last_good_speedups) == len(speedup):
            ref = self._last_good_speedups
            suspect = (ref > 0) & (speedup < ref / self._spike_factor)
            if np.any(suspect) and not self._spike_pending:
                self._spike_pending = True
                return False
        self._spike_pending = False
        self._last_accepted_ips = ips
        self._last_accepted_config = observation.config
        self._last_good_speedups = speedup
        return True

    def _same_config(self, observation: Observation) -> bool:
        return (
            observation.config is not None
            and self._last_accepted_config is not None
            and observation.config == self._last_accepted_config
        )

    def _track_stability(self) -> None:
        """Count how long the optimizer's belief about the best config holds.

        The stability check uses balanced weights so the streak is not
        reset by the dynamic re-prioritization itself — idleness is
        about the *search* having settled, not about which goal is
        currently favored.
        """
        best, _ = self._records.best((0.5, 0.5))
        if best == self._stable_best:
            self._best_streak += 1
        else:
            self._stable_best = best
            self._best_streak = 1

    def _check_idle(self, weights) -> bool:
        """The paper's overhead optimization: hold the optimum once found.

        SATORI enters idle once its incumbent-best configuration has
        been stable for ``idle_patience`` iterations, and wakes as soon
        as the measured objective of the held configuration deviates
        from its level at idle entry by more than ``idle_tolerance``
        (relative) — i.e. "when the performance of a specific job
        changes significantly", Sec. V.
        """
        if self._idle:
            reference = self._idle_entry_objective
            self._idle_ema = 0.7 * self._idle_ema + 0.3 * self._last_objective
            if reference > 0 and abs(self._idle_ema - reference) / reference > self._idle_tolerance:
                self._idle = False
                self._best_streak = 0
                self._stable_best = None
                active_collector().event("idle_exit", "controller")
            return self._idle

        if self._best_streak >= self._idle_patience:
            self._idle = True
            active_collector().event("idle_enter", "controller")
            self._idle_entry_objective = self._last_objective
            self._idle_ema = self._last_objective
            # Pin the configuration held during idleness: re-selecting a
            # "best" per interval would flip between near-ties as the
            # dynamic weights move, paying reconfiguration cost for
            # nothing ("avoiding frequent updates ... after the optimal
            # configuration detection", Sec. V).
            self._idle_config, _ = self._records.best(weights)
        return self._idle

    @staticmethod
    def _make_scheduler(
        mode: str,
        interval_s: float,
        t_p: float,
        t_e: float,
        favor_weaker_goal: bool,
    ) -> Union[DynamicWeightScheduler, StaticWeights]:
        if mode == "dynamic":
            return DynamicWeightScheduler(
                interval_s=interval_s,
                prioritization_period_s=t_p,
                equalization_period_s=t_e,
                favor_weaker_goal=favor_weaker_goal,
            )
        if mode == "static":
            return StaticWeights(0.5, 0.5)
        if mode == "throughput":
            return StaticWeights(1.0, 0.0)
        return StaticWeights(0.0, 1.0)
