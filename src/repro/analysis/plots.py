"""Dependency-free terminal plots for examples, the CLI, and reports.

Matplotlib is not assumed (and not installed in offline reproduction
environments); these renderers cover the shapes the paper's figures
use — time series (weights, objective traces), grouped bars
(policy comparisons), and compact sparklines for tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_BAR_CHAR = "█"


def sparkline(values: Sequence[float], lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """One-line unicode sparkline of a numeric series."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ExperimentError("cannot sparkline an empty series")
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return " " * values.size
    lo = float(finite.min()) if lo is None else lo
    hi = float(finite.max()) if hi is None else hi
    span = hi - lo
    chars = []
    for v in values:
        if not np.isfinite(v):
            chars.append(" ")
            continue
        if span <= 0:
            chars.append(_SPARK_LEVELS[len(_SPARK_LEVELS) // 2])
            continue
        level = int((v - lo) / span * (len(_SPARK_LEVELS) - 1) + 0.5)
        chars.append(_SPARK_LEVELS[min(max(level, 0), len(_SPARK_LEVELS) - 1)])
    return "".join(chars)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart, one labeled row per value."""
    labels = list(labels)
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ExperimentError(f"{len(labels)} labels but {len(values)} values")
    if not values:
        raise ExperimentError("nothing to chart")
    peak = max(max(values), 1e-12) if max_value is None else max_value
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(min(value / peak, 1.0) * width))
        bar = _BAR_CHAR * filled
        lines.append(f"{label.rjust(label_width)}  {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Dict[str, Sequence[float]],
    height: int = 10,
    width: int = 72,
    y_label: str = "",
) -> str:
    """Multi-series ASCII line chart (each series gets its own glyph)."""
    if not series:
        raise ExperimentError("nothing to chart")
    glyphs = "*+ox#@"
    arrays = {name: np.asarray(list(v), dtype=float) for name, v in series.items()}
    lengths = {a.size for a in arrays.values()}
    if 0 in lengths:
        raise ExperimentError("cannot chart an empty series")

    all_values = np.concatenate([a[np.isfinite(a)] for a in arrays.values()])
    if all_values.size == 0:
        raise ExperimentError("no finite values to chart")
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(arrays.items()):
        glyph = glyphs[index % len(glyphs)]
        xs = np.linspace(0, width - 1, values.size).astype(int)
        for x, v in zip(xs, values):
            if not np.isfinite(v):
                continue
            y = int((v - lo) / (hi - lo) * (height - 1) + 0.5)
            grid[height - 1 - y][x] = glyph

    lines = [f"{hi:10.3f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{lo:10.3f} ┤" + "".join(grid[-1]))
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(arrays)
    )
    if y_label:
        legend = f"{y_label}   {legend}"
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
