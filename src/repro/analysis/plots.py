"""Dependency-free terminal plots for examples, the CLI, and reports.

Matplotlib is not assumed (and not installed in offline reproduction
environments); these renderers cover the shapes the paper's figures
use — time series (weights, objective traces), grouped bars
(policy comparisons), and compact sparklines for tables.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_BAR_CHAR = "█"

#: Series naming convention used by ``repro.cluster.ClusterSimulator``:
#: one per-epoch series per (sweep cell, node, metric).
_CLUSTER_SERIES = re.compile(
    r"^cluster\.(?P<placement>[^.]+)\.(?P<policy>[^.]+)"
    r"\.node(?P<node>\d+)\.(?P<metric>[^.]+)$"
)


def sparkline(values: Sequence[float], lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """One-line unicode sparkline of a numeric series."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ExperimentError("cannot sparkline an empty series")
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return " " * values.size
    lo = float(finite.min()) if lo is None else lo
    hi = float(finite.max()) if hi is None else hi
    span = hi - lo
    chars = []
    for v in values:
        if not np.isfinite(v):
            chars.append(" ")
            continue
        if span <= 0:
            chars.append(_SPARK_LEVELS[len(_SPARK_LEVELS) // 2])
            continue
        level = int((v - lo) / span * (len(_SPARK_LEVELS) - 1) + 0.5)
        chars.append(_SPARK_LEVELS[min(max(level, 0), len(_SPARK_LEVELS) - 1)])
    return "".join(chars)


def cluster_node_dashboard(
    metrics,
    metric_order: Sequence[str] = ("throughput", "fairness", "occupancy"),
) -> str:
    """Per-node sparkline dashboard from cluster-sweep metric series.

    Consumes the ``cluster.<placement>.<policy>.node<N>.<metric>``
    series a :class:`~repro.cluster.simulator.ClusterSimulator` records
    into the active collector's registry: one block per sweep cell, one
    row per node, one sparkline per metric over the epochs. Within a
    cell each metric shares its scale across nodes, so an unfair
    placement shows up as visibly divergent rows.

    Args:
        metrics: a :class:`~repro.obs.MetricRegistry` (anything with
            ``items()`` yielding ``(name, series)``) or a plain
            ``{name: sequence}`` mapping.
        metric_order: metric columns to render, left to right; metrics
            absent from the data are skipped.

    Raises:
        ExperimentError: if no cluster series are present.
    """
    pairs = metrics.items() if hasattr(metrics, "items") else metrics
    cells: Dict[tuple, Dict[int, Dict[str, List[float]]]] = {}
    seen_metrics = set()
    for name, metric in pairs:
        match = _CLUSTER_SERIES.match(name)
        if not match:
            continue
        values = list(getattr(metric, "values", metric))
        if not values:
            continue
        cell = (match.group("placement"), match.group("policy"))
        node = int(match.group("node"))
        cells.setdefault(cell, {}).setdefault(node, {})[match.group("metric")] = values
        seen_metrics.add(match.group("metric"))
    if not cells:
        raise ExperimentError(
            "no cluster.<placement>.<policy>.node<N>.<metric> series to chart; "
            "run the sweep under an active TraceCollector"
        )

    columns = [m for m in metric_order if m in seen_metrics]
    columns += sorted(seen_metrics - set(columns))
    blocks = []
    for (placement, policy), nodes in sorted(cells.items()):
        # Shared per-metric scale across the cell's nodes.
        scales = {}
        for metric_name in columns:
            pooled = [v for per_node in nodes.values()
                      for v in per_node.get(metric_name, ())]
            if pooled:
                scales[metric_name] = (min(pooled), max(pooled))
        n_epochs = max(len(v) for per_node in nodes.values() for v in per_node.values())
        col_width = max(n_epochs + 7, max(len(m) for m in columns) + 1)
        header = "  node  " + "".join(m.ljust(col_width) for m in columns)
        lines = [f"[{placement} / {policy}]  ({n_epochs} epochs)", header]
        for node, per_node in sorted(nodes.items()):
            row = f"  {node:4d}  "
            for metric_name in columns:
                values = per_node.get(metric_name)
                if values is None:
                    row += "-".ljust(col_width)
                    continue
                lo, hi = scales[metric_name]
                cell_text = f"{sparkline(values, lo, hi)} {values[-1]:.2f}"
                row += cell_text.ljust(col_width)
            lines.append(row.rstrip())
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart, one labeled row per value."""
    labels = list(labels)
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ExperimentError(f"{len(labels)} labels but {len(values)} values")
    if not values:
        raise ExperimentError("nothing to chart")
    peak = max(max(values), 1e-12) if max_value is None else max_value
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(min(value / peak, 1.0) * width))
        bar = _BAR_CHAR * filled
        lines.append(f"{label.rjust(label_width)}  {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Dict[str, Sequence[float]],
    height: int = 10,
    width: int = 72,
    y_label: str = "",
) -> str:
    """Multi-series ASCII line chart (each series gets its own glyph)."""
    if not series:
        raise ExperimentError("nothing to chart")
    glyphs = "*+ox#@"
    arrays = {name: np.asarray(list(v), dtype=float) for name, v in series.items()}
    lengths = {a.size for a in arrays.values()}
    if 0 in lengths:
        raise ExperimentError("cannot chart an empty series")

    all_values = np.concatenate([a[np.isfinite(a)] for a in arrays.values()])
    if all_values.size == 0:
        raise ExperimentError("no finite values to chart")
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(arrays.items()):
        glyph = glyphs[index % len(glyphs)]
        xs = np.linspace(0, width - 1, values.size).astype(int)
        for x, v in zip(xs, values):
            if not np.isfinite(v):
                continue
            y = int((v - lo) / (hi - lo) * (height - 1) + 0.5)
            grid[height - 1 - y][x] = glyph

    lines = [f"{hi:10.3f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{lo:10.3f} ┤" + "".join(grid[-1]))
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(arrays)
    )
    if y_label:
        legend = f"{y_label}   {legend}"
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
