"""Analysis utilities: telemetry export and replication statistics."""

from repro.analysis.export import (
    engine_summary,
    engine_summary_json,
    run_summary,
    run_summary_json,
    telemetry_rows,
    telemetry_to_csv,
)
from repro.analysis.stats import (
    PairedDelta,
    ReplicatedRun,
    ReplicatedScore,
    confidence_interval,
    convergence_time_s,
    paired_deltas,
    replicate_policy,
)

__all__ = [
    "PairedDelta",
    "ReplicatedRun",
    "ReplicatedScore",
    "confidence_interval",
    "convergence_time_s",
    "paired_deltas",
    "engine_summary",
    "engine_summary_json",
    "replicate_policy",
    "run_summary",
    "run_summary_json",
    "telemetry_rows",
    "telemetry_to_csv",
]
