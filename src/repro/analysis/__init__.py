"""Analysis utilities: telemetry export and replication statistics."""

from repro.analysis.export import (
    engine_summary,
    engine_summary_json,
    run_summary,
    run_summary_json,
    telemetry_rows,
    telemetry_to_csv,
)
from repro.analysis.stats import (
    ReplicatedRun,
    ReplicatedScore,
    confidence_interval,
    convergence_time_s,
    replicate_policy,
)

__all__ = [
    "ReplicatedRun",
    "ReplicatedScore",
    "confidence_interval",
    "convergence_time_s",
    "engine_summary",
    "engine_summary_json",
    "replicate_policy",
    "run_summary",
    "run_summary_json",
    "telemetry_rows",
    "telemetry_to_csv",
]
