"""Replication statistics: multi-seed runs, confidence intervals,
convergence-time estimation.

Single runs of an online controller carry measurement-noise and
exploration variance; credible comparisons replicate over seeds. This
module provides the replication loop and the summary statistics the
examples and extension benches report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import ExperimentError
from repro.experiments.runner import RunConfig, RunResult, run_policy
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.resources.types import ResourceCatalog
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class ReplicatedScore:
    """Mean and confidence interval of a score over replications."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {(self.ci_high - self.ci_low) / 2:.3f} (n={self.n})"


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> ReplicatedScore:
    """Student-t confidence interval of the mean."""
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        raise ExperimentError("need at least two replications for a confidence interval")
    mean = float(values.mean())
    sem = float(values.std(ddof=1) / np.sqrt(values.size))
    t = scipy_stats.t.ppf(0.5 + confidence / 2.0, df=values.size - 1)
    return ReplicatedScore(
        mean=mean,
        std=float(values.std(ddof=1)),
        ci_low=mean - t * sem,
        ci_high=mean + t * sem,
        n=int(values.size),
    )


@dataclass(frozen=True)
class ReplicatedRun:
    """Replicated policy run with per-goal statistics."""

    policy_name: str
    mix_label: str
    throughput: ReplicatedScore
    fairness: ReplicatedScore
    results: Tuple[RunResult, ...]


def replicate_policy(
    policy_factory: Callable[[], PartitioningPolicy],
    mix: JobMix,
    catalog: ResourceCatalog,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    confidence: float = 0.95,
) -> ReplicatedRun:
    """Run a fresh policy instance once per seed and summarize.

    ``policy_factory`` must build a *new* (or fully reset) policy each
    call — policies are stateful.
    """
    if len(seeds) < 2:
        raise ExperimentError("replication needs at least two seeds")
    results: List[RunResult] = []
    for seed in seeds:
        policy = policy_factory()
        results.append(run_policy(policy, mix, catalog, run_config, goals, seed=seed))
    return ReplicatedRun(
        policy_name=results[0].policy_name,
        mix_label=mix.label,
        throughput=confidence_interval([r.throughput for r in results], confidence),
        fairness=confidence_interval([r.fairness for r in results], confidence),
        results=tuple(results),
    )


@dataclass(frozen=True)
class PairedDelta:
    """Per-key paired comparison ``b - a`` over common keys.

    Attributes:
        delta: summary statistics of the per-key differences.
        n_common: keys present on both sides (the paired sample size).
        n_only_a / n_only_b: keys dropped because they appear on one
            side only (e.g. a job admitted under one placement but
            rejected under the other) — reported rather than silently
            discarded, since heavy attrition undermines the pairing.
    """

    delta: ReplicatedScore
    n_common: int
    n_only_a: int
    n_only_b: int


def paired_deltas(
    a: Mapping[Any, float],
    b: Mapping[Any, float],
    confidence: float = 0.95,
) -> PairedDelta:
    """Confidence interval on the mean per-key difference ``b - a``.

    For cluster sweeps the natural inputs are per-job mean speedups
    (:meth:`~repro.cluster.simulator.ClusterResult.job_mean_speedups`)
    from two cells sharing one trace: because job ids are stable across
    cells, each job is its own control, and the paired differences
    cancel the job-identity variance that makes unpaired comparisons of
    small fleets inconclusive.

    Degenerate inputs stay well-formed rather than raising mid-report:
    a single common key (a one-job trace) yields a zero-width interval
    at the observed difference with ``n=1``, and identical per-key
    differences (zero variance — e.g. both cells produced bit-identical
    runs) collapse the interval to the mean. Only an empty intersection
    is an error, since there is nothing to pair at all.
    """
    common = sorted(set(a) & set(b), key=str)
    if not common:
        raise ExperimentError("paired comparison needs common keys, got 0")
    deltas = [float(b[key]) - float(a[key]) for key in common]
    if len(deltas) == 1:
        # One pair: the difference is exact, the uncertainty unknown.
        # A zero-width interval reports the observation without
        # pretending to a spread no statistic can estimate from n=1.
        score = ReplicatedScore(
            mean=deltas[0], std=0.0, ci_low=deltas[0], ci_high=deltas[0], n=1
        )
    else:
        score = confidence_interval(deltas, confidence)
    return PairedDelta(
        delta=score,
        n_common=len(common),
        n_only_a=len(set(a) - set(b)),
        n_only_b=len(set(b) - set(a)),
    )


def convergence_time_s(
    result: RunResult,
    fraction_of_final: float = 0.95,
    tail_fraction: float = 0.25,
) -> float:
    """Time at which the weighted objective first reaches its final level.

    The final level is the mean objective over the run's last
    ``tail_fraction``; convergence is the first instant a 1-second
    moving average reaches ``fraction_of_final`` of it. Returns the
    run duration if the run never converges.
    """
    telemetry = result.telemetry
    objective = 0.5 * telemetry.series("throughput") + 0.5 * telemetry.series("fairness")
    times = telemetry.series("time")
    tail = max(1, int(round(len(objective) * tail_fraction)))
    final_level = float(np.mean(objective[-tail:]))
    if final_level <= 0:
        raise ExperimentError("degenerate run: non-positive final objective")

    window = max(1, round(1.0 / result.run_config.interval_s))
    smoothed = np.convolve(objective, np.ones(window) / window, mode="valid")
    threshold = fraction_of_final * final_level
    hits = np.nonzero(smoothed >= threshold)[0]
    if hits.size == 0:
        return float(times[-1])
    return float(times[hits[0] + window - 1])
