"""Telemetry export: turn runs into plain data for external analysis.

Downstream users typically want run telemetry as flat records (CSV) or
structured summaries (JSON-compatible dicts) to feed their own
plotting pipelines; this module provides both without adding any
dependency beyond the standard library.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List

from repro.engine import ExecutionEngine
from repro.experiments.runner import RunResult
from repro.system.telemetry import TelemetryLog


def telemetry_rows(telemetry: TelemetryLog) -> List[Dict[str, Any]]:
    """One flat dict per control interval.

    Columns: time, throughput, fairness, per-job ips/speedup, weights
    (when present), plus every policy-diagnostic key found in the
    records' ``extra`` dicts.
    """
    rows = []
    for record in telemetry:
        row: Dict[str, Any] = {
            "time_s": float(record.time_s),
            "throughput": float(record.throughput),
            "fairness": float(record.fairness),
        }
        for j, (ips, iso) in enumerate(zip(record.ips, record.isolation_ips)):
            row[f"ips_job{j}"] = float(ips)
            row[f"speedup_job{j}"] = float(ips) / float(iso)
        if record.weights is not None:
            row["weight_throughput"] = float(record.weights[0])
            row["weight_fairness"] = float(record.weights[1])
        for key, value in record.extra.items():
            row[key] = float(value) if isinstance(value, (int, float)) else value
        rows.append(row)
    return rows


def telemetry_to_csv(telemetry: TelemetryLog) -> str:
    """Render a telemetry log as CSV text (header from the union of keys)."""
    rows = telemetry_rows(telemetry)
    if not rows:
        return ""
    fields: List[str] = []
    for row in rows:
        for key in row:
            if key not in fields:
                fields.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def run_summary(result: RunResult) -> Dict[str, Any]:
    """JSON-compatible summary of one policy run."""
    scored = result.scored
    return {
        "policy": result.policy_name,
        "mix": result.mix_label,
        "duration_s": result.run_config.duration_s,
        "interval_s": result.run_config.interval_s,
        "intervals": len(result.telemetry),
        "throughput": float(result.throughput),
        "fairness": float(result.fairness),
        "worst_job_speedup": float(result.worst_job_speedup),
        "mean_job_speedups": [float(s) for s in scored.mean_job_speedups()],
    }


def run_summary_json(result: RunResult, indent: int = 2) -> str:
    """The run summary rendered as a JSON string."""
    return json.dumps(run_summary(result), indent=indent)


def engine_summary(engine: ExecutionEngine) -> Dict[str, Any]:
    """JSON-compatible snapshot of an engine's counters and cache state."""
    summary: Dict[str, Any] = {"workers": engine.workers, **engine.stats.to_dict()}
    if engine.cache is not None:
        summary["cache"] = {"root": str(engine.cache.root), **engine.cache.stats()}
    return summary


def engine_summary_json(engine: ExecutionEngine, indent: int = 2) -> str:
    """The engine summary rendered as a JSON string."""
    return json.dumps(engine_summary(engine), indent=indent)
