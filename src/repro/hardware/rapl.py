"""Simulated RAPL power capping.

The paper lists power (RAPL) among the partitionable resources and the
conclusion notes SATORI "can effectively handle ... power-cap
resources". The main evaluation partitions three resources; power is
the extension point, so this controller exists for the extensibility
experiments and the energy-goal example.

RAPL exposes a package power limit in units of 1/8 W written to
``MSR_PKG_POWER_LIMIT``. Per-job power budgets are enforced here as
logical shares of the package cap (real RAPL caps the package; per-job
attribution is done in software, as in the paper's setup).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import HardwareError
from repro.hardware.msr import MSR_PKG_POWER_LIMIT, MsrFile

#: RAPL power unit: 1/8 watt.
POWER_UNIT_WATTS = 0.125


class PowerCapController:
    """Package power cap plus logical per-job power-share accounting."""

    def __init__(self, msr: MsrFile, tdp_watts: float = 85.0):
        if tdp_watts <= 0:
            raise HardwareError(f"tdp_watts must be positive, got {tdp_watts}")
        self._msr = msr
        self._tdp_watts = tdp_watts
        self._job_units: Dict[int, int] = {}
        self.set_package_limit(tdp_watts)

    @property
    def tdp_watts(self) -> float:
        return self._tdp_watts

    def set_package_limit(self, watts: float) -> None:
        """Program the package power cap.

        Raises:
            HardwareError: if the cap is non-positive or above TDP.
        """
        if not 0 < watts <= self._tdp_watts:
            raise HardwareError(
                f"MSR_PKG_POWER_LIMIT: package limit {watts} W outside "
                f"(0, {self._tdp_watts}] W"
            )
        self._msr.write(MSR_PKG_POWER_LIMIT, int(round(watts / POWER_UNIT_WATTS)))

    def package_limit(self) -> float:
        """Read back the package power cap in watts."""
        return self._msr.read(MSR_PKG_POWER_LIMIT) * POWER_UNIT_WATTS

    def apply_partition(self, unit_counts: Sequence[int]) -> List[int]:
        """Record per-job power-unit budgets (software attribution).

        Returns:
            The per-job unit counts as applied.

        Raises:
            HardwareError: if any count is below 1.
        """
        if any(count < 1 for count in unit_counts):
            raise HardwareError(
                f"MSR_PKG_POWER_LIMIT: every job needs >= 1 power unit, "
                f"got {list(unit_counts)}"
            )
        self._job_units = {job: int(count) for job, count in enumerate(unit_counts)}
        return list(self._job_units.values())

    def units_of(self, job: int) -> int:
        """Power units currently budgeted to ``job``."""
        try:
            return self._job_units[job]
        except KeyError:
            raise HardwareError(
                f"MSR_PKG_POWER_LIMIT: job {job} has no power budget set"
            ) from None
