"""Simulated Model-Specific Register (MSR) file.

The paper's SATORI deployment actuates Intel CAT and MBA "via setting
Model Specific Registers (MSRs)" (Sec. IV). The reproduction keeps the
same layering: the CAT/MBA/RAPL actuators translate partitioning
decisions into register writes against this simulated MSR file, and
the simulated server reads its effective allocation state back out of
the registers. This preserves the real failure modes (invalid masks,
out-of-range classes of service) and makes the actuator layer testable
in isolation.

Register addresses follow the Intel SDM:

* ``0xC8F`` ``IA32_PQR_ASSOC`` (per logical core): the class of
  service (COS) the core's traffic is tagged with.
* ``0xC90 + n`` ``IA32_L3_QOS_MASK_n``: the LLC way bitmask of COS n.
* ``0xD50 + n`` ``IA32_L2_QOS_EXT_BW_THRTL_n``: the MBA throttle value
  of COS n (percent slowdown).
* ``0x610`` ``MSR_PKG_POWER_LIMIT``: the RAPL package power cap.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import HardwareError

IA32_PQR_ASSOC = 0xC8F
IA32_L3_QOS_MASK_BASE = 0xC90
IA32_L2_QOS_EXT_BW_THRTL_BASE = 0xD50
MSR_PKG_POWER_LIMIT = 0x610


class MsrFile:
    """A per-package register file keyed by (register, sub-index).

    ``sub_index`` disambiguates per-core registers (e.g. each logical
    core has its own ``IA32_PQR_ASSOC``); package-wide registers use
    sub-index 0.
    """

    def __init__(self) -> None:
        self._registers: Dict[Tuple[int, int], int] = {}

    def write(self, register: int, value: int, sub_index: int = 0) -> None:
        """Write ``value`` to a register.

        Raises:
            HardwareError: for negative addresses, sub-indices, or
                values (MSRs are unsigned 64-bit).
        """
        if register < 0 or sub_index < 0:
            raise HardwareError(f"MSR {register:#x}[{sub_index}]: invalid address")
        if not 0 <= value < 2**64:
            raise HardwareError(
                f"MSR {register:#x}[{sub_index}]: value {value} outside the "
                f"unsigned 64-bit range"
            )
        self._registers[(register, sub_index)] = value

    def read(self, register: int, sub_index: int = 0) -> int:
        """Read a register; unwritten registers read as 0."""
        return self._registers.get((register, sub_index), 0)

    def __iter__(self) -> Iterator[Tuple[Tuple[int, int], int]]:
        return iter(sorted(self._registers.items()))

    def __len__(self) -> int:
        return len(self._registers)
