"""Simulated core-affinity control (``taskset``).

The paper pins each co-located job to a disjoint set of physical cores
with ``taskset``. This module reproduces that interface: a job's
affinity is a CPU mask over the machine's cores, and partitions are
disjoint left-to-right packings of the requested core counts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.errors import HardwareError


class CoreAffinityController:
    """Tracks per-job CPU affinity masks over ``n_cores`` physical cores."""

    def __init__(self, n_cores: int):
        if n_cores < 1:
            raise HardwareError(f"n_cores must be >= 1, got {n_cores}")
        self._n_cores = n_cores
        self._affinities: Dict[int, Set[int]] = {}

    @property
    def n_cores(self) -> int:
        return self._n_cores

    def set_affinity(self, job: int, cores: Sequence[int]) -> None:
        """Pin ``job`` to the given core ids (like ``taskset -c``).

        Raises:
            HardwareError: if the core set is empty or references
                nonexistent cores.
        """
        core_set = set(int(c) for c in cores)
        if not core_set:
            raise HardwareError(f"taskset: job {job} needs at least one core")
        bad = sorted(c for c in core_set if not 0 <= c < self._n_cores)
        if bad:
            raise HardwareError(
                f"taskset: cores {bad} out of range [0, {self._n_cores})"
            )
        self._affinities[job] = core_set

    def affinity_of(self, job: int) -> Set[int]:
        """The core ids ``job`` is currently pinned to."""
        try:
            return set(self._affinities[job])
        except KeyError:
            raise HardwareError(f"taskset: job {job} has no affinity set") from None

    def core_count_of(self, job: int) -> int:
        """Number of cores ``job`` is pinned to."""
        return len(self.affinity_of(job))

    def apply_partition(self, core_counts: Sequence[int]) -> List[Set[int]]:
        """Pin jobs 0..n-1 to disjoint core ranges, packed left to right.

        Returns:
            The per-job core sets.

        Raises:
            HardwareError: if counts exceed the core total or any count
                is below 1.
        """
        if any(count < 1 for count in core_counts):
            raise HardwareError(
                f"taskset: every job needs >= 1 core, got {list(core_counts)}"
            )
        if sum(core_counts) > self._n_cores:
            raise HardwareError(
                f"taskset: core counts {list(core_counts)} exceed "
                f"the {self._n_cores} available cores"
            )
        assignments = []
        next_core = 0
        for job, count in enumerate(core_counts):
            cores = set(range(next_core, next_core + count))
            self.set_affinity(job, cores)
            assignments.append(cores)
            next_core += count
        return assignments
