"""Simulated ``pqos`` performance monitoring.

The paper samples per-workload instructions-per-second with the
``pqos`` utility at 10 Hz (Sec. IV). This monitor reproduces that
measurement path: it receives the substrate's *true* per-job rates
each interval and reports noisy sampled counters — IPS, LLC occupancy,
and local memory bandwidth — the way Intel RDT event counters would.

Measurement noise is multiplicative lognormal (a few percent), which
matches the jitter of hardware counter sampling and is what makes the
Gaussian-process noise term in SATORI's proxy model meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import HardwareError
from repro.rng import SeedLike, make_rng

#: The paper's sampling rate: 10 Hz.
DEFAULT_SAMPLE_HZ = 10.0


@dataclass(frozen=True)
class PqosSample:
    """One monitoring sample for one job over one interval."""

    job: int
    interval_s: float
    instructions: float
    ips: float
    llc_occupancy_bytes: float
    memory_bandwidth_bytes_s: float


class PqosMonitor:
    """Produces noisy per-job monitoring samples from true rates.

    Args:
        noise_sigma: standard deviation of the lognormal multiplicative
            measurement noise (0.02 means roughly +/-2 % jitter).
        sample_hz: nominal sampling rate; recorded on samples so
            consumers can check they honour the 10 Hz methodology.
        outlier_rate: probability per job per interval of a counter
            glitch — a grossly wrong sample, as real RDT monitoring
            occasionally produces on RMID reassignment or overflow.
            Defaults to 0 (clean monitoring); robustness tests and
            fault-injection experiments raise it.
        outlier_scale: multiplicative range of a glitch; the faulty
            sample is the true value scaled by a factor drawn
            log-uniformly from ``[1/outlier_scale, outlier_scale]``.
        rng: seed or generator for the noise stream.
    """

    def __init__(
        self,
        noise_sigma: float = 0.02,
        sample_hz: float = DEFAULT_SAMPLE_HZ,
        outlier_rate: float = 0.0,
        outlier_scale: float = 5.0,
        rng: SeedLike = None,
    ):
        if noise_sigma < 0:
            raise HardwareError(f"noise_sigma must be >= 0, got {noise_sigma}")
        if sample_hz <= 0:
            raise HardwareError(f"sample_hz must be positive, got {sample_hz}")
        if not 0.0 <= outlier_rate < 1.0:
            raise HardwareError(f"outlier_rate must be in [0, 1), got {outlier_rate}")
        if outlier_scale < 1.0:
            raise HardwareError(f"outlier_scale must be >= 1, got {outlier_scale}")
        self._noise_sigma = noise_sigma
        self._sample_hz = sample_hz
        self._outlier_rate = outlier_rate
        self._outlier_scale = outlier_scale
        self._rng = make_rng(rng)

    @property
    def sample_interval_s(self) -> float:
        """Length of one nominal sampling interval in seconds."""
        return 1.0 / self._sample_hz

    @property
    def rng(self) -> np.random.Generator:
        """The monitor's private noise stream.

        Exposed for snapshot/restore: resuming a server bit-identically
        requires resuming this stream at its exact position
        (:func:`repro.rng.rng_state` / :func:`repro.rng.rng_from_state`).
        """
        return self._rng

    @rng.setter
    def rng(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def observe(
        self,
        true_ips: Sequence[float],
        interval_s: float,
        llc_occupancy_bytes: Sequence[float] = None,
        memory_bandwidth_bytes_s: Sequence[float] = None,
    ) -> List[PqosSample]:
        """Sample one interval: true rates in, noisy counters out.

        Args:
            true_ips: the substrate's true per-job IPS this interval.
            interval_s: interval length in seconds.
            llc_occupancy_bytes: optional true per-job LLC occupancy.
            memory_bandwidth_bytes_s: optional true per-job bandwidth.
        """
        if interval_s <= 0:
            raise HardwareError(f"interval must be positive, got {interval_s}")
        n = len(true_ips)
        occupancy = llc_occupancy_bytes if llc_occupancy_bytes is not None else [0.0] * n
        bandwidth = memory_bandwidth_bytes_s if memory_bandwidth_bytes_s is not None else [0.0] * n
        if len(occupancy) != n or len(bandwidth) != n:
            raise HardwareError("per-job monitoring inputs must have equal lengths")

        samples = []
        for job in range(n):
            noise = self._noise_factor()
            if self._outlier_rate and self._rng.random() < self._outlier_rate:
                noise *= self._outlier_factor()
            ips = max(0.0, float(true_ips[job]) * noise)
            samples.append(
                PqosSample(
                    job=job,
                    interval_s=interval_s,
                    instructions=ips * interval_s,
                    ips=ips,
                    llc_occupancy_bytes=float(occupancy[job]) * self._noise_factor(),
                    memory_bandwidth_bytes_s=float(bandwidth[job]) * self._noise_factor(),
                )
            )
        return samples

    def _noise_factor(self) -> float:
        if self._noise_sigma == 0:
            return 1.0
        return float(self._rng.lognormal(mean=0.0, sigma=self._noise_sigma))

    def _outlier_factor(self) -> float:
        """A glitch factor, log-uniform in [1/scale, scale]."""
        log_scale = np.log(self._outlier_scale)
        return float(np.exp(self._rng.uniform(-log_scale, log_scale)))
