"""Simulated Intel Memory Bandwidth Allocation (MBA).

MBA throttles the request rate of each class of service in steps of
10 %: a programmed throttle value of 0 means unthrottled, 90 means the
COS is limited to roughly 10 % of peak bandwidth. The reproduction
maps a partitioning policy's per-job *bandwidth unit* counts onto
throttle values — job with ``u`` of ``U`` units is throttled to
``u / U`` of the machine bandwidth — mirroring how the paper's service
uses MBA to enforce bandwidth shares.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import HardwareError
from repro.hardware.msr import IA32_L2_QOS_EXT_BW_THRTL_BASE, MsrFile

#: Hardware throttle granularity, percent.
THROTTLE_STEP = 10


class MemoryBandwidthAllocator:
    """Programs per-COS MBA throttle values into the MSR file.

    Args:
        msr: the register file to program.
        total_units: number of bandwidth units the server exposes to
            partitioning policies (10 in the paper's setup, matching
            MBA's 10 % granularity).
        n_cos: classes of service supported (8 for MBA on Skylake).
    """

    def __init__(self, msr: MsrFile, total_units: int = 10, n_cos: int = 8):
        if total_units < 1:
            raise HardwareError(f"total_units must be >= 1, got {total_units}")
        if n_cos < 1:
            raise HardwareError(f"n_cos must be >= 1, got {n_cos}")
        self._msr = msr
        self._total_units = total_units
        self._n_cos = n_cos

    @property
    def total_units(self) -> int:
        return self._total_units

    @property
    def n_cos(self) -> int:
        return self._n_cos

    def set_throttle(self, cos: int, throttle_percent: int) -> None:
        """Program a raw throttle value (percent slowdown) for a COS.

        Raises:
            HardwareError: if the COS is out of range or the value is
                not a multiple of the 10 % hardware step in [0, 90].
        """
        self._check_cos(cos)
        if not 0 <= throttle_percent <= 100 - THROTTLE_STEP:
            raise HardwareError(
                f"IA32_L2_QOS_EXT_BW_THRTL[{cos}]: throttle {throttle_percent}% "
                f"out of [0, {100 - THROTTLE_STEP}]"
            )
        if throttle_percent % THROTTLE_STEP:
            raise HardwareError(
                f"IA32_L2_QOS_EXT_BW_THRTL[{cos}]: throttle must be a multiple "
                f"of {THROTTLE_STEP}%, got {throttle_percent}%"
            )
        self._msr.write(IA32_L2_QOS_EXT_BW_THRTL_BASE + cos, throttle_percent)

    def throttle_of(self, cos: int) -> int:
        """Read back the throttle value programmed for a COS."""
        self._check_cos(cos)
        return self._msr.read(IA32_L2_QOS_EXT_BW_THRTL_BASE + cos)

    def units_of(self, cos: int) -> int:
        """Bandwidth units currently granted to a COS."""
        throttle = self.throttle_of(cos)
        share = (100 - throttle) / 100.0
        return max(1, round(share * self._total_units))

    def apply_partition(self, unit_counts: Sequence[int]) -> List[int]:
        """Program throttles so job ``i`` gets ``unit_counts[i]`` units.

        Returns:
            The programmed throttle percentages, one per job.

        Raises:
            HardwareError: if counts exceed the unit total, any count
                is below 1, or there are more jobs than classes of
                service.
        """
        if len(unit_counts) > self._n_cos:
            raise HardwareError(
                f"IA32_L2_QOS_EXT_BW_THRTL: {len(unit_counts)} jobs exceed "
                f"the {self._n_cos} classes of service"
            )
        if any(count < 1 for count in unit_counts):
            raise HardwareError(
                f"IA32_L2_QOS_EXT_BW_THRTL: every COS needs >= 1 bandwidth unit, "
                f"got {list(unit_counts)}"
            )
        if sum(unit_counts) > self._total_units:
            raise HardwareError(
                f"IA32_L2_QOS_EXT_BW_THRTL: unit counts {list(unit_counts)} exceed "
                f"the {self._total_units} available units"
            )
        throttles = []
        for cos, count in enumerate(unit_counts):
            share = count / self._total_units
            throttle = 100 - int(round(share * 100))
            throttle -= throttle % THROTTLE_STEP
            throttle = min(max(throttle, 0), 100 - THROTTLE_STEP)
            self.set_throttle(cos, throttle)
            throttles.append(throttle)
        return throttles

    def _check_cos(self, cos: int) -> None:
        if not 0 <= cos < self._n_cos:
            raise HardwareError(
                f"IA32_L2_QOS_EXT_BW_THRTL: COS {cos} out of range [0, {self._n_cos})"
            )
