"""Simulated Intel Cache Allocation Technology (CAT).

CAT partitions the LLC by assigning each class of service (COS) a
bitmask over the cache ways; a job's memory traffic can only allocate
into ways whose bit is set for its COS. Real CAT requires the mask to
be a contiguous run of set bits and non-empty — both constraints are
enforced here so policies cannot make moves impossible on hardware.

The reproduction assigns one COS per co-located job and converts a
per-job way *count* into non-overlapping contiguous masks laid out
left to right, which is how the paper's user-space service (and tools
such as ``pqos -e``) program exclusive partitions.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import HardwareError
from repro.hardware.msr import IA32_L3_QOS_MASK_BASE, MsrFile


def is_contiguous_mask(mask: int) -> bool:
    """Whether ``mask`` is one non-empty contiguous run of set bits."""
    if mask <= 0:
        return False
    shifted = mask >> (mask & -mask).bit_length() - 1
    return (shifted & (shifted + 1)) == 0


class CacheAllocationTechnology:
    """Programs per-COS LLC way masks into the MSR file.

    Args:
        msr: the register file to program.
        n_ways: number of allocatable LLC ways.
        n_cos: number of classes of service the hardware supports
            (Skylake server exposes 16 for L3 CAT).
    """

    def __init__(self, msr: MsrFile, n_ways: int, n_cos: int = 16):
        if n_ways < 1:
            raise HardwareError(f"n_ways must be >= 1, got {n_ways}")
        if n_cos < 1:
            raise HardwareError(f"n_cos must be >= 1, got {n_cos}")
        self._msr = msr
        self._n_ways = n_ways
        self._n_cos = n_cos

    @property
    def n_ways(self) -> int:
        return self._n_ways

    @property
    def n_cos(self) -> int:
        return self._n_cos

    def set_mask(self, cos: int, mask: int) -> None:
        """Program a raw way bitmask for one COS.

        Raises:
            HardwareError: if the COS is out of range, the mask has
                bits beyond the last way, or the mask is empty or
                non-contiguous (real CAT rejects those with ``#GP``).
        """
        self._check_cos(cos)
        if mask >> self._n_ways:
            raise HardwareError(
                f"IA32_L3_QOS_MASK[{cos}]: mask {mask:#x} has bits beyond "
                f"the {self._n_ways} available ways"
            )
        if not is_contiguous_mask(mask):
            raise HardwareError(
                f"IA32_L3_QOS_MASK[{cos}]: CAT requires a non-empty contiguous "
                f"way mask, got {mask:#x}"
            )
        self._msr.write(IA32_L3_QOS_MASK_BASE + cos, mask)

    def mask_of(self, cos: int) -> int:
        """Read back the way mask currently programmed for a COS."""
        self._check_cos(cos)
        return self._msr.read(IA32_L3_QOS_MASK_BASE + cos)

    def ways_of(self, cos: int) -> int:
        """Number of ways currently granted to a COS."""
        return bin(self.mask_of(cos)).count("1")

    def apply_partition(self, way_counts: Sequence[int]) -> List[int]:
        """Program exclusive contiguous partitions for jobs 0..n-1.

        Job ``i`` (COS ``i``) receives ``way_counts[i]`` ways, packed
        left to right without overlap.

        Returns:
            The programmed masks, one per job.

        Raises:
            HardwareError: if counts exceed the way total, any count is
                below 1, or there are more jobs than classes of service.
        """
        if len(way_counts) > self._n_cos:
            raise HardwareError(
                f"IA32_L3_QOS_MASK: {len(way_counts)} jobs exceed "
                f"the {self._n_cos} classes of service"
            )
        if any(count < 1 for count in way_counts):
            raise HardwareError(
                f"IA32_L3_QOS_MASK: every COS needs >= 1 way, got {list(way_counts)}"
            )
        if sum(way_counts) > self._n_ways:
            raise HardwareError(
                f"IA32_L3_QOS_MASK: way counts {list(way_counts)} exceed "
                f"the {self._n_ways} available ways"
            )
        masks = []
        offset = 0
        for cos, count in enumerate(way_counts):
            mask = ((1 << count) - 1) << offset
            self.set_mask(cos, mask)
            masks.append(mask)
            offset += count
        return masks

    def _check_cos(self, cos: int) -> None:
        if not 0 <= cos < self._n_cos:
            raise HardwareError(
                f"IA32_L3_QOS_MASK: COS {cos} out of range [0, {self._n_cos})"
            )
