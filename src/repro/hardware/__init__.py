"""Simulated hardware substrate: MSRs, CAT, MBA, affinity, RAPL, pqos."""

from repro.hardware.affinity import CoreAffinityController
from repro.hardware.cat import CacheAllocationTechnology, is_contiguous_mask
from repro.hardware.mba import THROTTLE_STEP, MemoryBandwidthAllocator
from repro.hardware.msr import (
    IA32_L2_QOS_EXT_BW_THRTL_BASE,
    IA32_L3_QOS_MASK_BASE,
    IA32_PQR_ASSOC,
    MSR_PKG_POWER_LIMIT,
    MsrFile,
)
from repro.hardware.pqos import DEFAULT_SAMPLE_HZ, PqosMonitor, PqosSample
from repro.hardware.rapl import POWER_UNIT_WATTS, PowerCapController

__all__ = [
    "CacheAllocationTechnology",
    "CoreAffinityController",
    "DEFAULT_SAMPLE_HZ",
    "IA32_L2_QOS_EXT_BW_THRTL_BASE",
    "IA32_L3_QOS_MASK_BASE",
    "IA32_PQR_ASSOC",
    "MSR_PKG_POWER_LIMIT",
    "MemoryBandwidthAllocator",
    "MsrFile",
    "POWER_UNIT_WATTS",
    "PowerCapController",
    "PqosMonitor",
    "PqosSample",
    "THROTTLE_STEP",
    "is_contiguous_mask",
]
