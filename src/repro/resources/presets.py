"""Server presets: catalogs for known partitionable CPUs.

The paper's testbed is a 10-core Skylake Xeon; reproductions on other
CAT/MBA-capable parts want matching catalogs. Capacities follow the
public specifications (LLC size / way count) and conservative
sustained-bandwidth figures under many-core co-location. Unit counts
equal the hardware's actual allocation granularity: CAT allocates
whole ways, MBA in 10 % throttle steps.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SpaceError
from repro.resources.types import Resource, ResourceCatalog, ResourceKind

_MB = float(2**20)

#: name -> (cores, llc_ways, llc_bytes, bandwidth_units, bandwidth_bytes_s)
_PRESETS: Dict[str, tuple] = {
    # The paper's testbed class: 10-core Skylake-SP, 13.75 MB LLC.
    "skylake-sp-10": (10, 11, 13.75 * _MB, 10, 12e9),
    # Larger Skylake-SP part: 28 cores, 38.5 MB LLC.
    "skylake-sp-28": (28, 11, 38.5 * _MB, 10, 40e9),
    # Cascade Lake refresh, 24 cores, 35.75 MB LLC.
    "cascadelake-24": (24, 11, 35.75 * _MB, 10, 36e9),
    # Broadwell-EP (pre-MBA; bandwidth partitioning emulated), 20-way LLC.
    "broadwell-ep-16": (16, 20, 40.0 * _MB, 10, 24e9),
    # AMD Milan with its L3 QoS extension, per-CCX 32 MB L3.
    "milan-ccx-8": (8, 16, 32.0 * _MB, 10, 20e9),
}


def preset_names() -> tuple:
    """Names accepted by :func:`preset_catalog`."""
    return tuple(sorted(_PRESETS))


def preset_catalog(name: str) -> ResourceCatalog:
    """Build the resource catalog for a named server preset.

    Raises:
        SpaceError: for unknown preset names.
    """
    try:
        cores, ways, llc_bytes, bw_units, bw_bytes = _PRESETS[name]
    except KeyError:
        raise SpaceError(
            f"unknown server preset {name!r}; available: {', '.join(preset_names())}"
        ) from None
    return ResourceCatalog(
        [
            Resource(ResourceKind.CORES, cores, unit_capacity=1.0),
            Resource(ResourceKind.LLC_WAYS, ways, unit_capacity=llc_bytes / ways),
            Resource(
                ResourceKind.MEMORY_BANDWIDTH, bw_units, unit_capacity=bw_bytes / bw_units
            ),
        ]
    )
