"""Resource partitioning configurations.

A *configuration* (Sec. II of the paper) assigns every co-located job a
unit count for each partitioned resource. Configurations are immutable
and hashable so they can be used as cache keys by the Oracle and
deduplicated by search policies.

A configuration may cover only a subset of the server's resources: a
resource absent from the configuration is *shared* (unpartitioned) and
the co-location simulator applies its contention model to it instead.
This is how single-resource policies such as dCAT (LLC only) and
dual-resource policies such as CoPart (LLC + memory bandwidth) are
expressed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.resources.types import ResourceCatalog


class Configuration:
    """An immutable assignment of resource units to jobs.

    Args:
        allocations: mapping from resource name to the per-job unit
            counts, e.g. ``{"cores": (3, 3, 4), "llc_ways": (2, 4, 4)}``.
            Every tuple must have the same length (the number of jobs).
    """

    __slots__ = ("_allocations", "_n_jobs", "_hash")

    def __init__(self, allocations: Mapping[str, Sequence[int]]):
        if not allocations:
            raise ConfigurationError("a configuration needs at least one resource")
        normalized: Dict[str, Tuple[int, ...]] = {}
        n_jobs = None
        for name, units in allocations.items():
            units = tuple(int(u) for u in units)
            if n_jobs is None:
                n_jobs = len(units)
            elif len(units) != n_jobs:
                raise ConfigurationError(
                    f"resource {name!r} allocates to {len(units)} jobs, expected {n_jobs}"
                )
            if any(u < 0 for u in units):
                raise ConfigurationError(f"negative unit count in {name!r}: {units}")
            normalized[name] = units
        if n_jobs == 0:
            raise ConfigurationError("a configuration needs at least one job")
        self._allocations = dict(sorted(normalized.items()))
        self._n_jobs = int(n_jobs)
        self._hash = hash(tuple(self._allocations.items()))

    # -- basic protocol ------------------------------------------------

    @property
    def n_jobs(self) -> int:
        """Number of co-located jobs this configuration covers."""
        return self._n_jobs

    @property
    def resource_names(self) -> Tuple[str, ...]:
        """Names of the resources this configuration partitions (sorted)."""
        return tuple(self._allocations)

    def units(self, resource: str) -> Tuple[int, ...]:
        """Per-job unit counts for ``resource``.

        Raises:
            ConfigurationError: if the resource is not partitioned here.
        """
        try:
            return self._allocations[resource]
        except KeyError:
            raise ConfigurationError(
                f"resource {resource!r} is not partitioned by this configuration "
                f"(has {self.resource_names})"
            ) from None

    def partitions(self, resource: str) -> bool:
        """Whether this configuration partitions ``resource``."""
        return resource in self._allocations

    def job_allocation(self, job_index: int) -> Dict[str, int]:
        """Unit counts of every partitioned resource for one job."""
        if not 0 <= job_index < self._n_jobs:
            raise ConfigurationError(f"job index {job_index} out of range [0, {self._n_jobs})")
        return {name: units[job_index] for name, units in self._allocations.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._allocations == other._allocations

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={units}" for name, units in self._allocations.items())
        return f"Configuration({inner})"

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, List[int]]:
        """JSON-compatible mapping of resource name to per-job units."""
        from repro.serialize import mapping_to_dict

        return mapping_to_dict(self._allocations)

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[int]]) -> "Configuration":
        """Rebuild a configuration from :meth:`to_dict` output."""
        return cls(data)

    # -- transformations -----------------------------------------------

    def replace(self, resource: str, units: Sequence[int]) -> "Configuration":
        """Return a copy with one resource's allocation replaced."""
        allocations = dict(self._allocations)
        allocations[resource] = tuple(int(u) for u in units)
        return Configuration(allocations)

    def move_unit(self, resource: str, donor: int, receiver: int) -> "Configuration":
        """Return a copy with one unit of ``resource`` moved between jobs.

        This is the elementary step of donor/receiver policies (dCAT,
        CoPart) and of PARTIES-style gradient descent.
        """
        units = list(self.units(resource))
        if donor == receiver:
            raise ConfigurationError("donor and receiver must differ")
        if units[donor] <= 0:
            raise ConfigurationError(f"job {donor} has no {resource!r} units to donate")
        units[donor] -= 1
        units[receiver] += 1
        return self.replace(resource, units)

    def restrict(self, resource_names: Iterable[str]) -> "Configuration":
        """Return a copy partitioning only ``resource_names``."""
        names = list(resource_names)
        return Configuration({name: self.units(name) for name in names})

    # -- numeric views ---------------------------------------------------

    def as_vector(self, resource_order: Sequence[str] = ()) -> np.ndarray:
        """Flatten to a float vector: jobs-major within each resource.

        Args:
            resource_order: resource names defining the coordinate
                order; defaults to this configuration's sorted names.

        The 15-dimensional vectors of the paper's Fig. 15 (5 jobs x 3
        resources) are produced this way.
        """
        order = tuple(resource_order) or self.resource_names
        parts = [self.units(name) for name in order]
        return np.asarray([u for part in parts for u in part], dtype=float)

    def shares(self, catalog: ResourceCatalog) -> Dict[str, Tuple[float, ...]]:
        """Per-job fractional shares of each partitioned resource."""
        result = {}
        for name in self.resource_names:
            total = catalog.get(name).units
            result[name] = tuple(u / total for u in self.units(name))
        return result

    def validate(self, catalog: ResourceCatalog) -> None:
        """Check this configuration against a catalog.

        Verifies that every partitioned resource exists, unit counts
        sum to the resource total, and each job receives at least the
        resource's ``min_units``.

        Raises:
            ConfigurationError: on any violation.
        """
        for name in self.resource_names:
            resource = catalog.get(name)
            units = self.units(name)
            if sum(units) != resource.units:
                raise ConfigurationError(
                    f"{name!r} allocates {sum(units)} units, server has {resource.units}"
                )
            if any(u < resource.min_units for u in units):
                raise ConfigurationError(
                    f"{name!r} allocation {units} violates min_units={resource.min_units}"
                )


def equal_partition(catalog: ResourceCatalog, n_jobs: int) -> Configuration:
    """The paper's ``S_init``: every resource divided as equally as possible.

    When units do not divide evenly the remainder is given to the
    lowest-indexed jobs, one extra unit each.
    """
    if n_jobs < 1:
        raise ConfigurationError(f"need at least one job, got {n_jobs}")
    allocations = {}
    for resource in catalog:
        if resource.units < n_jobs * max(resource.min_units, 1):
            raise ConfigurationError(
                f"cannot split {resource.units} units of {resource.name!r} among {n_jobs} jobs"
            )
        base, extra = divmod(resource.units, n_jobs)
        allocations[resource.name] = tuple(base + (1 if j < extra else 0) for j in range(n_jobs))
    return Configuration(allocations)


def configuration_distance(a: Configuration, b: Configuration) -> float:
    """Euclidean distance between two configurations (paper Fig. 15).

    Both configurations must partition the same resources for the same
    number of jobs; the distance is taken over the flattened unit-count
    vectors.
    """
    if a.resource_names != b.resource_names:
        raise ConfigurationError(
            f"configurations partition different resources: {a.resource_names} vs {b.resource_names}"
        )
    if a.n_jobs != b.n_jobs:
        raise ConfigurationError(f"configurations cover {a.n_jobs} vs {b.n_jobs} jobs")
    return float(np.linalg.norm(a.as_vector() - b.as_vector()))
