"""The configuration search space and its combinatorics.

The paper (Sec. II) sizes the space as a product over resources of the
number of *compositions* of ``U`` units into ``M`` positive parts,
``C(U - 1, M - 1)``. This module provides exact counting, full
enumeration (used by the brute-force Oracle), uniform sampling (used by
Random search and by BO candidate pools), elementary neighbor moves,
and the normalized encoding that the Gaussian-process proxy model
consumes.
"""

from __future__ import annotations

import itertools
from math import comb
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import SpaceError
from repro.resources.allocation import Configuration, equal_partition
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike, make_rng


def count_compositions(units: int, parts: int, min_units: int = 1) -> int:
    """Number of ways to split ``units`` into ``parts`` ordered shares.

    Each share receives at least ``min_units``. With ``min_units=1``
    this is the paper's ``C(units - 1, parts - 1)``.
    """
    if parts < 1:
        raise SpaceError(f"parts must be >=1, got {parts}")
    free = units - parts * min_units
    if free < 0:
        return 0
    return comb(free + parts - 1, parts - 1)


def iter_compositions(units: int, parts: int, min_units: int = 1) -> Iterator[Tuple[int, ...]]:
    """Yield every composition of ``units`` into ``parts`` ordered shares."""
    if parts < 1:
        raise SpaceError(f"parts must be >=1, got {parts}")
    free = units - parts * min_units
    if free < 0:
        return
    if parts == 1:
        yield (units,)
        return
    # Stars and bars over the "free" units, shifted up by min_units.
    for cuts in itertools.combinations_with_replacement(range(free + 1), parts - 1):
        shares = []
        prev = 0
        for cut in cuts:
            shares.append(cut - prev + min_units)
            prev = cut
        shares.append(free - prev + min_units)
        yield tuple(shares)


def compositions_matrix(units: int, parts: int, min_units: int = 1) -> np.ndarray:
    """All compositions as an ``(n, parts)`` integer array.

    The vectorized Oracle gathers per-job performance tables through
    these index arrays instead of materializing Configuration objects.
    """
    rows = list(iter_compositions(units, parts, min_units))
    if not rows:
        return np.empty((0, parts), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


def sample_composition(
    units: int, parts: int, rng: np.random.Generator, min_units: int = 1
) -> Tuple[int, ...]:
    """Draw one composition uniformly at random.

    Uses the stars-and-bars bijection: choosing ``parts - 1`` distinct
    cut points among ``free + parts - 1`` slots is uniform over
    compositions.
    """
    free = units - parts * min_units
    if free < 0:
        raise SpaceError(f"cannot split {units} units into {parts} parts of >= {min_units}")
    if parts == 1:
        return (units,)
    slots = free + parts - 1
    cuts = np.sort(rng.choice(slots, size=parts - 1, replace=False))
    bounds = np.concatenate(([-1], cuts, [slots]))
    gaps = np.diff(bounds) - 1
    return tuple(int(g) + min_units for g in gaps)


class ConfigurationSpace:
    """All valid partitionings of a catalog's resources among ``n_jobs`` jobs.

    Args:
        catalog: the resources being partitioned. Policies that control
            only a subset of the server's resources build their space
            from ``catalog.subset(...)``.
        n_jobs: number of co-located jobs.
    """

    def __init__(self, catalog: ResourceCatalog, n_jobs: int):
        if n_jobs < 1:
            raise SpaceError(f"n_jobs must be >=1, got {n_jobs}")
        for resource in catalog:
            if count_compositions(resource.units, n_jobs, resource.min_units) == 0:
                raise SpaceError(
                    f"{resource.name!r} has {resource.units} units; cannot host {n_jobs} jobs"
                )
        self._catalog = catalog
        self._n_jobs = n_jobs
        # Column layout of the random-key block behind sample() /
        # sample_batch(): per resource, one key per stars-and-bars slot
        # (resources in catalog order). A configuration always consumes
        # exactly one row of keys, so a loop of scalar sample() calls
        # reads the identical RNG stream as one batched draw.
        self._key_columns: List[Tuple[int, int, int]] = []
        start = 0
        for resource in catalog:
            slots = 0
            if n_jobs > 1:
                slots = resource.units - n_jobs * resource.min_units + n_jobs - 1
            self._key_columns.append((slots, start, start + slots))
            start += slots
        self._total_key_columns = start

    @property
    def catalog(self) -> ResourceCatalog:
        return self._catalog

    @property
    def n_jobs(self) -> int:
        return self._n_jobs

    @property
    def resource_names(self) -> Tuple[str, ...]:
        return self._catalog.names

    @property
    def dimensions(self) -> int:
        """Length of the flattened configuration vector (jobs x resources)."""
        return self._n_jobs * len(self._catalog)

    def __repr__(self) -> str:
        return f"ConfigurationSpace(n_jobs={self._n_jobs}, catalog={self._catalog!r})"

    # -- combinatorics ---------------------------------------------------

    def size(self) -> int:
        """Exact number of configurations (the paper's ``S_conf``)."""
        total = 1
        for resource in self._catalog:
            total *= count_compositions(resource.units, self._n_jobs, resource.min_units)
        return total

    def enumerate(self) -> Iterator[Configuration]:
        """Yield every configuration in the space.

        Intended for small/medium spaces (unit tests, reduced-scale
        Oracle); the vectorized Oracle uses
        :meth:`per_resource_matrices` instead.
        """
        per_resource = [
            iter_compositions(r.units, self._n_jobs, r.min_units) for r in self._catalog
        ]
        names = self.resource_names
        for combo in itertools.product(*per_resource):
            yield Configuration(dict(zip(names, combo)))

    def per_resource_matrices(self) -> List[np.ndarray]:
        """Composition matrices, one ``(n_r, n_jobs)`` array per resource.

        The full space is the cross product of the rows of these
        matrices; :meth:`configuration_from_indices` maps a tuple of
        row indices back to a :class:`Configuration`.
        """
        return [
            compositions_matrix(r.units, self._n_jobs, r.min_units) for r in self._catalog
        ]

    def configuration_from_indices(
        self, indices: Sequence[int], matrices: Sequence[np.ndarray]
    ) -> Configuration:
        """Build the configuration at one cross-product coordinate."""
        if len(indices) != len(self._catalog):
            raise SpaceError(f"expected {len(self._catalog)} indices, got {len(indices)}")
        allocations = {
            name: tuple(int(u) for u in matrix[index])
            for name, matrix, index in zip(self.resource_names, matrices, indices)
        }
        return Configuration(allocations)

    # -- construction and sampling ----------------------------------------

    def equal_partition(self) -> Configuration:
        """The all-resources-split-equally configuration (``S_init``)."""
        return equal_partition(self._catalog, self._n_jobs)

    def sample(self, rng: SeedLike = None) -> Configuration:
        """Draw one configuration uniformly at random.

        Thin wrapper over :meth:`sample_batch` (a batch of one); the
        paired tests in ``tests/test_batched_eval.py`` assert a loop of
        scalar calls is bit-identical to one batched draw.
        """
        return self.sample_batch(1, rng)[0]

    def sample_batch(self, n: int, rng: SeedLike = None) -> List[Configuration]:
        """Draw ``n`` configurations uniformly (duplicates possible).

        One vectorized pass: a single ``(n, total_slots)`` block of
        uniform keys, one row per configuration, then a batched
        stars-and-bars decode per resource. Choosing the ``parts - 1``
        smallest keys of a slot range is a uniform random cut-point
        subset, so the distribution matches the classical per-config
        ``rng.choice(..., replace=False)`` draw — and because numpy
        fills the block row-major from the bit stream, splitting the
        batch (or looping :meth:`sample`) consumes the identical
        stream and yields the identical configurations.
        """
        rng = make_rng(rng)
        if n <= 0:
            return []
        keys = rng.random((n, self._total_key_columns))
        shares: List[np.ndarray] = []
        for resource, (slots, start, stop) in zip(self._catalog, self._key_columns):
            if self._n_jobs == 1:
                shares.append(np.full((n, 1), resource.units, dtype=np.int64))
                continue
            cut_count = self._n_jobs - 1
            order = np.argsort(keys[:, start:stop], axis=1, kind="stable")
            cuts = np.sort(order[:, :cut_count], axis=1)
            bounds = np.concatenate(
                [
                    np.full((n, 1), -1, dtype=np.int64),
                    cuts,
                    np.full((n, 1), slots, dtype=np.int64),
                ],
                axis=1,
            )
            shares.append(np.diff(bounds, axis=1) - 1 + resource.min_units)
        names = self.resource_names
        return [
            Configuration(
                {
                    name: tuple(int(u) for u in share[i])
                    for name, share in zip(names, shares)
                }
            )
            for i in range(n)
        ]

    def contains(self, config: Configuration) -> bool:
        """Whether ``config`` is a valid member of this space."""
        if config.n_jobs != self._n_jobs:
            return False
        if set(config.resource_names) != set(self.resource_names):
            return False
        for resource in self._catalog:
            units = config.units(resource.name)
            if sum(units) != resource.units:
                return False
            if any(u < resource.min_units for u in units):
                return False
        return True

    # -- local moves -------------------------------------------------------

    def neighbors(self, config: Configuration) -> List[Configuration]:
        """All configurations one unit-move away from ``config``.

        A unit move transfers one unit of one resource from one job to
        another, respecting the resource's ``min_units``. These are the
        steps taken by the FSM and gradient-descent baselines, and the
        local refinement pool of SATORI's BO engine.
        """
        result = []
        for resource in self._catalog:
            units = config.units(resource.name)
            for donor in range(self._n_jobs):
                if units[donor] - 1 < resource.min_units:
                    continue
                for receiver in range(self._n_jobs):
                    if receiver == donor:
                        continue
                    result.append(config.move_unit(resource.name, donor, receiver))
        return result

    # -- encoding for the proxy model ---------------------------------------

    def encode(self, config: Configuration) -> np.ndarray:
        """Encode a configuration as fractional shares in ``[0, 1]``.

        The Gaussian process operates on this normalized vector
        (catalog resource order, jobs-major within a resource) so that
        length scales are comparable across resources with different
        unit counts.
        """
        if not self.contains(config):
            raise SpaceError(f"{config!r} is not a member of {self!r}")
        parts = []
        for resource in self._catalog:
            total = resource.units
            parts.extend(u / total for u in config.units(resource.name))
        return np.asarray(parts, dtype=float)

    def encode_batch(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Encode many configurations as an ``(n, dimensions)`` array.

        Validation and the share division are batched per resource;
        rows are bit-identical to :meth:`encode` (same per-element
        ``units / total`` division, same column order).
        """
        if not configs:
            return np.empty((0, self.dimensions), dtype=float)
        names = set(self.resource_names)
        for config in configs:
            if config.n_jobs != self._n_jobs or set(config.resource_names) != names:
                raise SpaceError(f"{config!r} is not a member of {self!r}")
        columns = []
        for resource in self._catalog:
            block = np.asarray(
                [config.units(resource.name) for config in configs], dtype=np.int64
            )
            if (block.sum(axis=1) != resource.units).any() or (
                block < resource.min_units
            ).any():
                bad = np.flatnonzero(
                    (block.sum(axis=1) != resource.units)
                    | (block < resource.min_units).any(axis=1)
                )[0]
                raise SpaceError(f"{configs[bad]!r} is not a member of {self!r}")
            columns.append(block / resource.units)
        return np.concatenate(columns, axis=1)
