"""Shared architectural resources and the catalog that describes a server.

A *resource* is one partitionable dimension of the machine — physical
cores, last-level-cache ways, memory-bandwidth throttle units, or a
power budget. Each resource exposes a number of discrete, indivisible
*units* that a partitioning policy distributes among co-located jobs,
exactly as Intel CAT distributes cache ways and Intel MBA distributes
bandwidth-throttle steps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from repro.errors import SpaceError


class ResourceKind(enum.Enum):
    """The architectural dimension a resource partitions."""

    CORES = "cores"
    LLC_WAYS = "llc_ways"
    MEMORY_BANDWIDTH = "memory_bandwidth"
    POWER = "power"


#: Canonical resource names, usable anywhere a resource name is expected.
CORES = ResourceKind.CORES.value
LLC_WAYS = ResourceKind.LLC_WAYS.value
MEMORY_BANDWIDTH = ResourceKind.MEMORY_BANDWIDTH.value
POWER = ResourceKind.POWER.value


@dataclass(frozen=True)
class Resource:
    """One partitionable resource.

    Attributes:
        kind: the architectural dimension this resource represents.
        units: total number of discrete units available on the server
            (e.g. 10 cores, 11 LLC ways, 10 MBA throttle steps).
        min_units: minimum units every job must receive; defaults to 1
            because CAT/MBA cannot starve a class of service entirely
            and a job always needs at least one core.
        unit_capacity: physical capacity of one unit in the resource's
            natural dimension (cores: 1 core; LLC: bytes per way;
            bandwidth: bytes/s per throttle step; power: watts). Used
            by the hardware substrate and performance models.
    """

    kind: ResourceKind
    units: int
    min_units: int = 1
    unit_capacity: float = 1.0

    def __post_init__(self) -> None:
        if self.units < 1:
            raise SpaceError(f"resource {self.kind.value} needs >=1 unit, got {self.units}")
        if self.min_units < 0:
            raise SpaceError(f"min_units must be >=0, got {self.min_units}")

    @property
    def name(self) -> str:
        """Canonical string name of the resource (its kind value)."""
        return self.kind.value

    @property
    def capacity(self) -> float:
        """Total physical capacity: ``units * unit_capacity``."""
        return self.units * self.unit_capacity

    def max_jobs(self) -> int:
        """Largest number of jobs this resource can be split among."""
        if self.min_units == 0:
            raise SpaceError("max_jobs is unbounded when min_units == 0")
        return self.units // self.min_units


class ResourceCatalog:
    """Ordered, immutable collection of the resources a server exposes.

    The catalog fixes the dimension order used by configuration vectors
    and by the Bayesian optimizer's encoded inputs, so two components
    that share a catalog always agree on which coordinate is which.
    """

    def __init__(self, resources: Iterable[Resource]):
        resources = tuple(resources)
        if not resources:
            raise SpaceError("a resource catalog needs at least one resource")
        names = [r.name for r in resources]
        if len(set(names)) != len(names):
            raise SpaceError(f"duplicate resources in catalog: {names}")
        self._resources = resources
        self._by_name = {r.name: r for r in resources}

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._resources)

    def __len__(self) -> int:
        return len(self._resources)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceCatalog):
            return NotImplemented
        return self._resources == other._resources

    def __hash__(self) -> int:
        return hash(self._resources)

    def __repr__(self) -> str:
        inner = ", ".join(f"{r.name}={r.units}" for r in self._resources)
        return f"ResourceCatalog({inner})"

    @property
    def names(self) -> Tuple[str, ...]:
        """Resource names in catalog order."""
        return tuple(r.name for r in self._resources)

    def get(self, name: str) -> Resource:
        """Return the resource called ``name``.

        Raises:
            SpaceError: if the catalog has no such resource.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise SpaceError(f"unknown resource {name!r}; catalog has {self.names}") from None

    def subset(self, names: Iterable[str]) -> "ResourceCatalog":
        """Return a catalog restricted to ``names`` (kept in catalog order).

        Used by single/dual-resource ablations (e.g. SATORI-LLC-only
        versus dCAT) where a policy partitions only some resources.
        """
        wanted = set(names)
        missing = wanted - set(self.names)
        if missing:
            raise SpaceError(f"unknown resources {sorted(missing)}; catalog has {self.names}")
        return ResourceCatalog(r for r in self._resources if r.name in wanted)


def default_catalog(
    cores: int = 10,
    llc_ways: int = 10,
    bandwidth_units: int = 10,
    *,
    llc_way_bytes: float = 1.375 * 2**20,
    bandwidth_unit_bytes: float = 1.2e9,
) -> ResourceCatalog:
    """The three-resource catalog used throughout the paper's evaluation.

    Defaults approximate the paper's Skylake testbed: 10 physical
    cores, an 11-way (13.75 MB) LLC quantized into 10 allocatable way
    units, and a 12 GB/s sustained co-located memory budget split into
    10 MBA throttle steps. (Loaded-latency sustainable bandwidth under
    many-core contention is far below the DIMM peak; the tight budget
    is what makes bandwidth partitioning consequential, as on the
    paper's testbed.)
    """
    return ResourceCatalog(
        [
            Resource(ResourceKind.CORES, cores, unit_capacity=1.0),
            Resource(ResourceKind.LLC_WAYS, llc_ways, unit_capacity=llc_way_bytes),
            Resource(ResourceKind.MEMORY_BANDWIDTH, bandwidth_units, unit_capacity=bandwidth_unit_bytes),
        ]
    )
