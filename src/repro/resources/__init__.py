"""Resource model: catalogs, partitioning configurations, search space.

Public surface of the resource layer; higher layers (hardware
substrate, policies, SATORI core) depend only on these names.
"""

from repro.resources.allocation import (
    Configuration,
    configuration_distance,
    equal_partition,
)
from repro.resources.presets import preset_catalog, preset_names
from repro.resources.space import (
    ConfigurationSpace,
    compositions_matrix,
    count_compositions,
    iter_compositions,
    sample_composition,
)
from repro.resources.types import (
    CORES,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    POWER,
    Resource,
    ResourceCatalog,
    ResourceKind,
    default_catalog,
)

__all__ = [
    "CORES",
    "LLC_WAYS",
    "MEMORY_BANDWIDTH",
    "POWER",
    "Configuration",
    "ConfigurationSpace",
    "Resource",
    "ResourceCatalog",
    "ResourceKind",
    "compositions_matrix",
    "configuration_distance",
    "count_compositions",
    "default_catalog",
    "equal_partition",
    "iter_compositions",
    "preset_catalog",
    "preset_names",
    "sample_composition",
]
