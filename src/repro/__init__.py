"""SATORI reproduction: efficient and fair multi-resource partitioning.

A from-scratch Python reproduction of *SATORI: Efficient and Fair
Resource Partitioning by Sacrificing Short-Term Benefits for Long-Term
Gains* (Roy, Patel, Tiwari — ISCA 2021), including the simulated CMP
substrate (CAT / MBA / taskset / RAPL / pqos), analytic benchmark
workload models (PARSEC / CloudSuite / ECP), the SATORI BO controller,
all competing policies (Random, dCAT, CoPart, PARTIES, Oracle), and a
per-figure experiment harness.

Quickstart::

    from repro import (
        SatoriController, run_policy, experiment_catalog,
        full_space, suite_mixes,
    )

    mix = suite_mixes("parsec")[0]
    catalog = experiment_catalog()
    satori = SatoriController(full_space(catalog, len(mix)), rng=0)
    result = run_policy(satori, mix, catalog, seed=0)
    print(result.throughput, result.fairness)
"""

from repro.core import (
    BayesianOptimizer,
    DynamicWeightScheduler,
    GaussianProcess,
    GoalRecords,
    SatoriController,
    StaticWeights,
)
from repro.errors import (
    ConfigurationError,
    ExperimentError,
    HardwareError,
    ModelError,
    PolicyError,
    ReproError,
    SpaceError,
    WorkloadError,
)
from repro.experiments import (
    RunConfig,
    RunResult,
    aggregate,
    compare_on_mix,
    compare_on_mixes,
    experiment_catalog,
    full_space,
    run_policy,
    standard_policies,
)
from repro.metrics import GoalScores, GoalSet, jain_index
from repro.policies import (
    CoPartPolicy,
    DCatPolicy,
    EqualPartitionPolicy,
    OraclePolicy,
    OracleSearch,
    PartiesPolicy,
    PartitioningPolicy,
    RandomSearchPolicy,
    UnmanagedPolicy,
    balanced_oracle,
)
from repro.resources import (
    Configuration,
    ConfigurationSpace,
    Resource,
    ResourceCatalog,
    ResourceKind,
    configuration_distance,
    default_catalog,
)
from repro.system import CoLocationSimulator, Observation, TelemetryLog
from repro.workloads import (
    JobMix,
    Phase,
    PhaseSchedule,
    Workload,
    default_registry,
    get_workload,
    mix_from_names,
    suite_mixes,
)

__version__ = "1.0.0"

__all__ = [
    "BayesianOptimizer",
    "CoLocationSimulator",
    "CoPartPolicy",
    "Configuration",
    "ConfigurationError",
    "ConfigurationSpace",
    "DCatPolicy",
    "DynamicWeightScheduler",
    "EqualPartitionPolicy",
    "ExperimentError",
    "GaussianProcess",
    "GoalRecords",
    "GoalScores",
    "GoalSet",
    "HardwareError",
    "JobMix",
    "ModelError",
    "Observation",
    "OraclePolicy",
    "OracleSearch",
    "PartiesPolicy",
    "PartitioningPolicy",
    "Phase",
    "PhaseSchedule",
    "PolicyError",
    "RandomSearchPolicy",
    "ReproError",
    "Resource",
    "ResourceCatalog",
    "ResourceKind",
    "RunConfig",
    "RunResult",
    "SatoriController",
    "SpaceError",
    "StaticWeights",
    "TelemetryLog",
    "UnmanagedPolicy",
    "Workload",
    "WorkloadError",
    "aggregate",
    "balanced_oracle",
    "compare_on_mix",
    "compare_on_mixes",
    "configuration_distance",
    "default_catalog",
    "default_registry",
    "experiment_catalog",
    "full_space",
    "get_workload",
    "jain_index",
    "mix_from_names",
    "run_policy",
    "standard_policies",
    "suite_mixes",
]
