"""First-class policy state: the snapshot/restore value types.

SATORI's long-term gains come from accumulated state — the GP
posterior, the per-goal sample records, and the dynamic-weight
scheduler's position inside its equalization period. Historically that
state lived only in controller object graphs and died with them: the
cluster layer rebuilds each node's controller every placement epoch,
so a node whose job membership did *not* change still re-learned from
scratch.

This module makes controller state a serializable first-class object.
:class:`PolicyState` is the uniform envelope every
:class:`~repro.policies.base.PartitioningPolicy` speaks through its
``snapshot()``/``restore()`` protocol; the component dataclasses
(:class:`GPState`, :class:`BOState`, :class:`GoalRecordsState`,
:class:`WeightSchedulerState`) are the versioned, JSON-codable forms
of each stateful core component.

Design constraints the representation answers to:

* **Hashable** — a snapshot rides inside a
  :class:`~repro.engine.RunSpec` (the ``initial_state`` field), and
  specs are dict keys in the engine's dedup map, so the payload is
  canonicalized into frozen tuples (:func:`repro.serialize.freeze_data`).
* **Content-addressed** — payload bytes enter the spec digest, so the
  frozen form is canonical: equal state produces equal digests.
* **Bit-identical resume** — restoring a snapshot and continuing must
  be indistinguishable from never tearing the controller down. That
  forces *everything* the decision path reads into the snapshot: the
  RNG stream (numpy bit-generator state), the GP's Cholesky factor
  (a recomputed factorization differs from an incrementally extended
  one in the last floating-point bits), the hyperparameter-refit
  counter, and the BO probe set drawn at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro import serialize
from repro.errors import PolicyError

#: Version of the snapshot envelope; bump on incompatible layout changes.
STATE_VERSION = 1


def _check_version(cls_name: str, version: int, known: int = STATE_VERSION) -> None:
    if version > known:
        raise PolicyError(
            f"{cls_name} version {version} is newer than this code understands ({known})"
        )


@dataclass(frozen=True)
class PolicyState:
    """A policy's complete serializable state at one instant.

    Attributes:
        policy: kind tag of the policy that produced the snapshot
            (``"SATORI"``, ``"Random"``, ...); ``restore`` validates it
            so a snapshot never silently lands in the wrong controller.
        payload: the policy-specific state, canonicalized into frozen
            tuples on construction (pass plain dicts/lists/scalars).
        version: envelope version for forward-compatibility checks.
    """

    policy: str
    payload: Any = ()
    version: int = STATE_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", str(self.policy))
        object.__setattr__(self, "payload", serialize.freeze_data(self.payload))
        object.__setattr__(self, "version", int(self.version))

    def payload_dict(self) -> Dict[str, Any]:
        """The payload thawed back into JSON-native containers."""
        thawed = serialize.thaw_data(self.payload)
        if not isinstance(thawed, dict):
            raise PolicyError(
                f"{self.policy} state payload is not a mapping: {type(thawed).__name__}"
            )
        return thawed

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (lossless)."""
        return {
            "policy": self.policy,
            "version": self.version,
            "payload": serialize.thaw_data(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PolicyState":
        state = cls(
            policy=data["policy"],
            payload=data.get("payload", ()),
            version=int(data.get("version", STATE_VERSION)),
        )
        _check_version("PolicyState", state.version)
        return state


@dataclass(frozen=True)
class GPState:
    """Serialized :class:`~repro.core.gp.GaussianProcess` posterior.

    The Cholesky factor and dual weights are stored verbatim (not
    recomputed on restore): the controller's steady state extends the
    factor incrementally, and a from-scratch refactorization agrees
    only to floating-point error — which would break bit-identical
    resume. ``fits_since_search`` is the hyperparameter-refit counter;
    carrying it keeps the grid-search cadence aligned with an
    uninterrupted run. The kernel is stored by name + hyperparameters
    (``fit_key`` is recomputed on restore — it contains a type object
    and cannot ride through JSON).
    """

    kernel: str
    lengthscale: float
    variance: float
    noise: float
    y_mean: float
    y_std: float
    fits_since_search: Optional[int] = None
    x: Optional[Tuple[Tuple[float, ...], ...]] = None
    chol: Optional[Tuple[Tuple[float, ...], ...]] = None
    alpha: Optional[Tuple[float, ...]] = None
    version: int = STATE_VERSION

    _CODECS = {
        "x": serialize.optional(serialize.matrix_codec()),
        "chol": serialize.optional(serialize.matrix_codec()),
        "alpha": serialize.optional(serialize.vector_codec()),
    }

    def to_dict(self) -> Dict[str, Any]:
        return serialize.dataclass_to_dict(self, codecs=self._CODECS)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GPState":
        state = serialize.dataclass_from_dict(cls, data, codecs=cls._CODECS)
        _check_version("GPState", state.version)
        return state


@dataclass(frozen=True)
class BOState:
    """Serialized :class:`~repro.core.bo.BayesianOptimizer` state.

    ``rng`` is the numpy bit-generator state dict (frozen); ``probes``
    are the fixed proxy-change probe configurations, which are drawn
    from the optimizer's RNG *at construction* — a restored optimizer
    was constructed from a different seed, so the probe set must
    travel with the snapshot (their encodings are recomputed from the
    space on restore).
    """

    gp: GPState
    rng: Any
    iteration: int
    probes: Any
    last_probe_means: Optional[Tuple[float, ...]] = None
    version: int = STATE_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "rng", serialize.freeze_data(self.rng))
        object.__setattr__(self, "probes", serialize.freeze_data(self.probes))

    _CODECS = {
        "gp": serialize.object_codec(GPState),
        "rng": serialize.frozen_data_codec(),
        "probes": serialize.frozen_data_codec(),
        "last_probe_means": serialize.optional(serialize.vector_codec()),
    }

    def to_dict(self) -> Dict[str, Any]:
        return serialize.dataclass_to_dict(self, codecs=self._CODECS)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BOState":
        state = serialize.dataclass_from_dict(cls, data, codecs=cls._CODECS)
        _check_version("BOState", state.version)
        return state


@dataclass(frozen=True)
class GoalRecordsState:
    """Serialized :class:`~repro.core.objective.GoalRecords` sample book.

    Each sample is ``{"config": ..., "encoded": [...], "scores": [...]}``
    (the configuration in its ``to_dict`` form), frozen canonically.
    """

    goal_names: Tuple[str, ...]
    max_samples: int
    samples: Any = ()
    version: int = STATE_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "goal_names", tuple(str(n) for n in self.goal_names))
        object.__setattr__(self, "samples", serialize.freeze_data(self.samples))

    _CODECS = {
        "goal_names": serialize.FieldCodec(encode=list, decode=tuple),
        "samples": serialize.frozen_data_codec(),
    }

    def to_dict(self) -> Dict[str, Any]:
        return serialize.dataclass_to_dict(self, codecs=self._CODECS)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GoalRecordsState":
        state = serialize.dataclass_from_dict(cls, data, codecs=cls._CODECS)
        _check_version("GoalRecordsState", state.version)
        return state


@dataclass(frozen=True)
class WeightSchedulerState:
    """Serialized :class:`~repro.core.weights.DynamicWeightScheduler` state.

    Captures the scheduler's position inside the current equalization
    period: the step counter, the accumulated weight sums (Eq. 3's
    imbalance terms), the incumbent prioritization weights (Eq. 4),
    and the score window the next prioritization boundary will
    difference.
    """

    step_in_te: int
    sum_w_t: float
    sum_w_f: float
    w_tp: float
    w_fp: float
    period_scores: Tuple[Tuple[float, float], ...] = ()
    version: int = STATE_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "period_scores",
            tuple((float(t), float(f)) for t, f in self.period_scores),
        )

    _CODECS = {"period_scores": serialize.matrix_codec()}

    def to_dict(self) -> Dict[str, Any]:
        return serialize.dataclass_to_dict(self, codecs=self._CODECS)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WeightSchedulerState":
        state = serialize.dataclass_from_dict(cls, data, codecs=cls._CODECS)
        _check_version("WeightSchedulerState", state.version)
        return state
