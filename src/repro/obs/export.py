"""Trace and metric exporters: JSONL, Chrome ``trace_event``, Prometheus text.

Three sinks cover the three consumers:

* **JSONL** — one :class:`~repro.obs.collector.TraceEvent` dict per
  line; greppable, streamable, and the round-trip format tests use.
* **Chrome trace_event** — the JSON object format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev; spans become
  ``"ph": "X"`` complete events with microsecond timestamps.
* **Prometheus text** — the plain exposition format for a
  :class:`~repro.obs.metrics.MetricRegistry` snapshot, so counters and
  histograms can be diffed or scraped by standard tooling.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from repro.errors import ObsError
from repro.obs.collector import INSTANT, TraceEvent
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry, Series

PathLike = Union[str, Path]


# -- JSONL -----------------------------------------------------------------


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Events as newline-delimited JSON (one event dict per line)."""
    return "".join(json.dumps(e.to_dict(), sort_keys=True) + "\n" for e in events)


def write_jsonl(events: Iterable[TraceEvent], path: PathLike) -> Path:
    path = Path(path)
    path.write_text(events_to_jsonl(events))
    return path


def read_jsonl(path: PathLike) -> List[TraceEvent]:
    """Parse a JSONL trace back into events (inverse of :func:`write_jsonl`)."""
    path = Path(path)
    events: List[TraceEvent] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            events.append(TraceEvent.from_dict(json.loads(line)))
        except (ValueError, KeyError) as exc:
            raise ObsError(f"{path}:{lineno}: malformed trace line: {exc}") from exc
    return events


# -- Chrome trace_event ----------------------------------------------------


def chrome_trace(events: Iterable[TraceEvent], process_name: str = "repro") -> Dict[str, Any]:
    """Events as a Chrome ``trace_event`` JSON object.

    Spans map to complete ("X") events and instants to instant ("i")
    events; timestamps and durations are microseconds as the format
    requires. Events are sorted by start time so the viewer's
    begin/end pairing never sees out-of-order data.

    Events carrying a ``lane`` argument (worker spans adopted across
    the engine's result pipe) render on their own thread rows — the
    main timeline is tid 1, each distinct lane gets the next tid in
    first-seen order — so a pool run's per-worker activity reads like
    a real multi-threaded trace.
    """
    trace_events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 1,
        "args": {"name": process_name},
    }]
    lanes: Dict[str, int] = {}
    for event in sorted(events, key=lambda e: e.start_ns):
        args = dict(event.args)
        lane = args.pop("lane", "")
        tid = lanes.setdefault(lane, len(lanes) + 2) if lane else 1
        entry: Dict[str, Any] = {
            "name": event.name,
            "cat": event.category or "default",
            "ts": event.start_ns / 1000.0,
            "pid": 1,
            "tid": tid,
        }
        if event.kind == INSTANT:
            entry["ph"] = "i"
            entry["s"] = "t"
        else:
            entry["ph"] = "X"
            entry["dur"] = event.duration_ns / 1000.0
        if args:
            entry["args"] = args
        trace_events.append(entry)
    if lanes:
        thread_names = [("main", 1)] + sorted(lanes.items(), key=lambda kv: kv[1])
        for name, tid in thread_names:
            trace_events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path: PathLike,
                       process_name: str = "repro") -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(events, process_name), indent=1))
    return path


# -- Prometheus text -------------------------------------------------------

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A registry name as a legal Prometheus metric name."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return sanitized


def _fmt(value: float) -> str:
    """Float without a trailing ``.0`` for integral values."""
    return repr(int(value)) if float(value).is_integer() else repr(float(value))


def prometheus_text(registry: MetricRegistry) -> str:
    """Registry contents in the Prometheus text exposition format.

    Histograms expand to cumulative ``_bucket{le=...}`` lines plus
    ``_sum``/``_count``; a :class:`~repro.obs.metrics.Series` is
    summarized as a gauge holding its last value (the full sequence
    belongs in the trace, not the scrape).
    """
    lines: List[str] = []
    for name, metric in registry.items():
        pname = _prom_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, count in zip(metric.buckets, metric.bucket_counts):
                cumulative += count
                lines.append(f'{pname}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            lines.append(f'{pname}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{pname}_sum {_fmt(metric.sum)}")
            lines.append(f"{pname}_count {metric.count}")
        elif isinstance(metric, Series):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(metric.last)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricRegistry, path: PathLike) -> Path:
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path
