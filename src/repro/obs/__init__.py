"""``repro.obs`` — tracing, metrics, and exporters for the reproduction.

The observability subsystem answers "where does the decision interval's
time go?" — the load-bearing question behind SATORI's sub-core overhead
claim — without perturbing results: collection is purely observational
(no RNG draws, no control-flow reads), and the default ambient
collector is the no-op :data:`NULL_COLLECTOR`.

Typical use::

    from repro.obs import TraceCollector, use_collector
    from repro.obs.export import write_chrome_trace

    collector = TraceCollector()
    with use_collector(collector):
        run_policy(policy, mix, catalog, config)
    write_chrome_trace(collector.events, "trace.chrome.json")
"""

from repro.obs.collector import (
    INSTANT,
    SPAN,
    ManualClock,
    NullCollector,
    NULL_COLLECTOR,
    TraceCollector,
    TraceEvent,
    active_collector,
    use_collector,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_S,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    Series,
)

__all__ = [
    "INSTANT",
    "SPAN",
    "ManualClock",
    "NullCollector",
    "NULL_COLLECTOR",
    "TraceCollector",
    "TraceEvent",
    "active_collector",
    "use_collector",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "Series",
]
