"""Metric primitives: counters, gauges, histograms, series.

A :class:`MetricRegistry` hands out named metric instruments on first
use (``registry.counter("engine.cache_hits")``) and remembers them, so
instrumented code never has to pre-declare what it records. Lookups
are a single dict ``get`` and updates a float add, which keeps the
instruments cheap enough to leave on in the control loop's hot path.

The null variants at the bottom mirror the API with no-op methods; the
:data:`NULL_REGISTRY` backs :class:`~repro.obs.collector.NullCollector`
so uninstrumented runs pay only an attribute lookup and an empty call.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ObsError

#: Default histogram bucket upper bounds, in seconds. Spaced roughly
#: 1-3-10 from 0.1 ms to 1 s — the range a control-interval component
#: (GP fit, acquisition scan, actuation write) can plausibly occupy.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
)


class Counter:
    """Monotonically increasing count (events, cache hits, retries)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time level (worker utilization, queue depth)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution of observed values.

    Buckets are upper bounds in ascending order; an implicit +inf
    bucket catches overflow. Cumulative counts, the total sum, and the
    observation count are enough for mean/percentile estimates and map
    directly onto the Prometheus exposition format.
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObsError(
                f"histogram {name!r} buckets must be non-empty and strictly "
                f"ascending; got {bounds}"
            )
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[i] += 1
                break
        else:
            self._counts[-1] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket (non-cumulative) counts, +inf bucket last."""
        return tuple(self._counts)

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0


class Series:
    """Append-only sample sequence (per-epoch node fairness, etc.).

    Unlike a histogram this keeps the order of observations, which is
    what sparkline dashboards need. Intended for per-epoch/per-batch
    cadence, not per-interval.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def append(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def values(self) -> Tuple[float, ...]:
        return tuple(self._values)

    @property
    def last(self) -> float:
        return self._values[-1] if self._values else 0.0


class MetricRegistry:
    """Named metric instruments, created on first use.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind raises
    :class:`~repro.errors.ObsError` (it would silently split data
    otherwise).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, *args: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise ObsError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    def series(self, name: str) -> Series:
        return self._get_or_create(name, Series)

    def get(self, name: str) -> Optional[Any]:
        """The instrument bound to ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def items(self) -> Iterator[Tuple[str, Any]]:
        for name in sorted(self._metrics):
            yield name, self._metrics[name]

    def counters(self) -> Dict[str, float]:
        """``{name: value}`` of every counter (sorted by name)."""
        return {
            name: metric.value
            for name, metric in self.items()
            if isinstance(metric, Counter)
        }

    def __len__(self) -> int:
        return len(self._metrics)


# -- null variants ---------------------------------------------------------


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    buckets: Tuple[float, ...] = ()
    count = 0
    sum = 0.0
    mean = 0.0
    bucket_counts: Tuple[int, ...] = ()

    def observe(self, value: float) -> None:
        pass


class _NullSeries:
    __slots__ = ()
    name = ""
    values: Tuple[float, ...] = ()
    last = 0.0

    def append(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SERIES = _NullSeries()


class NullRegistry(MetricRegistry):
    """Registry whose instruments discard everything.

    Shared singletons are handed out regardless of name, so the
    disabled path allocates nothing.
    """

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> Histogram:
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def series(self, name: str) -> Series:
        return _NULL_SERIES  # type: ignore[return-value]
