"""Trace collection: structured events, scoped spans, active-collector scoping.

The collector is an in-process event bus. Instrumented code asks for
the ambient collector (:func:`active_collector`) and records spans —

    with active_collector().span("gp_fit", "bo"):
        gp.fit(x, y)

— or point events (``collector.event("migration", "cluster", job_id=3)``).
By default the ambient collector is :data:`NULL_COLLECTOR`, whose span
and event methods do nothing, so uninstrumented runs pay one module
attribute read and an empty call per probe. Experiments that want data
install a real :class:`TraceCollector` for a scope:

    collector = TraceCollector()
    with use_collector(collector):
        run_policy(...)

Timing uses a monotonic nanosecond clock (``time.perf_counter_ns``);
tests inject a manual clock for deterministic durations. Collection is
purely observational: no RNG is touched and no control-flow decision
reads collector state, so instrumented and uninstrumented runs produce
bit-identical results.

Worker processes have separate memory, so spans recorded inside an
engine worker never reach the parent's collector directly; the engine
ships each worker's serialized events back across the result pipe and
the parent :meth:`TraceCollector.adopt`\\ s them onto its own timeline
under a per-worker lane, so pool runs still produce complete Chrome
traces.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Tuple

from repro.obs.metrics import MetricRegistry, NullRegistry

#: Event kinds: a ``span`` has a duration; an ``instant`` marks a moment.
SPAN = "span"
INSTANT = "instant"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded trace event.

    Times are nanoseconds on the collector's clock (monotonic by
    default — comparable within a process, not across processes or to
    wall time).
    """

    name: str
    category: str
    start_ns: int
    duration_ns: int
    kind: str = SPAN
    args: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "category": self.category,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "kind": self.kind,
        }
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            name=data["name"],
            category=data["category"],
            start_ns=int(data["start_ns"]),
            duration_ns=int(data["duration_ns"]),
            kind=data.get("kind", SPAN),
            args=tuple(sorted(data.get("args", {}).items())),
        )


class _Span:
    """Context manager recording one timed span on exit.

    Exceptions propagate; the span is still recorded (a failed
    actuation's latency is part of the budget).
    """

    __slots__ = ("_collector", "_name", "_category", "_args", "_start_ns")

    def __init__(self, collector: "TraceCollector", name: str, category: str,
                 args: Tuple[Tuple[str, Any], ...]) -> None:
        self._collector = collector
        self._name = name
        self._category = category
        self._args = args
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        self._start_ns = self._collector._clock()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        end_ns = self._collector._clock()
        self._collector._events.append(TraceEvent(
            name=self._name,
            category=self._category,
            start_ns=self._start_ns,
            duration_ns=end_ns - self._start_ns,
            kind=SPAN,
            args=self._args,
        ))
        return False


class TraceCollector:
    """Collects :class:`TraceEvent`s and carries a :class:`MetricRegistry`.

    Args:
        clock: nanosecond tick source; defaults to
            ``time.perf_counter_ns``. Tests pass a manual clock so span
            durations are deterministic.
        metrics: registry to attach; a fresh one by default.
    """

    #: Real collectors record; the null collector overrides to False so
    #: call sites can skip building expensive event arguments.
    enabled = True

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns,
                 metrics: MetricRegistry = None) -> None:
        self._clock = clock
        self._events: List[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricRegistry()

    def span(self, name: str, category: str = "", **args: Any) -> _Span:
        """A context manager timing the enclosed block."""
        return _Span(self, name, category, tuple(sorted(args.items())) if args else ())

    def event(self, name: str, category: str = "", **args: Any) -> None:
        """Record an instantaneous (zero-duration) event."""
        self._events.append(TraceEvent(
            name=name,
            category=category,
            start_ns=self._clock(),
            duration_ns=0,
            kind=INSTANT,
            args=tuple(sorted(args.items())) if args else (),
        ))

    def now_ns(self) -> int:
        """Current tick on this collector's clock."""
        return self._clock()

    def adopt(
        self,
        events: Iterable[TraceEvent],
        *,
        at_ns: int,
        lane: str = "",
    ) -> None:
        """Graft events recorded on a *foreign* clock onto this timeline.

        Worker processes time spans on their own monotonic clocks,
        which are not comparable to the parent's. ``adopt`` rebases a
        batch so its earliest start lands at ``at_ns`` (relative
        offsets within the batch are preserved) and tags every event
        with ``lane`` — exporters map lanes to separate threads so
        adopted worker spans don't overlap the parent's own.
        """
        batch = list(events)
        if not batch:
            return
        shift = at_ns - min(event.start_ns for event in batch)
        for event in batch:
            args = event.args + (("lane", lane),) if lane else event.args
            self._events.append(
                dataclasses.replace(
                    event, start_ns=event.start_ns + shift, args=args
                )
            )

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    def clear(self) -> None:
        self._events.clear()

    def spans_named(self, name: str) -> Tuple[TraceEvent, ...]:
        """All span events with the given name, in completion order."""
        return tuple(e for e in self._events if e.kind == SPAN and e.name == name)

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span with the given name."""
        return sum(e.duration_ns for e in self._events
                   if e.kind == SPAN and e.name == name) / 1e9


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullCollector(TraceCollector):
    """The default, disabled collector: every probe is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(metrics=NullRegistry())

    def span(self, name: str, category: str = "", **args: Any) -> _Span:
        return _NULL_SPAN  # type: ignore[return-value]

    def event(self, name: str, category: str = "", **args: Any) -> None:
        pass

    def adopt(
        self,
        events: Iterable[TraceEvent],
        *,
        at_ns: int,
        lane: str = "",
    ) -> None:
        pass


#: Process-wide default collector; never records anything.
NULL_COLLECTOR = NullCollector()

_active: TraceCollector = NULL_COLLECTOR


def active_collector() -> TraceCollector:
    """The ambient collector instrumented code should record into."""
    return _active


@contextmanager
def use_collector(collector: TraceCollector) -> Iterator[TraceCollector]:
    """Install ``collector`` as the ambient collector for a scope.

    Restores the previous collector on exit, so scopes nest (an
    instrumented sweep inside an instrumented session keeps the outer
    collector afterwards).
    """
    global _active
    previous = _active
    _active = collector
    try:
        yield collector
    finally:
        _active = previous


class ManualClock:
    """Deterministic tick source for tests.

    Every read returns the current time and advances it by
    ``step_ns``, so a span's duration is exactly ``step_ns`` and event
    ordering is reproducible without real time passing.
    """

    def __init__(self, start_ns: int = 0, step_ns: int = 1000) -> None:
        self._now_ns = start_ns
        self.step_ns = step_ns

    def __call__(self) -> int:
        now = self._now_ns
        self._now_ns += self.step_ns
        return now

    def advance(self, delta_ns: int) -> None:
        self._now_ns += delta_ns
