"""QoS-PARTIES: the original PARTIES controller in its native setting.

PARTIES (Chen et al., ASPLOS'19) manages co-located *latency-critical*
services: it monitors each service's tail latency against its QoS
target and, one resource at a time, **upsizes** the allocation of a
violating service (taking from the service with the most QoS slack)
and **downsizes** over-provisioned services to reclaim headroom. This
module implements that FSM against the reproduction's LC workload
model, complementing the throughput-adapted ``PartiesPolicy`` the
paper's evaluation uses (Sec. IV explains the adaptation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PolicyError
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.system.simulation import Observation
from repro.workloads.latency_critical import LatencyCriticalJob

#: Headroom above which a service is considered safely over-provisioned
#: and may donate resources (PARTIES' "downsize" threshold).
_DOWNSIZE_HEADROOM = 2.0

#: Headroom below which a service is treated as (nearly) violating and
#: must be upsized (slightly above 1.0 to act before the violation).
_UPSIZE_HEADROOM = 1.15


class QosPartiesPolicy(PartitioningPolicy):
    """Upsize violating LC services, downsize over-provisioned ones."""

    name = "QoS-PARTIES"

    def __init__(
        self,
        space: ConfigurationSpace,
        jobs: Sequence[LatencyCriticalJob],
        goals: Optional[GoalSet] = None,
        decision_every: int = 5,
    ):
        super().__init__(space, goals)
        if len(jobs) != space.n_jobs:
            raise PolicyError(f"{len(jobs)} LC jobs but the space hosts {space.n_jobs}")
        self._jobs = list(jobs)
        self._decision_every = max(1, decision_every)
        self.reset()

    def reset(self) -> None:
        self._current: Optional[Configuration] = None
        self._cursor: Dict[int, int] = {}
        self._tick = 0
        self._ips_ema: Optional[np.ndarray] = None

    def decide(self, observation: Optional[Observation]) -> Configuration:
        if observation is None:
            self._current = self._space.equal_partition()
            self._tick = 0
            return self._current

        # Tail-latency estimates sit on the M/M/1 cliff, where a few
        # percent of IPS noise swings p99 wildly; smooth the capacity
        # estimate before judging QoS (real PARTIES averages multiple
        # monitoring windows for the same reason).
        measured = np.asarray(observation.ips, dtype=float)
        if self._ips_ema is None:
            self._ips_ema = measured
        else:
            self._ips_ema = 0.6 * self._ips_ema + 0.4 * measured

        self._tick += 1
        if self._tick % self._decision_every != 0:
            return self._current

        t = observation.time_s
        headrooms = np.array(
            [job.headroom(self._ips_ema[j], t) for j, job in enumerate(self._jobs)]
        )

        violators = [j for j in range(len(self._jobs)) if headrooms[j] < _UPSIZE_HEADROOM]
        if violators:
            # Upsize the worst violator from the most-slack donor —
            # but never rob another (near-)violator: stealing from a
            # service that is itself short only propagates the
            # violation (PARTIES declares such points infeasible and
            # holds instead).
            receiver = int(min(violators, key=lambda j: headrooms[j]))
            eligible = headrooms >= _UPSIZE_HEADROOM
            eligible[receiver] = False
            if eligible.any():
                move = self._upsize(receiver, headrooms, eligible)
                if move is not None:
                    self._current = move
            return self._current

        # Everyone satisfied: hold unless someone is simultaneously
        # close to the edge while another is heavily over-provisioned —
        # gratuitous rebalancing only churns allocations (and real
        # reconfigurations are not free).
        donor = int(np.argmax(headrooms))
        receiver = int(np.argmin(headrooms))
        if (
            donor != receiver
            and headrooms[donor] > _DOWNSIZE_HEADROOM
            and headrooms[receiver] < 1.5
        ):
            move = self._move_one_unit(donor, receiver)
            if move is not None:
                self._current = move
        return self._current

    def diagnostics(self) -> Dict[str, float]:
        return {f"cursor_job{j}": float(c) for j, c in sorted(self._cursor.items())}

    def qos_report(self, observation: Observation) -> List[bool]:
        """Per-job QoS satisfaction for one observation."""
        return [
            job.meets_qos(observation.ips[j], observation.time_s)
            for j, job in enumerate(self._jobs)
        ]

    def _upsize(
        self, receiver: int, headrooms: np.ndarray, eligible: np.ndarray
    ) -> Optional[Configuration]:
        """One-resource-at-a-time upsizing (the PARTIES FSM step)."""
        donors = np.argsort(headrooms)[::-1]
        for donor in donors:
            donor = int(donor)
            if donor == receiver or not eligible[donor]:
                continue
            move = self._move_one_unit(donor, receiver)
            if move is not None:
                return move
        return None

    def _move_one_unit(self, donor: int, receiver: int) -> Optional[Configuration]:
        """Move one unit of the receiver's cursor resource, advancing it.

        PARTIES explores one resource dimension at a time per service;
        the per-job cursor reproduces that rotation.
        """
        names = self._space.resource_names
        start = self._cursor.get(receiver, 0)
        for offset in range(len(names)):
            resource = names[(start + offset) % len(names)]
            units = self._current.units(resource)
            min_units = self._space.catalog.get(resource).min_units
            if units[donor] - 1 >= min_units:
                self._cursor[receiver] = (start + offset + 1) % len(names)
                return self._current.move_unit(resource, donor, receiver)
        return None
