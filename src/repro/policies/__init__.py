"""Partitioning policies: SATORI's competitors and reference points."""

from repro.policies.base import PartitioningPolicy
from repro.policies.bopf import BoPFPolicy
from repro.policies.copart import CoPartPolicy
from repro.policies.dcat import DCatPolicy
from repro.policies.oracle import (
    DEFAULT_MAX_CONFIGS,
    OraclePolicy,
    OracleResult,
    OracleSearch,
    balanced_oracle,
)
from repro.policies.parties import PartiesPolicy
from repro.policies.qos_parties import QosPartiesPolicy
from repro.policies.random_search import RandomSearchPolicy
from repro.policies.registry import (
    PolicyBuilder,
    make_policy,
    policy_is_qos_aware,
    policy_names,
    register_policy,
)
from repro.policies.static import (
    EqualPartitionPolicy,
    FixedConfigurationPolicy,
    UnmanagedPolicy,
)

__all__ = [
    "BoPFPolicy",
    "CoPartPolicy",
    "DCatPolicy",
    "DEFAULT_MAX_CONFIGS",
    "EqualPartitionPolicy",
    "FixedConfigurationPolicy",
    "OraclePolicy",
    "OracleResult",
    "OracleSearch",
    "PartiesPolicy",
    "PartitioningPolicy",
    "PolicyBuilder",
    "QosPartiesPolicy",
    "RandomSearchPolicy",
    "UnmanagedPolicy",
    "balanced_oracle",
    "make_policy",
    "policy_is_qos_aware",
    "policy_names",
    "register_policy",
]
