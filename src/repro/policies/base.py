"""The partitioning-policy protocol shared by SATORI and all baselines.

A policy is an online controller: once per control interval it
receives the previous interval's :class:`~repro.system.Observation`
and returns the configuration to install for the next interval. The
first call receives ``None`` (nothing has run yet). Policies declare
which resources they control; resources outside that set stay shared
and are subject to the simulator's contention model — this is how
dCAT (LLC only) and CoPart (LLC + memory bandwidth) differ from the
all-resource policies.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

from repro.errors import PolicyError
from repro.metrics.goals import GoalSet
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.state import STATE_VERSION, PolicyState
from repro.system.simulation import Observation


class PartitioningPolicy(abc.ABC):
    """Base class for online resource-partitioning policies.

    Args:
        space: the configuration space over the resources this policy
            controls (possibly a subset of the server's catalog).
        goals: metric choices used to score observations.
    """

    #: Human-readable policy name, set by subclasses.
    name: str = "policy"

    #: Kind tag stamped into :class:`~repro.state.PolicyState`
    #: snapshots; ``None`` marks a stateless policy (snapshots to
    #: ``None``, restores nothing).
    state_kind: Optional[str] = None

    def __init__(self, space: ConfigurationSpace, goals: Optional[GoalSet] = None):
        self._space = space
        self._goals = goals or GoalSet()

    @property
    def space(self) -> ConfigurationSpace:
        return self._space

    @property
    def goals(self) -> GoalSet:
        return self._goals

    @property
    def controlled_resources(self) -> Tuple[str, ...]:
        """Resource names this policy actively partitions."""
        return self._space.resource_names

    @abc.abstractmethod
    def decide(self, observation: Optional[Observation]) -> Configuration:
        """Return the configuration for the next control interval.

        Args:
            observation: measurements from the previous interval, or
                ``None`` on the first call.
        """

    def reset(self) -> None:
        """Clear adaptive state (called between experiment runs)."""

    # -- snapshot / restore ----------------------------------------------

    def snapshot(self) -> Optional[PolicyState]:
        """The policy's serializable state, or ``None`` if stateless.

        Stateful policies override this (together with :meth:`restore`)
        so their accumulated state — GP posterior, sample records,
        scheduler position, RNG streams — can cross run boundaries.
        The contract: ``restore(snapshot())`` on a compatibly
        constructed instance (same space, same constructor kwargs) must
        continue **bit-identically** to never tearing the policy down.
        """
        return None

    def restore(self, state: Optional[PolicyState]) -> None:
        """Resume from a :meth:`snapshot`; ``None`` is a no-op.

        The default implementation serves stateless policies: it
        accepts ``None`` silently and rejects any actual state, so a
        snapshot can never silently vanish into a policy that does not
        implement the protocol.
        """
        if state is None:
            return
        raise PolicyError(
            f"{type(self).__name__} is stateless and cannot restore "
            f"{state.policy!r} policy state"
        )

    def _check_state(self, state: PolicyState) -> None:
        """Shared validation for stateful :meth:`restore` overrides."""
        if self.state_kind is None or state.policy != self.state_kind:
            raise PolicyError(
                f"cannot restore {state.policy!r} state into {type(self).__name__} "
                f"(expects {self.state_kind!r})"
            )
        if state.version > STATE_VERSION:
            raise PolicyError(
                f"{state.policy} state version {state.version} is newer than "
                f"this code understands ({STATE_VERSION})"
            )

    def diagnostics(self) -> Dict[str, float]:
        """Introspection values recorded into telemetry ``extra`` fields.

        Subclasses override to expose internals (SATORI reports its
        weights, objective value, and proxy-model change here).
        """
        return {}

    def _scores(self, observation: Observation):
        """Goal scores of an observation under this policy's metrics.

        Degenerate measurements (e.g. every job at zero IPS after a
        mass crash under fault injection) make the fairness CoV raise
        :class:`~repro.errors.ExperimentError` — a naive controller
        *should* fall over on them; surviving such intervals is what
        the hardened SATORI validation gate is for.
        """
        if observation is None:
            raise PolicyError("no observation to score")
        return self._goals.scores(observation.ips, observation.isolation_ips)
