"""dCAT baseline: dynamic single-resource (LLC) partitioning for throughput.

Reimplementation of the strategy of dCat (Xu et al., EuroSys'18) as
characterized in the paper (Sec. I, IV): LLC ways are reallocated
dynamically among co-located workloads to maximize throughput. Jobs
are classified as cache "receivers" or "donors" from hardware
monitoring — Intel MBM memory-traffic counters (high traffic = many
LLC misses = wants more cache) and the measured IPS response to past
moves — and ways flow from donors to receivers one at a time. Cores
and memory bandwidth are left shared: dCAT controls one resource only.

Being throughput-driven, dCAT concentrates cache on the jobs that
convert it into IPS (or that merely *look* hungry by missing a lot),
which is exactly why it lands low on fairness in the paper's
evaluation: starved cache-sensitive victims are acceptable collateral
to a throughput-only objective.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import PolicyError
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.resources.types import LLC_WAYS
from repro.rng import SeedLike, make_rng
from repro.system.simulation import Observation

#: EMA factor for the per-job way-utility estimate learned from moves.
_UTILITY_EMA = 0.5

#: A trial that dropped system throughput by more than this fraction is
#: reverted (real dCAT's regression guard).
_REVERT_THRESHOLD = 0.01

#: Intervals between reallocation attempts (dCAT acts on epochs, not on
#: every 100 ms sample).
_EPOCH_INTERVALS = 3


class DCatPolicy(PartitioningPolicy):
    """Miss-driven donor/receiver LLC-way reallocation for throughput."""

    name = "dCAT"

    def __init__(self, space: ConfigurationSpace, goals: GoalSet = None, rng: SeedLike = None):
        super().__init__(space, goals)
        if space.resource_names != (LLC_WAYS,):
            raise PolicyError(
                f"dCAT controls exactly {LLC_WAYS!r}; build its space from "
                f"catalog.subset([LLC_WAYS]) (got {space.resource_names})"
            )
        self._rng = make_rng(rng)
        self.reset()

    def reset(self) -> None:
        self._current: Optional[Configuration] = None
        self._trial: Optional[Tuple[Configuration, int, int]] = None
        self._last_score: Optional[float] = None
        self._utility: Dict[int, float] = {}
        self._tick = 0

    def decide(self, observation: Optional[Observation]) -> Configuration:
        if observation is None:
            self._current = self._space.equal_partition()
            self._tick = 0
            return self._current

        self._tick += 1
        if self._tick % _EPOCH_INTERVALS != 0:
            active = self._trial[0] if self._trial is not None else self._current
            return active

        score = self._scores(observation).throughput

        if self._trial is not None:
            trial_config, donor, receiver = self._trial
            reference = self._last_score if self._last_score is not None else score
            delta = score - reference
            self._credit(receiver, delta)
            self._credit(donor, -delta)
            if delta >= -_REVERT_THRESHOLD * max(reference, 1e-9):
                # Keep anything that did not measurably regress: dCAT
                # is greedy about concentrating cache on receivers.
                self._current = trial_config
                self._last_score = score
            self._trial = None
            return self._current

        self._last_score = score
        move = self._pick_move(observation)
        if move is None:
            return self._current
        donor, receiver = move
        trial_config = self._current.move_unit(LLC_WAYS, donor, receiver)
        self._trial = (trial_config, donor, receiver)
        return trial_config

    def diagnostics(self) -> Dict[str, float]:
        return {f"utility_job{j}": u for j, u in sorted(self._utility.items())}

    def _pick_move(self, observation: Observation) -> Optional[Tuple[int, int]]:
        """Receiver = hungriest job, donor = least hungry.

        Hunger combines the RDT monitoring signals real dCAT uses:
        a job that fills its current allocation (CMT occupancy close
        to its share) and still misses a lot (high MBM traffic) wants
        more cache; a job that leaves its allocation unused is a
        donor. The learned IPS utility of past moves breaks ties.
        """
        n = self._space.n_jobs
        units = self._current.units(LLC_WAYS)
        min_units = self._space.catalog.get(LLC_WAYS).min_units
        donors = [j for j in range(n) if units[j] - 1 >= min_units]
        if not donors:
            return None

        traffic = np.asarray(observation.memory_bandwidth_bytes_s or [0.0] * n, dtype=float)
        if traffic.max() <= 0:
            traffic = np.ones(n)
        occupancy = np.asarray(observation.llc_occupancy_bytes or [0.0] * n, dtype=float)
        way_bytes = self._space.catalog.get(LLC_WAYS).unit_capacity
        allocated = np.asarray(units, dtype=float) * way_bytes
        utilization = np.clip(occupancy / np.maximum(allocated, 1.0), 0.0, 1.0)

        hunger = (traffic / traffic.max()) * utilization
        for j in range(n):
            hunger[j] += self._utility.get(j, 0.0) * 10.0

        receiver = int(np.argmax(hunger))
        donor_candidates = [j for j in donors if j != receiver]
        if not donor_candidates:
            return None
        donor = min(donor_candidates, key=lambda j: hunger[j] + 0.5 * utilization[j])
        return donor, receiver

    def _credit(self, job: int, delta: float) -> None:
        old = self._utility.get(job, 0.0)
        self._utility[job] = (1 - _UTILITY_EMA) * old + _UTILITY_EMA * delta
