"""PARTIES-style baseline: gradient descent, one resource at a time.

Reimplementation of the strategy of PARTIES (Chen et al., ASPLOS'19)
as the paper adapts it (Sec. IV): resource partitioning "in a gradient
descent style where partitioning of one resource is explored first
before adjusting the allocations for other resources", modified to
"maximize both throughput and fairness, giving equal priority to
both" (objective ``0.5*T + 0.5*F``).

The controller walks the resource dimensions cyclically. Within the
current dimension it proposes unit moves (primary direction: from the
currently fastest job to the slowest, which raises fairness and
usually throughput; secondary: the reverse), keeps a move whose
measured objective improved, and advances to the next dimension once
neither direction helps. This one-dimension-at-a-time exploration is
exactly the structural property SATORI's joint BO search improves on —
and why PARTIES lands in local maxima more often as the co-location
degree grows (Sec. V, scalability).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.system.simulation import Observation


class PartiesPolicy(PartitioningPolicy):
    """One-dimension-at-a-time gradient descent on ``0.5*T + 0.5*F``."""

    name = "PARTIES"

    def __init__(
        self,
        space: ConfigurationSpace,
        goals: GoalSet = None,
        w_throughput: float = 0.5,
        w_fairness: float = 0.5,
        decision_every: int = 5,
    ):
        """``decision_every`` is the number of 0.1 s monitoring intervals
        between adjustments (default 5 = the original PARTIES' 0.5 s
        upsize/downsize cadence; it waits for an adjustment's effect to
        stabilize before judging it)."""
        super().__init__(space, goals)
        total = w_throughput + w_fairness
        self._w_t = w_throughput / total
        self._w_f = w_fairness / total
        self._decision_every = max(1, decision_every)
        self.reset()

    def reset(self) -> None:
        self._current: Optional[Configuration] = None
        self._trial: Optional[Configuration] = None
        self._last_score: Optional[float] = None
        self._cursor = 0
        self._direction = 0  # 0 = fast->slow move, 1 = slow->fast move
        self._moves_accepted = 0
        self._moves_rejected = 0
        self._tick = 0

    def decide(self, observation: Optional[Observation]) -> Configuration:
        if observation is None:
            self._current = self._space.equal_partition()
            self._tick = 0
            return self._current

        # Hold between decision points so each adjustment's effect
        # stabilizes before it is judged (original PARTIES cadence).
        self._tick += 1
        if self._tick % self._decision_every != 0:
            return self._trial if self._trial is not None else self._current

        scores = self._scores(observation)
        objective = scores.weighted(self._w_t, self._w_f)
        job_speedups = np.asarray(observation.ips) / np.asarray(observation.isolation_ips)

        if self._trial is not None:
            reference = self._last_score if self._last_score is not None else objective
            if objective > reference:
                # Keep climbing this dimension in the same direction.
                self._current = self._trial
                self._last_score = objective
                self._moves_accepted += 1
            else:
                # Revert and rotate: try the other direction, then the
                # next resource dimension.
                self._moves_rejected += 1
                self._advance_direction()
            self._trial = None
            return self._current

        self._last_score = objective
        trial = self._propose(job_speedups)
        if trial is None:
            self._advance_direction()
            return self._current
        self._trial = trial
        return trial

    def diagnostics(self) -> Dict[str, float]:
        return {
            "moves_accepted": float(self._moves_accepted),
            "moves_rejected": float(self._moves_rejected),
            "resource_cursor": float(self._cursor),
        }

    def _propose(self, job_speedups: np.ndarray) -> Optional[Configuration]:
        """A one-unit move in the current dimension and direction."""
        resource = self._space.resource_names[self._cursor]
        units = self._current.units(resource)
        min_units = self._space.catalog.get(resource).min_units
        order = np.argsort(job_speedups)
        slow, fast = int(order[0]), int(order[-1])
        if slow == fast:
            return None
        donor, receiver = (fast, slow) if self._direction == 0 else (slow, fast)
        if units[donor] - 1 < min_units:
            donor, receiver = receiver, donor
            if units[donor] - 1 < min_units:
                return None
        return self._current.move_unit(resource, donor, receiver)

    def _advance_direction(self) -> None:
        """Exhaust both directions of a dimension before moving on."""
        if self._direction == 0:
            self._direction = 1
        else:
            self._direction = 0
            self._cursor = (self._cursor + 1) % len(self._space.resource_names)
