"""BoPF: bounded-priority fairness for mixed batch/qos co-location.

BoPF (PAPERS.md) observes that bursty latency-critical tenants need
*short-term* guarantees while long-term fairness should still govern
steady state. This policy reproduces that two-phase structure on top
of the SATORI controller:

* **Guarantee phase** — while a qos job's smoothed speedup sits below
  its SLO floor, the policy escalates a bounded *priority tilt*: the
  inner controller scores every sample as if the qos jobs' isolation
  baselines were inflated by ``1 + level * boost_step`` (see
  :meth:`~repro.core.controller.SatoriController.set_baseline_tilt`).
  Under SATORI's own equalization objective a job that looks further
  from parity draws resources, so the controller itself reallocates
  toward the violating qos jobs — no configuration is ever
  overridden, and every sample the BO records was measured under the
  configuration it proposed. Because the tilt is a *scoring context*
  rather than a doctored measurement, the controller rescores its
  entire sample book whenever the level changes: its belief about
  every configuration shifts atomically, and the acquisition argmax
  moves immediately instead of waiting to re-visit old points. The
  tilt escalates one level per control interval and is capped at
  ``boost_budget`` levels: qos jobs get priority, never capture.
* **Fairness phase** — once the worst qos job clears the floor with
  hysteresis headroom, the tilt decays one level per interval back to
  zero; the record book is rescored back to the untilted objective
  and the policy *is* plain SATORI, bit for bit.

The two phases realize the paper's short-term/long-term split: the
tilt sacrifices short-term batch throughput for the qos guarantee,
while the long-term objective (and the controller's sample cadence,
scheduler position, and learned model) remain SATORI's. The rescore
mechanism is the paper's "software-based reconstruction of the proxy
model" (Sec. III-B) taken one level deeper — the same trick that lets
weights change without re-running configurations lets guarantees
change without poisoning the GP.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import PolicyError
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.rng import SeedLike
from repro.state import PolicyState
from repro.system.simulation import Observation

#: Violation threshold relative to the floor. Exactly 1.0: the tilt is
#: a corrective mechanism, not a cushion — engaging while the floor is
#: technically met (to buy headroom) costs more in optimizer churn
#: than the headroom is worth, because every engagement rescores the
#: record book and wakes the idle latch.
_FLOOR_MARGIN = 1.0

#: Decay hysteresis: the tilt shrinks only once the worst qos job
#: clears the floor by this factor, preventing escalate/decay thrash.
_DECAY_MARGIN = 1.15

#: EMA smoothing for the per-job speedup estimate. Deliberately slow:
#: the dominant transient in the signal is not scheduling but *stale
#: baselines* — a program-phase change craters the measured speedup
#: until the next baseline re-measurement, and the guarantee loop must
#: ride through that artifact rather than slam the tilt around it.
_EMA_KEEP = 0.75

#: Control intervals between tilt escalations. Each level change
#: rescores the record book and wakes the optimizer; escalating every
#: interval would change the objective faster than the BO can chase it.
_ESCALATE_EVERY = 3

#: Futility back-off: consecutive fully-tilted intervals without the
#: worst qos EMA improving by more than ``_STALL_EPS`` before the tilt
#: is released entirely for ``_COOLDOWN`` intervals. A saturated qos
#: job (its speedup cannot reach the tilted target no matter the
#: allocation) must not drag the whole node down chasing an
#: unreachable equalization point — bounded priority includes bounding
#: the sacrifice when the guarantee is infeasible. The release is a
#: *cooldown*, not a surrender: program phases shift on second
#: timescales, and a floor that is infeasible in this phase is often
#: feasible in the next, so the guarantee machinery re-arms once the
#: cooldown expires.
_STALL_LIMIT = 8
_STALL_EPS = 0.02
_COOLDOWN = 30

#: Consecutive violating intervals required before the *first* tilt
#: level engages. A fresh session's EMA needs a few intervals to mean
#: anything, and a transient dip (phase change, migration warm-up)
#: should not trigger a full escalate/stall/back-off cycle.
_PATIENCE = 6


class BoPFPolicy(PartitioningPolicy):
    """Short-term qos guarantees bounded inside long-term SATORI fairness.

    Args:
        space: configuration space over the controlled resources.
        goals: metric choices (forwarded to the inner controller).
        qos_jobs: slot indices (0-based positions in the mix) of the
            qos-kind jobs this node hosts. Empty means the policy
            degenerates to plain SATORI.
        min_speedup: the SLO floor boosted jobs are held to (see
            :class:`repro.qos.SLOSpec`).
        boost_budget: maximum tilt levels the guarantee phase may
            escalate to — the bound in "bounded priority".
        boost_step: priority added per tilt level; at level ``k`` the
            qos baselines are inflated by ``1 + k * boost_step``, so
            equalization targets roughly that multiple of the batch
            jobs' speedup for the violators.
        rng: seed for the inner controller.

    Remaining keyword arguments are forwarded to
    :class:`~repro.core.controller.SatoriController`.
    """

    name = "BoPF"
    state_kind = "BoPF"

    def __init__(
        self,
        space: ConfigurationSpace,
        goals: Optional[GoalSet] = None,
        qos_jobs: Sequence[int] = (),
        min_speedup: float = 0.7,
        boost_budget: int = 3,
        boost_step: float = 0.2,
        rng: SeedLike = None,
        **satori_kwargs,
    ):
        # Imported lazily for the same reason as the registry's SATORI
        # builder: repro.core.controller imports the policy base.
        from repro.core.controller import SatoriController

        super().__init__(space, goals)
        if boost_budget < 0:
            raise PolicyError(f"boost_budget must be >= 0, got {boost_budget}")
        if boost_step <= 0:
            raise PolicyError(f"boost_step must be > 0, got {boost_step}")
        if not 0.0 < min_speedup <= 1.0:
            raise PolicyError(f"min_speedup must be in (0, 1], got {min_speedup}")
        qos = tuple(sorted(int(j) for j in qos_jobs))
        if any(j < 0 or j >= space.n_jobs for j in qos):
            raise PolicyError(
                f"qos job slots {qos} out of range for {space.n_jobs} jobs"
            )
        self._qos_jobs = qos
        self._min_speedup = float(min_speedup)
        self._boost_budget = int(boost_budget)
        self._boost_step = float(boost_step)
        self._inner = SatoriController(space, goals, rng=rng, **satori_kwargs)
        self.reset()

    def reset(self) -> None:
        self._inner.reset()
        self._tick = 0
        self._level = 0
        self._cooldown = 0
        self._stall = 0
        self._stall_best = 0.0
        self._violating_streak = 0
        self._total_boosts = 0
        self._ema: Optional[np.ndarray] = None

    # -- decision path ---------------------------------------------------

    def decide(self, observation: Optional[Observation]) -> Configuration:
        if observation is None:
            # Session (re)start: the EMA is stale, but the tilt level
            # is kept — a warm restart must not silently drop an
            # active guarantee.
            self._ema = None
            self._apply_tilt()
            return self._inner.decide(None)

        self._update_ema(observation)
        self._tick += 1

        worst = self._worst_qos_speedup()
        if self._inner.probing:
            # The inner controller is still draining its initial probe
            # set: speedups reflect deliberately diverse configurations,
            # not its best belief. Reacting to them would escalate a
            # tilt against a violation that probing itself caused (and
            # bake mis-scored records into the young model). Hold the
            # tilt machinery until the controller is actually steering.
            worst = None
            self._violating_streak = 0
        if worst is not None:
            if worst < self._min_speedup * _FLOOR_MARGIN:
                self._violating_streak += 1
                if self._cooldown > 0:
                    # A full-tilt attempt just went nowhere; let the
                    # phase move on before trying again.
                    self._cooldown -= 1
                elif self._violating_streak < _PATIENCE:
                    pass
                elif self._level < self._boost_budget:
                    # Escalate on a fixed cadence so the optimizer gets
                    # a few intervals to chase each objective shift.
                    if (self._violating_streak - _PATIENCE) % _ESCALATE_EVERY == 0:
                        self._level += 1
                        self._total_boosts += 1
                        self._stall = 0
                        self._stall_best = worst
                elif self._level > 0:
                    # Fully tilted yet still violating: demand progress
                    # or back off entirely (see _STALL_LIMIT above).
                    if worst > self._stall_best + _STALL_EPS:
                        self._stall = 0
                        self._stall_best = worst
                    else:
                        self._stall += 1
                        if self._stall >= _STALL_LIMIT:
                            self._level = 0
                            self._stall = 0
                            self._cooldown = _COOLDOWN
            elif worst > self._min_speedup * _DECAY_MARGIN:
                self._violating_streak = 0
                if self._level > 0:
                    self._level -= 1
                # The floor is comfortably met — the regime that made
                # escalation futile (if any) has passed.
                self._cooldown = 0
                self._stall = 0
            else:
                self._violating_streak = 0

        self._apply_tilt()
        return self._inner.decide(observation)

    def _update_ema(self, observation: Observation) -> None:
        iso = np.asarray(observation.isolation_ips, dtype=float)
        ips = np.asarray(observation.ips, dtype=float)
        measured = np.divide(
            ips, iso, out=np.zeros_like(ips), where=iso > 0
        )
        if self._ema is None or len(self._ema) != len(measured):
            self._ema = measured
        else:
            self._ema = _EMA_KEEP * self._ema + (1.0 - _EMA_KEEP) * measured

    def _worst_qos_speedup(self) -> Optional[float]:
        """Smoothed speedup of the worst-off qos job (``None`` if unknown)."""
        if self._ema is None or not self._qos_jobs:
            return None
        values = [self._ema[j] for j in self._qos_jobs if j < len(self._ema)]
        return min(values) if values else None

    def _apply_tilt(self) -> None:
        """Install the current tilt level as the inner scoring context.

        At tilt level ``k`` every qos job's isolation baseline is
        scored inflated by ``1 + k * boost_step``: its speedup *as
        scored by the controller* shrinks by that factor, so
        equalization pulls resources toward it until the measured
        speedup sits near the tilt multiple of the batch jobs'. The
        controller rescores its whole record book on every level
        change (a no-op when the level is unchanged).
        """
        if self._level <= 0 or not self._qos_jobs:
            self._inner.set_baseline_tilt(None)
            return
        factor = 1.0 + self._level * self._boost_step
        qos = set(self._qos_jobs)
        self._inner.set_baseline_tilt(
            tuple(
                factor if slot in qos else 1.0
                for slot in range(self._space.n_jobs)
            )
        )

    # -- introspection ---------------------------------------------------

    def diagnostics(self) -> Dict[str, float]:
        out = dict(self._inner.diagnostics())
        out["bopf_boosts_total"] = float(self._total_boosts)
        out["bopf_tilt_level"] = float(self._level)
        out["bopf_cooldown"] = float(self._cooldown)
        out["bopf_qos_jobs"] = float(len(self._qos_jobs))
        worst = self._worst_qos_speedup()
        if worst is not None:
            out["bopf_worst_qos_speedup"] = float(worst)
        return out

    # -- snapshot / restore ----------------------------------------------

    def snapshot(self) -> PolicyState:
        payload = {
            "tick": self._tick,
            "level": self._level,
            "cooldown": self._cooldown,
            "stall": self._stall,
            "stall_best": self._stall_best,
            "violating_streak": self._violating_streak,
            "total_boosts": self._total_boosts,
            "ema": None if self._ema is None else [float(v) for v in self._ema],
            "inner": self._inner.snapshot().to_dict(),
        }
        return PolicyState(policy=self.state_kind, payload=payload)

    def restore(self, state: Optional[PolicyState]) -> None:
        if state is None:
            return
        self._check_state(state)
        payload = state.payload_dict()
        self._tick = int(payload["tick"])
        self._level = int(payload.get("level", 0))
        self._cooldown = int(payload.get("cooldown", 0))
        self._stall = int(payload.get("stall", 0))
        self._stall_best = float(payload.get("stall_best", 0.0))
        self._violating_streak = int(payload.get("violating_streak", 0))
        self._total_boosts = int(payload.get("total_boosts", 0))
        ema = payload.get("ema")
        self._ema = None if ema is None else np.asarray(ema, dtype=float)
        self._inner.restore(PolicyState.from_dict(payload["inner"]))
        # The inner snapshot carries its own tilt, but the wrapper owns
        # the level — re-installing keeps them agreed (and rescoring is
        # a no-op when they already do).
        self._apply_tilt()
