"""Non-adaptive reference policies.

* :class:`EqualPartitionPolicy` — install the equal split once and
  never move (a sanity baseline; also SATORI's ``S_init``).
* :class:`FixedConfigurationPolicy` — hold an arbitrary fixed
  configuration (used by characterization experiments that compare
  specific configurations, e.g. Fig. 3).
* :class:`UnmanagedPolicy` — no partitioning at all: every resource is
  shared and the contention model applies. This is the paper's
  "baseline (unmanaged partitioning of the resources)".
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.system.simulation import Observation


class EqualPartitionPolicy(PartitioningPolicy):
    """Split every controlled resource equally, once."""

    name = "Equal Partition"

    def decide(self, observation: Optional[Observation]) -> Configuration:
        return self._space.equal_partition()


class FixedConfigurationPolicy(PartitioningPolicy):
    """Hold one fixed configuration for the whole run."""

    name = "Fixed"

    def __init__(self, space: ConfigurationSpace, config: Configuration, goals: GoalSet = None):
        super().__init__(space, goals)
        config.validate(space.catalog)
        self._config = config
        self.name = f"Fixed({config!r})"

    def decide(self, observation: Optional[Observation]) -> Configuration:
        return self._config


class UnmanagedPolicy(PartitioningPolicy):
    """No partitioning: all resources shared (contention applies)."""

    name = "Unmanaged"

    def decide(self, observation: Optional[Observation]) -> Optional[Configuration]:
        return None

    @property
    def controlled_resources(self):
        return ()
