"""CoPart baseline: coordinated per-resource FSMs for fairness.

Reimplementation of the strategy of CoPart (Park et al., EuroSys'19)
as characterized in the paper: two *separate* finite state machines —
one for LLC ways, one for memory bandwidth — that are "not joint or
linked but are aware of each other's decisions". Each FSM equalizes
slowdowns: it takes one unit from the currently least-slowed job and
gives it to the most-slowed job. Fairness is the primary goal;
throughput is only protected by hysteresis (an FSM that just worsened
fairness backs off for a few intervals).

Cores are left shared: CoPart partitions LLC + memory bandwidth only.
The FSMs alternate (LLC on even decisions, bandwidth on odd) — the
coordination mechanism that keeps their decisions mutually visible
without joint exploration, which is precisely the structural
limitation SATORI's joint BO search removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import PolicyError
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.resources.types import LLC_WAYS, MEMORY_BANDWIDTH
from repro.system.simulation import Observation

#: Minimum max-min speedup gap before an FSM acts. CoPart classifies
#: apps into coarse slowdown groups; it stops reacting once slowdowns
#: look similar at that granularity.
_GAP_THRESHOLD = 0.08

#: Intervals an FSM stays in back-off after a move that hurt fairness.
_BACKOFF_INTERVALS = 5


@dataclass
class _FsmState:
    """Per-resource FSM bookkeeping."""

    resource: str
    backoff: int = 0
    last_move: Optional[Tuple[int, int]] = None
    last_fairness: Optional[float] = None


class CoPartPolicy(PartitioningPolicy):
    """Two coordinated slowdown-equalizing FSMs (LLC + bandwidth)."""

    name = "CoPart"

    def __init__(self, space: ConfigurationSpace, goals: GoalSet = None):
        super().__init__(space, goals)
        expected = (LLC_WAYS, MEMORY_BANDWIDTH)
        if tuple(sorted(space.resource_names)) != tuple(sorted(expected)):
            raise PolicyError(
                f"CoPart controls exactly {expected}; build its space from "
                f"catalog.subset([LLC_WAYS, MEMORY_BANDWIDTH]) (got {space.resource_names})"
            )
        self.reset()

    def reset(self) -> None:
        self._current: Optional[Configuration] = None
        self._fsms = [_FsmState(LLC_WAYS), _FsmState(MEMORY_BANDWIDTH)]
        self._turn = 0

    def decide(self, observation: Optional[Observation]) -> Configuration:
        if observation is None:
            self._current = self._space.equal_partition()
            return self._current

        scores = self._scores(observation)
        job_speedups = np.asarray(observation.ips) / np.asarray(observation.isolation_ips)

        fsm = self._fsms[self._turn % len(self._fsms)]
        self._turn += 1
        self._settle(fsm, scores.fairness)

        if fsm.backoff > 0:
            fsm.backoff -= 1
            return self._current

        move = self._equalizing_move(fsm.resource, job_speedups)
        if move is None:
            return self._current
        donor, receiver = move
        # Hysteresis: never immediately undo this FSM's own last move.
        if fsm.last_move == (receiver, donor):
            return self._current

        self._current = self._current.move_unit(fsm.resource, donor, receiver)
        fsm.last_move = (donor, receiver)
        fsm.last_fairness = scores.fairness
        return self._current

    def diagnostics(self) -> Dict[str, float]:
        return {f"backoff_{fsm.resource}": float(fsm.backoff) for fsm in self._fsms}

    def _settle(self, fsm: _FsmState, fairness: float) -> None:
        """Judge this FSM's previous move; back off if it hurt fairness."""
        if fsm.last_fairness is not None and fsm.last_move is not None:
            if fairness < fsm.last_fairness - 1e-3:
                fsm.backoff = _BACKOFF_INTERVALS
                fsm.last_move = None
            fsm.last_fairness = None

    def _equalizing_move(
        self, resource: str, job_speedups: np.ndarray
    ) -> Optional[Tuple[int, int]]:
        """One unit from the least-slowed job to the most-slowed job."""
        if float(np.max(job_speedups) - np.min(job_speedups)) < _GAP_THRESHOLD:
            return None
        units = self._current.units(resource)
        min_units = self._space.catalog.get(resource).min_units
        order = np.argsort(job_speedups)  # most-slowed first
        receiver = int(order[0])
        for donor in reversed(order):
            donor = int(donor)
            if donor != receiver and units[donor] - 1 >= min_units:
                return donor, receiver
        return None
