"""Random search baseline (Sec. IV).

"Samples a configuration stochastically from all possible
configurations using a uniform distribution without repetition. The
sampled configuration is updated every 0.1 second."

Without-repetition is honoured on a best-effort basis: the policy
resamples up to a bounded number of times to avoid a configuration it
has already run; once the space is effectively exhausted it allows
repeats (matching how the real implementation must behave on small
spaces in long runs).
"""

from __future__ import annotations

import json
from typing import Optional, Set

from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.rng import SeedLike, make_rng, rng_from_state, rng_state
from repro.serialize import thaw_data
from repro.state import PolicyState
from repro.system.simulation import Observation

_MAX_RESAMPLES = 16


class RandomSearchPolicy(PartitioningPolicy):
    """Uniform random configuration every interval, avoiding repeats."""

    name = "Random"
    state_kind = "Random"

    def __init__(self, space: ConfigurationSpace, goals: GoalSet = None, rng: SeedLike = None):
        super().__init__(space, goals)
        self._rng = make_rng(rng)
        self._seen: Set[Configuration] = set()

    def decide(self, observation: Optional[Observation]) -> Configuration:
        config = self._space.sample(self._rng)
        for _ in range(_MAX_RESAMPLES):
            if config not in self._seen:
                break
            config = self._space.sample(self._rng)
        self._seen.add(config)
        return config

    def reset(self) -> None:
        self._seen.clear()

    def snapshot(self) -> PolicyState:
        """RNG position + the without-repetition history."""
        seen = sorted(
            (config.to_dict() for config in self._seen),
            key=lambda d: json.dumps(d, sort_keys=True),
        )
        return PolicyState(
            policy=self.state_kind,
            payload={"rng": rng_state(self._rng), "seen": seen},
        )

    def restore(self, state: Optional[PolicyState]) -> None:
        if state is None:
            return
        self._check_state(state)
        payload = state.payload_dict()
        self._rng = rng_from_state(payload["rng"])
        self._seen = {
            Configuration.from_dict(d) for d in thaw_data(payload["seen"])
        }
