"""Policy-factory registry: construct any policy from plain data.

The execution engine (``repro.engine``) fans runs out over worker
processes, so a run specification can only carry *names and kwargs* —
never closures or policy instances, which do not cross process
boundaries. This registry maps a factory id (``"SATORI"``, ``"dCAT"``,
``"Oracle"``, ...) to a module-level builder that constructs a fresh
policy from the mix, catalog, goals, an RNG seed, and JSON-compatible
keyword arguments.

Builders receive the full job mix because some reference policies (the
brute-force Oracle) need the workload models themselves, not just the
job count; ordinary online policies ignore it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import PolicyError
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.policies.copart import CoPartPolicy
from repro.policies.dcat import DCatPolicy
from repro.policies.oracle import OraclePolicy, OracleSearch
from repro.policies.parties import PartiesPolicy
from repro.policies.random_search import RandomSearchPolicy
from repro.policies.static import EqualPartitionPolicy
from repro.resources.space import ConfigurationSpace
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH, ResourceCatalog
from repro.rng import SeedLike, make_rng
from repro.state import PolicyState
from repro.workloads.mixes import JobMix

#: Builder signature: ``(mix, catalog, goals, rng, **kwargs) -> policy``.
PolicyBuilder = Callable[..., PartitioningPolicy]

_BUILDERS: Dict[str, PolicyBuilder] = {}

#: Factory ids whose builders understand the qos kwargs the cluster
#: simulator injects on qos-hosting nodes (``qos_jobs`` slot indices
#: and ``qos_min_speedup``); see :func:`policy_is_qos_aware`.
_QOS_AWARE: set = set()

#: The three resources the paper's full-space policies partition.
FULL_RESOURCES = (CORES, LLC_WAYS, MEMORY_BANDWIDTH)


def register_policy(
    name: str, builder: Optional[PolicyBuilder] = None, qos_aware: bool = False
):
    """Register ``builder`` under ``name`` (usable as a decorator).

    Re-registering a name replaces the previous builder, so downstream
    extensions can override the stock factories. ``qos_aware`` marks
    builders that accept the per-node qos kwargs (``qos_jobs``,
    ``qos_min_speedup``) the cluster layer injects when an SLO is
    active.
    """

    def _register(fn: PolicyBuilder) -> PolicyBuilder:
        _BUILDERS[name] = fn
        if qos_aware:
            _QOS_AWARE.add(name)
        else:
            _QOS_AWARE.discard(name)
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def policy_names() -> Tuple[str, ...]:
    """Registered factory ids, sorted."""
    return tuple(sorted(_BUILDERS))


def policy_is_qos_aware(name: str) -> bool:
    """Whether ``name``'s builder accepts the injected qos kwargs."""
    return name in _QOS_AWARE


def make_policy(
    name: str,
    mix: Optional[JobMix],
    catalog: ResourceCatalog,
    goals: Optional[GoalSet] = None,
    rng: SeedLike = None,
    n_jobs: Optional[int] = None,
    initial_state: Optional[PolicyState] = None,
    **kwargs,
) -> PartitioningPolicy:
    """Build a fresh policy instance from registry id + kwargs.

    Args:
        name: a registered factory id (see :func:`policy_names`).
        mix: the co-located workloads; may be ``None`` for policies
            that only need the job count (pass ``n_jobs`` then).
        catalog: the server's full resource catalog.
        goals: metric choices; defaults to the paper's.
        rng: seed for stochastic policies.
        n_jobs: job count override when ``mix`` is ``None``.
        initial_state: a prior :meth:`PartitioningPolicy.snapshot` to
            warm-start from; restored after construction, so the
            policy's own validation (kind tag, version, mode) gates
            mismatched state.
        kwargs: forwarded to the builder (must be plain data when the
            policy will be constructed in a worker process).
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise PolicyError(
            f"unknown policy factory {name!r}; registered: {', '.join(policy_names())}"
        ) from None
    if mix is None and n_jobs is None:
        raise PolicyError(f"policy factory {name!r} needs a mix or an explicit n_jobs")
    policy = builder(mix, catalog, goals or GoalSet(), rng, _n_jobs(mix, n_jobs), **kwargs)
    if initial_state is not None:
        policy.restore(initial_state)
    return policy


def _n_jobs(mix: Optional[JobMix], n_jobs: Optional[int]) -> int:
    return len(mix) if n_jobs is None else int(n_jobs)


def _space(
    catalog: ResourceCatalog, n_jobs: int, resources: Sequence[str] = FULL_RESOURCES
) -> ConfigurationSpace:
    return ConfigurationSpace(catalog.subset(tuple(resources)), n_jobs)


# -- stock factories -----------------------------------------------------


@register_policy("Random")
def _build_random(mix, catalog, goals, rng, n_jobs, **kwargs):
    return RandomSearchPolicy(_space(catalog, n_jobs), goals, rng=make_rng(rng), **kwargs)


@register_policy("dCAT")
def _build_dcat(mix, catalog, goals, rng, n_jobs, **kwargs):
    return DCatPolicy(_space(catalog, n_jobs, [LLC_WAYS]), goals, rng=make_rng(rng), **kwargs)


@register_policy("CoPart")
def _build_copart(mix, catalog, goals, rng, n_jobs, **kwargs):
    return CoPartPolicy(_space(catalog, n_jobs, [LLC_WAYS, MEMORY_BANDWIDTH]), goals, **kwargs)


@register_policy("PARTIES")
def _build_parties(mix, catalog, goals, rng, n_jobs, **kwargs):
    return PartiesPolicy(_space(catalog, n_jobs), goals, **kwargs)


@register_policy("EqualPartition")
def _build_equal(mix, catalog, goals, rng, n_jobs, **kwargs):
    return EqualPartitionPolicy(_space(catalog, n_jobs), goals, **kwargs)


@register_policy("SATORI")
def _build_satori(mix, catalog, goals, rng, n_jobs, resources=None, kernel=None, **kwargs):
    """SATORI with optional resource restriction and kernel-by-name.

    ``resources`` limits the controlled subset (ablations); ``kernel``
    may be a kernel instance or one of ``"matern52"`` / ``"rbf"`` so
    run specs stay JSON-serializable.
    """
    # Imported lazily: repro.core.controller itself imports policy base
    # classes, and importing it at module scope would cycle through the
    # repro.policies package initializer.
    from repro.core.controller import SatoriController
    from repro.core.kernels import RBF, Matern52

    if isinstance(kernel, str):
        try:
            kernel = {"matern52": Matern52, "rbf": RBF}[kernel.lower()]()
        except KeyError:
            raise PolicyError(
                f"unknown kernel name {kernel!r}; choices: 'matern52', 'rbf'"
            ) from None
    if kernel is not None:
        kwargs["kernel"] = kernel
    space = _space(catalog, n_jobs, tuple(resources) if resources else FULL_RESOURCES)
    return SatoriController(space, goals, rng=make_rng(rng), **kwargs)


@register_policy("BoPF", qos_aware=True)
def _build_bopf(mix, catalog, goals, rng, n_jobs, resources=None, qos_jobs=(),
                qos_min_speedup=0.7, **kwargs):
    """BoPF: bounded short-term qos priority around a SATORI core.

    ``qos_jobs`` / ``qos_min_speedup`` are the kwargs the cluster
    simulator injects per node when an SLO is active; with no qos jobs
    the policy degenerates to plain SATORI behaviour.
    """
    from repro.policies.bopf import BoPFPolicy

    space = _space(catalog, n_jobs, tuple(resources) if resources else FULL_RESOURCES)
    return BoPFPolicy(
        space,
        goals,
        qos_jobs=tuple(qos_jobs),
        min_speedup=qos_min_speedup,
        rng=make_rng(rng),
        **kwargs,
    )


@register_policy("QoSPARTIES", qos_aware=True)
def _build_qos_parties(mix, catalog, goals, rng, n_jobs, qos_jobs=(),
                       qos_min_speedup=0.7, target_p99_ms=20.0, **kwargs):
    """QoS-PARTIES driven by synthesized request profiles.

    The native :class:`~repro.policies.qos_parties.QosPartiesPolicy`
    needs a :class:`LatencyCriticalJob` per mix slot. Qos-kind slots
    get a profile whose offered load makes the p99 target bind exactly
    at ``qos_min_speedup`` of the job's equal-share IPS (the same
    M/M/1 inversion as :func:`repro.qos.min_speedup_for`, run
    forwards); batch slots get a loose, always-satisfied profile so
    they act as donors in the PARTIES FSM.
    """
    from repro.policies.qos_parties import QosPartiesPolicy
    from repro.workloads.latency_critical import (
        _P99_FACTOR,
        LatencyCriticalJob,
        RequestProfile,
    )

    if mix is None:
        raise PolicyError("the QoSPARTIES factory needs the job mix, not just n_jobs")
    qos_slots = {int(j) for j in qos_jobs}
    target_s = target_p99_ms / 1000.0
    ipr = 2e6
    jobs = []
    for slot, workload in enumerate(mix):
        share = max(1, len(mix))
        equal_share_ips = workload.ips_under(
            catalog,
            0.0,
            cores=catalog.get(CORES).units / share,
            llc_ways=catalog.get(LLC_WAYS).units / share,
            bandwidth_units=catalog.get(MEMORY_BANDWIDTH).units / share,
        )
        if slot in qos_slots:
            # Load such that meeting the p99 target needs exactly
            # qos_min_speedup of the equal-share capacity.
            load = max(
                0.0, qos_min_speedup * equal_share_ips / ipr - _P99_FACTOR / target_s
            )
            profile = RequestProfile.constant(ipr, target_s, load)
        else:
            profile = RequestProfile.constant(ipr, 10.0, 0.05 * equal_share_ips / ipr)
        jobs.append(LatencyCriticalJob(workload=workload, profile=profile))
    space = _space(catalog, n_jobs)
    return QosPartiesPolicy(space, jobs, goals, **kwargs)


@register_policy("Oracle")
def _build_oracle(mix, catalog, goals, rng, n_jobs, w_throughput=0.5, w_fairness=0.5,
                  label=None, **kwargs):
    if mix is None:
        raise PolicyError("the Oracle factory needs the job mix, not just n_jobs")
    search = OracleSearch(mix, catalog, goals, **kwargs)
    return OraclePolicy(search, w_throughput, w_fairness, label=label)
