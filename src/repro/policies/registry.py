"""Policy-factory registry: construct any policy from plain data.

The execution engine (``repro.engine``) fans runs out over worker
processes, so a run specification can only carry *names and kwargs* —
never closures or policy instances, which do not cross process
boundaries. This registry maps a factory id (``"SATORI"``, ``"dCAT"``,
``"Oracle"``, ...) to a module-level builder that constructs a fresh
policy from the mix, catalog, goals, an RNG seed, and JSON-compatible
keyword arguments.

Builders receive the full job mix because some reference policies (the
brute-force Oracle) need the workload models themselves, not just the
job count; ordinary online policies ignore it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import PolicyError
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.policies.copart import CoPartPolicy
from repro.policies.dcat import DCatPolicy
from repro.policies.oracle import OraclePolicy, OracleSearch
from repro.policies.parties import PartiesPolicy
from repro.policies.random_search import RandomSearchPolicy
from repro.policies.static import EqualPartitionPolicy
from repro.resources.space import ConfigurationSpace
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH, ResourceCatalog
from repro.rng import SeedLike, make_rng
from repro.state import PolicyState
from repro.workloads.mixes import JobMix

#: Builder signature: ``(mix, catalog, goals, rng, **kwargs) -> policy``.
PolicyBuilder = Callable[..., PartitioningPolicy]

_BUILDERS: Dict[str, PolicyBuilder] = {}

#: The three resources the paper's full-space policies partition.
FULL_RESOURCES = (CORES, LLC_WAYS, MEMORY_BANDWIDTH)


def register_policy(name: str, builder: Optional[PolicyBuilder] = None):
    """Register ``builder`` under ``name`` (usable as a decorator).

    Re-registering a name replaces the previous builder, so downstream
    extensions can override the stock factories.
    """

    def _register(fn: PolicyBuilder) -> PolicyBuilder:
        _BUILDERS[name] = fn
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def policy_names() -> Tuple[str, ...]:
    """Registered factory ids, sorted."""
    return tuple(sorted(_BUILDERS))


def make_policy(
    name: str,
    mix: Optional[JobMix],
    catalog: ResourceCatalog,
    goals: Optional[GoalSet] = None,
    rng: SeedLike = None,
    n_jobs: Optional[int] = None,
    initial_state: Optional[PolicyState] = None,
    **kwargs,
) -> PartitioningPolicy:
    """Build a fresh policy instance from registry id + kwargs.

    Args:
        name: a registered factory id (see :func:`policy_names`).
        mix: the co-located workloads; may be ``None`` for policies
            that only need the job count (pass ``n_jobs`` then).
        catalog: the server's full resource catalog.
        goals: metric choices; defaults to the paper's.
        rng: seed for stochastic policies.
        n_jobs: job count override when ``mix`` is ``None``.
        initial_state: a prior :meth:`PartitioningPolicy.snapshot` to
            warm-start from; restored after construction, so the
            policy's own validation (kind tag, version, mode) gates
            mismatched state.
        kwargs: forwarded to the builder (must be plain data when the
            policy will be constructed in a worker process).
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise PolicyError(
            f"unknown policy factory {name!r}; registered: {', '.join(policy_names())}"
        ) from None
    if mix is None and n_jobs is None:
        raise PolicyError(f"policy factory {name!r} needs a mix or an explicit n_jobs")
    policy = builder(mix, catalog, goals or GoalSet(), rng, _n_jobs(mix, n_jobs), **kwargs)
    if initial_state is not None:
        policy.restore(initial_state)
    return policy


def _n_jobs(mix: Optional[JobMix], n_jobs: Optional[int]) -> int:
    return len(mix) if n_jobs is None else int(n_jobs)


def _space(
    catalog: ResourceCatalog, n_jobs: int, resources: Sequence[str] = FULL_RESOURCES
) -> ConfigurationSpace:
    return ConfigurationSpace(catalog.subset(tuple(resources)), n_jobs)


# -- stock factories -----------------------------------------------------


@register_policy("Random")
def _build_random(mix, catalog, goals, rng, n_jobs, **kwargs):
    return RandomSearchPolicy(_space(catalog, n_jobs), goals, rng=make_rng(rng), **kwargs)


@register_policy("dCAT")
def _build_dcat(mix, catalog, goals, rng, n_jobs, **kwargs):
    return DCatPolicy(_space(catalog, n_jobs, [LLC_WAYS]), goals, rng=make_rng(rng), **kwargs)


@register_policy("CoPart")
def _build_copart(mix, catalog, goals, rng, n_jobs, **kwargs):
    return CoPartPolicy(_space(catalog, n_jobs, [LLC_WAYS, MEMORY_BANDWIDTH]), goals, **kwargs)


@register_policy("PARTIES")
def _build_parties(mix, catalog, goals, rng, n_jobs, **kwargs):
    return PartiesPolicy(_space(catalog, n_jobs), goals, **kwargs)


@register_policy("EqualPartition")
def _build_equal(mix, catalog, goals, rng, n_jobs, **kwargs):
    return EqualPartitionPolicy(_space(catalog, n_jobs), goals, **kwargs)


@register_policy("SATORI")
def _build_satori(mix, catalog, goals, rng, n_jobs, resources=None, kernel=None, **kwargs):
    """SATORI with optional resource restriction and kernel-by-name.

    ``resources`` limits the controlled subset (ablations); ``kernel``
    may be a kernel instance or one of ``"matern52"`` / ``"rbf"`` so
    run specs stay JSON-serializable.
    """
    # Imported lazily: repro.core.controller itself imports policy base
    # classes, and importing it at module scope would cycle through the
    # repro.policies package initializer.
    from repro.core.controller import SatoriController
    from repro.core.kernels import RBF, Matern52

    if isinstance(kernel, str):
        try:
            kernel = {"matern52": Matern52, "rbf": RBF}[kernel.lower()]()
        except KeyError:
            raise PolicyError(
                f"unknown kernel name {kernel!r}; choices: 'matern52', 'rbf'"
            ) from None
    if kernel is not None:
        kwargs["kernel"] = kernel
    space = _space(catalog, n_jobs, tuple(resources) if resources else FULL_RESOURCES)
    return SatoriController(space, goals, rng=make_rng(rng), **kwargs)


@register_policy("Oracle")
def _build_oracle(mix, catalog, goals, rng, n_jobs, w_throughput=0.5, w_fairness=0.5,
                  label=None, **kwargs):
    if mix is None:
        raise PolicyError("the Oracle factory needs the job mix, not just n_jobs")
    search = OracleSearch(mix, catalog, goals, **kwargs)
    return OraclePolicy(search, w_throughput, w_fairness, label=label)
