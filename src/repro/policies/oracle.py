"""Brute-force Oracle (Sec. IV): exhaustive search over the space.

The paper's Oracle "samples all possible configurations and selects
the one which maximizes a given goal or a combination of goals ...
calculated every 0.1 seconds to account for the phase changes". Three
variants share the machinery and differ only in weights:

* Throughput Oracle — ``W_T = 1, W_F = 0``;
* Fairness Oracle  — ``W_T = 0, W_F = 1``;
* Balanced Oracle  — ``W_T = W_F = 0.5`` (the ceiling all evaluation
  results are normalized against).

On the paper's testbed this search takes hours offline. Here the
workload substrate is an analytic model, so the search is exact and
vectorized: per job, IPS is tabulated over (cores) and (ways x
bandwidth) unit grids, then combined across the cross product of
per-resource compositions with numpy broadcasting. Results are
memoized per *phase key* — the tuple of active phase indices — which
is semantically identical to re-running the exhaustive search every
interval, because the true objective only changes when some job
changes phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PolicyError
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH, ResourceCatalog
from repro.system.simulation import Observation
from repro.workloads.mixes import JobMix
from repro.workloads.model import PhaseVector, smoothmin

#: Guard against accidentally launching an infeasible exhaustive search.
DEFAULT_MAX_CONFIGS = 5_000_000


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one exhaustive search."""

    config: Configuration
    throughput: float
    fairness: float
    objective: float
    n_configs: int


class OracleSearch:
    """Exhaustive, phase-memoized search over a full configuration space.

    Args:
        mix: the co-located workloads.
        catalog: the server's resources (cores + LLC + bandwidth).
        goals: metric choices (same normalized scores as policies use).
        max_configs: safety cap on the space size.
    """

    def __init__(
        self,
        mix: JobMix,
        catalog: ResourceCatalog,
        goals: Optional[GoalSet] = None,
        max_configs: int = DEFAULT_MAX_CONFIGS,
    ):
        self._mix = mix
        self._catalog = catalog
        self._goals = goals or GoalSet()
        self._space = ConfigurationSpace(
            catalog.subset([CORES, LLC_WAYS, MEMORY_BANDWIDTH]), len(mix)
        )
        size = self._space.size()
        if size > max_configs:
            raise PolicyError(
                f"configuration space has {size} points, above the cap of {max_configs}; "
                "reduce resource units or raise max_configs"
            )
        self._matrices = self._space.per_resource_matrices()
        # Scalar result cache: (phase_key, weights) -> OracleResult.
        self._results: Dict[Tuple[Tuple[int, ...], Tuple[float, float]], OracleResult] = {}
        # Small LRU of the heavy per-phase score arrays.
        self._arrays: Dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray]] = {}
        self._array_order: List[Tuple[int, ...]] = []
        self._max_cached_arrays = 3

    @property
    def space(self) -> ConfigurationSpace:
        return self._space

    @property
    def goals(self) -> GoalSet:
        return self._goals

    def phase_key(self, t: float) -> Tuple[int, ...]:
        return tuple(w.phase_index_at(t) for w in self._mix)

    def best(self, t: float, w_throughput: float, w_fairness: float) -> OracleResult:
        """The optimal configuration at time ``t`` under given weights."""
        key = (self.phase_key(t), (round(w_throughput, 6), round(w_fairness, 6)))
        cached = self._results.get(key)
        if cached is not None:
            return cached

        throughput, fairness = self._score_arrays(t)
        objective = w_throughput * throughput + w_fairness * fairness
        flat = int(np.argmax(objective))
        indices = np.unravel_index(flat, throughput.shape)
        config = self._space.configuration_from_indices(indices, self._matrices)
        result = OracleResult(
            config=config,
            throughput=float(throughput[indices]),
            fairness=float(fairness[indices]),
            objective=float(objective[indices]),
            n_configs=int(throughput.size),
        )
        self._results[key] = result
        return result

    def evaluate(self, config: Configuration, t: float) -> Tuple[float, float]:
        """True (throughput, fairness) scores of one configuration at ``t``.

        Thin wrapper over :meth:`evaluate_batch` — the batched core is
        the single evaluation path, and the batch of one is bit-identical
        to the historical per-job scalar loop.
        """
        throughput, fairness = self.evaluate_batch([config], t)
        return float(throughput[0]), float(fairness[0])

    def evaluate_batch(
        self, configs: Sequence[Configuration], t: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """True (throughput, fairness) scores for many configurations.

        One vectorized pass: the per-job phase parameters are stacked
        into a :class:`PhaseVector` and all ``(n_configs, n_jobs)``
        allocations are pushed through the roofline model at once, then
        scored row-wise with :meth:`GoalSet.scores_batch`. Each row is
        bit-identical to :meth:`evaluate` on that configuration alone.

        Returns:
            ``(throughput, fairness)`` arrays of shape ``(n_configs,)``.
        """
        if not configs:
            return np.zeros(0), np.zeros(0)
        cores = np.array([config.units(CORES) for config in configs], dtype=float)
        ways = np.array([config.units(LLC_WAYS) for config in configs], dtype=float)
        bw = np.array([config.units(MEMORY_BANDWIDTH) for config in configs], dtype=float)
        way_bytes = self._catalog.get(LLC_WAYS).unit_capacity
        bw_bytes = self._catalog.get(MEMORY_BANDWIDTH).unit_capacity
        phases = PhaseVector.from_phases([w.phase_at(t) for w in self._mix])
        ips = phases.ips(cores, ways * way_bytes, bw * bw_bytes)
        iso = np.array([w.isolation_ips(self._catalog, t) for w in self._mix])
        return self._goals.scores_batch(ips, iso)

    # -- internals ---------------------------------------------------------

    def _score_arrays(self, t: float) -> Tuple[np.ndarray, np.ndarray]:
        """Throughput and fairness over the whole space at ``t``'s phases.

        Returns arrays shaped ``(n_core_comps, n_way_comps, n_bw_comps)``.
        """
        key = self.phase_key(t)
        cached = self._arrays.get(key)
        if cached is not None:
            return cached

        mc, mw, mb = self._matrices
        n_jobs = len(self._mix)
        way_bytes = self._catalog.get(LLC_WAYS).unit_capacity
        bw_bytes = self._catalog.get(MEMORY_BANDWIDTH).unit_capacity
        core_units = self._catalog.get(CORES).units
        way_units = self._catalog.get(LLC_WAYS).units
        bw_units = self._catalog.get(MEMORY_BANDWIDTH).units

        iso = np.array([w.isolation_ips(self._catalog, t) for w in self._mix])

        shape = (mc.shape[0], mw.shape[0], mb.shape[0])
        sum_ips = np.zeros(shape)
        sum_s = np.zeros(shape)
        sum_s2 = np.zeros(shape)
        sum_log_s = None
        sum_inv_s = None
        if self._goals.throughput_metric == "geometric_mean":
            sum_log_s = np.zeros(shape)
        if self._goals.throughput_metric == "harmonic_mean":
            sum_inv_s = np.zeros(shape)

        cache_grid = np.arange(way_units + 1, dtype=float) * way_bytes
        bw_grid = np.arange(bw_units + 1, dtype=float) * bw_bytes
        core_grid = np.arange(core_units + 1, dtype=float)

        for j, workload in enumerate(self._mix):
            phase = workload.phase_at(t)
            compute_table = phase.compute_rate(np.maximum(core_grid, 1e-9))
            memory_table = phase.memory_rate(cache_grid[:, None], bw_grid[None, :])

            comp = compute_table[mc[:, j]]  # (Kc,)
            mem = memory_table[mw[:, j][:, None], mb[:, j][None, :]]  # (Kw, Kb)
            ips = smoothmin(comp[:, None, None], mem[None, :, :])  # (Kc, Kw, Kb)

            s = ips / iso[j]
            sum_ips += ips
            sum_s += s
            sum_s2 += s * s
            if sum_log_s is not None:
                sum_log_s += np.log(np.maximum(s, 1e-12))
            if sum_inv_s is not None:
                sum_inv_s += 1.0 / np.maximum(s, 1e-12)

        if self._goals.throughput_metric == "sum_ips":
            throughput = sum_ips / float(np.sum(iso))
        elif self._goals.throughput_metric == "geometric_mean":
            throughput = np.exp(sum_log_s / n_jobs)
        else:
            throughput = n_jobs / sum_inv_s

        mean = sum_s / n_jobs
        var = np.maximum(sum_s2 / n_jobs - mean * mean, 0.0)
        cov = np.sqrt(var) / np.maximum(mean, 1e-12)
        if self._goals.fairness_metric == "jain":
            fairness = 1.0 / (1.0 + cov * cov)
        else:
            fairness = np.clip(1.0 - cov, 0.0, 1.0)

        self._remember_arrays(key, (throughput, fairness))
        return throughput, fairness

    def _remember_arrays(self, key, value) -> None:
        self._arrays[key] = value
        self._array_order.append(key)
        while len(self._array_order) > self._max_cached_arrays:
            evicted = self._array_order.pop(0)
            if evicted in self._arrays and evicted not in self._array_order:
                del self._arrays[evicted]


class OraclePolicy(PartitioningPolicy):
    """Policy wrapper installing the Oracle's optimum every interval.

    Args:
        search: a (shareable) :class:`OracleSearch` for the mix.
        w_throughput / w_fairness: the variant's weights.
        label: display name; defaults describe the variant.
    """

    def __init__(
        self,
        search: OracleSearch,
        w_throughput: float = 0.5,
        w_fairness: float = 0.5,
        label: Optional[str] = None,
        goals: Optional[GoalSet] = None,
    ):
        super().__init__(search.space, goals or search.goals)
        self._search = search
        self._w_t = w_throughput
        self._w_f = w_fairness
        if label:
            self.name = label
        elif w_fairness == 0:
            self.name = "Throughput Oracle"
        elif w_throughput == 0:
            self.name = "Fairness Oracle"
        else:
            self.name = "Balanced Oracle"

    @property
    def search(self) -> OracleSearch:
        return self._search

    def decide(self, observation: Optional[Observation]) -> Configuration:
        t = 0.0 if observation is None else observation.time_s
        return self._search.best(t, self._w_t, self._w_f).config


def balanced_oracle(mix: JobMix, catalog: ResourceCatalog, goals: GoalSet = None) -> OraclePolicy:
    """Convenience constructor for the Balanced Oracle policy."""
    return OraclePolicy(OracleSearch(mix, catalog, goals), 0.5, 0.5)
