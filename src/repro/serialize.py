"""Shared JSON (de)serialization helpers for frozen value types.

The engine, the run cache, and the cluster layer all ship value
objects — :class:`~repro.experiments.runner.RunConfig`,
:class:`~repro.experiments.runner.RunResult`,
:class:`~repro.resources.allocation.Configuration`,
:class:`~repro.faults.plan.FaultPlan` — across process boundaries and
onto disk as JSON. Each of those classes used to hand-roll its own
``to_dict``/``from_dict`` pair; this module is the single shared
implementation they now delegate to.

Two conventions coexist in the codebase and both are supported:

* **lenient** decoding (``strict=False``): unknown keys are ignored
  and missing keys fall back to the dataclass defaults — used by
  :class:`RunConfig`, whose artifacts must stay readable as fields are
  added;
* **strict** decoding (``strict=True``): unknown keys raise — used by
  :class:`FaultPlan`, where a typo'd rate silently injecting nothing
  would corrupt an experiment.

Nested non-scalar fields (a telemetry log inside a run result) are
described by a :class:`FieldCodec`, so the flat-field machinery stays
free of special cases.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Type, TypeVar

from repro.errors import ExperimentError

T = TypeVar("T")


@dataclass(frozen=True)
class FieldCodec:
    """How one dataclass field converts to and from JSON-native data."""

    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any]


def object_codec(cls: type) -> FieldCodec:
    """Codec for a field holding an object with ``to_dict``/``from_dict``."""
    return FieldCodec(encode=lambda value: value.to_dict(), decode=cls.from_dict)


def optional(codec: FieldCodec) -> FieldCodec:
    """Wrap a codec so that ``None`` passes through unchanged."""
    return FieldCodec(
        encode=lambda value: None if value is None else codec.encode(value),
        decode=lambda data: None if data is None else codec.decode(data),
    )


def dataclass_to_dict(obj: Any, codecs: Optional[Mapping[str, FieldCodec]] = None) -> Dict[str, Any]:
    """JSON-compatible dict of a dataclass instance, field by field.

    Fields without a codec are emitted as-is (they must already be
    JSON-native scalars); fields with one go through its ``encode``.
    Unlike :func:`dataclasses.asdict` this does not deep-copy or
    recurse blindly, so nested objects keep control of their own
    representation.
    """
    codecs = codecs or {}
    out: Dict[str, Any] = {}
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name)
        codec = codecs.get(field.name)
        out[field.name] = codec.encode(value) if codec is not None else value
    return out


def dataclass_from_dict(
    cls: Type[T],
    data: Mapping[str, Any],
    strict: bool = False,
    codecs: Optional[Mapping[str, FieldCodec]] = None,
) -> T:
    """Rebuild a dataclass from :func:`dataclass_to_dict` output.

    Args:
        cls: the dataclass to construct.
        data: the JSON-decoded mapping.
        strict: raise :class:`~repro.errors.ExperimentError` on keys
            that are not fields of ``cls`` (catches typo'd knobs);
            the default silently ignores them (forward compatibility).
        codecs: per-field :class:`FieldCodec` overrides.
    """
    codecs = codecs or {}
    field_names = {f.name for f in dataclasses.fields(cls)}
    if strict:
        unknown = set(data) - field_names
        if unknown:
            raise ExperimentError(f"unknown {cls.__name__} fields {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}
    for name in field_names:
        if name not in data:
            continue
        codec = codecs.get(name)
        kwargs[name] = codec.decode(data[name]) if codec is not None else data[name]
    return cls(**kwargs)


def mapping_to_dict(allocations: Mapping[str, Any]) -> Dict[str, list]:
    """``{name: sequence}`` rendered with JSON-native lists as values."""
    return {name: list(values) for name, values in allocations.items()}


# -- frozen payloads -------------------------------------------------------
#
# Policy-state payloads ride inside :class:`~repro.engine.RunSpec`, which
# must stay hashable (the engine deduplicates batches with specs as dict
# keys) and content-addressable (payload bytes enter the spec digest).
# ``freeze_data`` converts arbitrary JSON-compatible data into a canonical
# hashable tuple form; mappings are tagged with a marker so an empty dict
# and an empty list stay distinguishable through the round trip.

#: First element of a frozen mapping; reserved — lists in payloads must
#: not start with this string.
MAP_MARKER = "__map__"


def freeze_data(value: Any) -> Any:
    """JSON-compatible data as a canonical, hashable nested-tuple form.

    Mappings become ``(MAP_MARKER, (key, frozen_value), ...)`` with keys
    sorted; sequences become plain tuples; scalars pass through. Raises
    :class:`~repro.errors.ExperimentError` on anything non-JSON-native
    (objects must be converted via their ``to_dict`` first).

    Idempotent: already-frozen values freeze to themselves, so payloads
    can pass through ``__post_init__`` canonicalization any number of
    times (a dataclass rebuilt from codec output re-freezes its fields).
    """
    if isinstance(value, Mapping):
        return (MAP_MARKER,) + tuple(
            (str(k), freeze_data(v)) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        )
    if isinstance(value, (list, tuple)):
        items = tuple(value)
        if items and items[0] == MAP_MARKER:
            # Already-frozen mapping: re-canonicalize in place.
            if all(
                isinstance(p, tuple) and len(p) == 2 and isinstance(p[0], str)
                for p in items[1:]
            ):
                return (MAP_MARKER,) + tuple(
                    (k, freeze_data(v)) for k, v in sorted(items[1:], key=lambda kv: kv[0])
                )
            raise ExperimentError(
                f"sequences must not start with the reserved {MAP_MARKER!r}"
            )
        return tuple(freeze_data(v) for v in items)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ExperimentError(
        f"state payloads must be JSON-compatible plain data; got {type(value).__name__}: {value!r}"
    )


def thaw_data(value: Any) -> Any:
    """Inverse of :func:`freeze_data`, yielding JSON-native containers."""
    if isinstance(value, tuple):
        if value and value[0] == MAP_MARKER:
            return {k: thaw_data(v) for k, v in value[1:]}
        return [thaw_data(v) for v in value]
    return value


def frozen_data_codec() -> FieldCodec:
    """Codec for a field holding :func:`freeze_data` output."""
    return FieldCodec(encode=thaw_data, decode=freeze_data)


def vector_codec() -> FieldCodec:
    """Codec for a tuple-of-floats field (JSON list of numbers)."""
    return FieldCodec(
        encode=lambda value: [float(v) for v in value],
        decode=lambda data: tuple(float(v) for v in data),
    )


def matrix_codec() -> FieldCodec:
    """Codec for a tuple-of-tuples-of-floats field (JSON nested lists)."""
    return FieldCodec(
        encode=lambda value: [[float(v) for v in row] for row in value],
        decode=lambda data: tuple(tuple(float(v) for v in row) for row in data),
    )
