"""Command-line interface for the SATORI reproduction.

Usage::

    python -m repro <command> [options]

Commands map to the paper's experiments (see DESIGN.md):

* ``quickstart``   — SATORI vs equal split vs Balanced Oracle on one mix.
* ``compare``      — all policies on one or more mixes (Figs. 7/8-style).
* ``weights``      — SATORI's dynamic weight trace (Fig. 14(a)).
* ``sensitivity``  — T_P / T_E sweeps (Fig. 16).
* ``scalability``  — SATORI vs PARTIES across co-location degrees.
* ``overhead``     — controller decision-time measurement.
* ``obs``          — instrumented run: decision-latency budget + trace export.
* ``resilience``   — fault-intensity sweep: hardened vs unhardened SATORI.
* ``cluster``      — multi-node placement x partitioning-policy sweep.
* ``broker``       — cluster budget-broker sweep (static/harvest/trade/bo).
* ``warmstart``    — warm-vs-cold controller continuation (policy-state value).
* ``chaos``        — paired fleet-fault sweep: recovery protocol vs ablation.
* ``qos``          — paired cluster SLO sweep: SATORI vs BoPF vs QoS-PARTIES.
* ``serve``        — long-lived control-plane server (sessions as a service).
* ``loadgen``      — replay an arrival trace against a running ``serve``.
* ``workloads``    — list the benchmark workload models (Tables I-III).

Every command (except ``workloads``) accepts ``--trace-dir`` to export
the run's trace/metrics artifacts uniformly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.controller import SatoriController
from repro.engine import ExecutionEngine, RunCache
from repro.experiments.comparison import (
    STANDARD_POLICY_ORDER,
    aggregate,
    compare_on_mixes,
    full_space,
)
from repro.experiments.internals import weight_trace
from repro.experiments.overhead import controller_overhead
from repro.experiments.reporting import format_table
from repro.experiments.resilience import resilience_sweep
from repro.experiments.runner import RunConfig, experiment_catalog, run_policy
from repro.experiments.scalability import colocation_scalability
from repro.experiments.sensitivity import period_sensitivity
from repro.analysis.stats import paired_deltas
from repro.errors import ExperimentError
from repro.policies.oracle import OraclePolicy, OracleSearch
from repro.policies.static import EqualPartitionPolicy
from repro.workloads.mixes import suite_mixes
from repro.workloads.registry import default_registry


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--suite", default="parsec", choices=("parsec", "cloudsuite", "ecp"))
    parser.add_argument("--mix", type=int, default=0, help="mix index within the suite")
    parser.add_argument("--duration", type=float, default=20.0, help="simulated seconds")
    parser.add_argument("--units", type=int, default=8, help="allocation units per resource")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for batched runs")
    parser.add_argument("--cache-dir", default="",
                        help="directory for the content-addressed run cache")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir and recompute everything")
    parser.add_argument("--trace-dir", default="",
                        help="write trace.jsonl, trace.chrome.json and "
                             "metrics.prom to this directory")


def _engine(args: argparse.Namespace) -> ExecutionEngine:
    cache_dir = "" if args.no_cache else args.cache_dir
    cache = RunCache(cache_dir) if cache_dir else None
    return ExecutionEngine(workers=args.workers, cache=cache)


def _export_trace(collector, trace_dir: str, process_name: str) -> None:
    """Write the PR 5 trace artifacts for a collected run."""
    import os

    from repro.obs.export import write_chrome_trace, write_jsonl, write_prometheus

    os.makedirs(trace_dir, exist_ok=True)
    write_jsonl(collector.events, os.path.join(trace_dir, "trace.jsonl"))
    write_chrome_trace(
        collector.events,
        os.path.join(trace_dir, "trace.chrome.json"),
        process_name=process_name,
    )
    write_prometheus(collector.metrics, os.path.join(trace_dir, "metrics.prom"))
    print(f"\ntrace artifacts written to {trace_dir}/ "
          f"(trace.jsonl, trace.chrome.json, metrics.prom)")


def _parse_node_budgets(raw: str) -> Optional[List[int]]:
    """``--node-budgets 8,8,4,4`` -> per-node uniform unit counts."""
    if not raw:
        return None
    try:
        return [int(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(
            f"--node-budgets wants comma-separated integers, got {raw!r}"
        ) from None


def _print_engine_stats(engine: ExecutionEngine) -> None:
    print(f"\nengine: {engine.stats.summary()} ({engine.workers} worker(s))")


def _mixes(args: argparse.Namespace):
    return suite_mixes(args.suite)


def cmd_workloads(args: argparse.Namespace) -> int:
    registry = default_registry()
    for suite in registry.suites:
        rows = [[w.name, w.description] for w in registry.suite(suite)]
        print(format_table(["benchmark", "description"], rows, title=f"{suite}:"))
        print()
    return 0


def cmd_quickstart(args: argparse.Namespace) -> int:
    catalog = experiment_catalog(args.units)
    mix = _mixes(args)[args.mix]
    run_config = RunConfig(duration_s=args.duration)
    space = full_space(catalog, len(mix))
    policies = {
        "Equal partition": EqualPartitionPolicy(space),
        "SATORI": SatoriController(space, rng=args.seed),
        "Balanced Oracle": OraclePolicy(OracleSearch(mix, catalog), 0.5, 0.5),
    }
    rows = []
    for name, policy in policies.items():
        result = run_policy(policy, mix, catalog, run_config, seed=args.seed)
        rows.append([name, result.throughput, result.fairness])
    print(format_table(["policy", "throughput", "fairness"], rows, precision=3,
                       title=f"mix: {mix.label}"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    catalog = experiment_catalog(args.units)
    mixes = _mixes(args)
    chosen = mixes if args.all_mixes else [mixes[args.mix]]
    engine = _engine(args)
    comparisons = compare_on_mixes(
        chosen, catalog, RunConfig(duration_s=args.duration), seed=args.seed, engine=engine
    )
    agg = aggregate(comparisons, STANDARD_POLICY_ORDER)
    print(
        format_table(
            ["policy", "throughput % of oracle", "fairness % of oracle"],
            [[name, t, f] for name, (t, f) in agg.items()],
            title=f"{len(chosen)} {args.suite} mix(es), {args.duration:.0f}s runs:",
        )
    )
    _print_engine_stats(engine)
    return 0


def cmd_weights(args: argparse.Namespace) -> int:
    catalog = experiment_catalog(args.units)
    mix = _mixes(args)[args.mix]
    trace, _ = weight_trace(mix, catalog, RunConfig(duration_s=args.duration), seed=args.seed)
    rows = []
    for i in range(0, len(trace.times), 10):
        rows.append([trace.times[i], trace.w_throughput[i], trace.w_fairness[i]])
    print(format_table(["t (s)", "W_T", "W_F"], rows, precision=3, title=f"mix: {mix.label}"))
    mean_t, mean_f = trace.mean_weights()
    print(f"\nlong-term means: W_T={mean_t:.3f} W_F={mean_f:.3f}")
    return 0


def cmd_sensitivity(args: argparse.Namespace) -> int:
    catalog = experiment_catalog(args.units)
    mix = _mixes(args)[args.mix]
    engine = _engine(args)
    result = period_sensitivity(
        mix, catalog, RunConfig(duration_s=args.duration), seed=args.seed, engine=engine
    )
    print(
        format_table(
            ["T_P (s)", "T %", "F %"],
            [[p.value_s, p.throughput_vs_oracle, p.fairness_vs_oracle] for p in result.prioritization],
            title="prioritization-period sweep:",
        )
    )
    print()
    print(
        format_table(
            ["T_E (s)", "T %", "F %"],
            [[p.value_s, p.throughput_vs_oracle, p.fairness_vs_oracle] for p in result.equalization],
            title="equalization-period sweep:",
        )
    )
    _print_engine_stats(engine)
    return 0


def cmd_scalability(args: argparse.Namespace) -> int:
    catalog = experiment_catalog(args.units)
    engine = _engine(args)
    result = colocation_scalability(
        degrees=tuple(args.degrees),
        catalog=catalog,
        run_config=RunConfig(duration_s=args.duration),
        seed=args.seed,
        engine=engine,
    )
    rows = [
        [p.degree, p.satori_throughput, p.parties_throughput, p.throughput_gap_points]
        for p in result.points
    ]
    print(format_table(["degree", "SATORI T%", "PARTIES T%", "gap (pts)"], rows))
    _print_engine_stats(engine)
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    catalog = experiment_catalog(args.units)
    mix = _mixes(args)[args.mix]
    result = controller_overhead(mix, catalog, RunConfig(duration_s=args.duration), seed=args.seed)
    print(f"mean decision time: {result.mean_decision_time_ms:.2f} ms "
          f"({100 * result.decision_fraction_of_interval:.1f} % of the "
          f"{result.control_interval_ms:.0f} ms interval)")
    print(f"idle fraction: {result.idle_fraction:.2f}")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.experiments.obs import observed_overhead
    from repro.obs.export import write_chrome_trace, write_jsonl, write_prometheus

    catalog = experiment_catalog(args.units)
    mix = _mixes(args)[args.mix]
    report, collector = observed_overhead(
        mix,
        catalog,
        RunConfig(duration_s=args.duration),
        seed=args.seed,
        idle_detection=args.idle,
    )
    budget = report.budget

    if args.json is not None:
        payload = json.dumps(report.to_dict(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    if args.json != "-":
        rows = [
            ["decide (controller)", budget.decide_ms, budget.decide_ms / max(1, budget.n_intervals)],
            ["  suggest (BO)", budget.suggest_ms, budget.suggest_ms / max(1, budget.n_intervals)],
            ["    gp_fit", budget.gp_fit_ms, budget.gp_fit_ms / max(1, budget.n_intervals)],
            ["    acquisition", budget.acquisition_ms, budget.acquisition_ms / max(1, budget.n_intervals)],
            ["  bookkeeping", budget.bookkeeping_ms, budget.bookkeeping_ms / max(1, budget.n_intervals)],
            ["actuation", budget.actuation_ms, budget.actuation_ms / max(1, budget.n_intervals)],
        ]
        print(
            format_table(
                ["span", "total (ms)", "per interval (ms)"],
                rows,
                precision=3,
                title=f"decision-latency budget, mix {report.mix_label} "
                      f"({budget.n_intervals} intervals):",
            )
        )
        print(
            f"\ndecision latency: {budget.mean_overhead_ms:.3f} ms/interval "
            f"({100 * budget.overhead_fraction_of_interval:.2f} % of the "
            f"{budget.control_interval_ms:.0f} ms interval; "
            f"paper reports ~1.2 ms for all BO tasks)"
        )
        print(f"span coverage: {100 * budget.span_coverage:.1f} % of the measured "
              f"decision latency is explained by gp_fit + acquisition + actuation")
        print(f"idle fraction: {report.idle_fraction:.2f} "
              f"(idle detection {'on' if report.idle_detection else 'off'})")
        if report.counters:
            print(format_table(
                ["counter", "count"],
                [[name, int(value)] for name, value in report.counters],
                title="\ncounters:",
            ))

    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
        jsonl_path = os.path.join(args.trace_dir, "trace.jsonl")
        chrome_path = os.path.join(args.trace_dir, "trace.chrome.json")
        prom_path = os.path.join(args.trace_dir, "metrics.prom")
        write_jsonl(collector.events, jsonl_path)
        write_chrome_trace(collector.events, chrome_path, process_name="repro obs")
        write_prometheus(collector.metrics, prom_path)
        if args.json != "-":
            print(f"\ntrace artifacts written to {args.trace_dir}/ "
                  f"(trace.jsonl, trace.chrome.json, metrics.prom)")
    return 0


def cmd_resilience(args: argparse.Namespace) -> int:
    from repro.obs import TraceCollector, use_collector

    catalog = experiment_catalog(args.units)
    mix = _mixes(args)[args.mix]
    engine = _engine(args)
    collector = TraceCollector()
    with use_collector(collector):
        result = resilience_sweep(
            mix,
            catalog,
            RunConfig(duration_s=args.duration),
            intensities=tuple(args.intensities),
            seed=args.seed,
            engine=engine,
        )
    rows = []
    for outcome in result.outcomes:
        if outcome.failed:
            rows.append([outcome.variant, outcome.intensity, "FAILED", "-", "-", "-"])
            continue
        recovery = "-"
        if outcome.recovery_time_s is not None:
            recovery = "never" if np.isinf(outcome.recovery_time_s) else f"{outcome.recovery_time_s:.1f}"
        rows.append([
            outcome.variant,
            outcome.intensity,
            f"{outcome.throughput:.3f}",
            f"{100 * outcome.throughput_retention:.1f}",
            f"{100 * outcome.fairness_retention:.1f}",
            recovery,
        ])
    print(
        format_table(
            ["variant", "intensity", "throughput", "T retained %", "F retained %", "recovery (s)"],
            rows,
            title=f"mix: {result.mix_label} (faults over the middle third of each run)",
        )
    )
    if args.trace_dir:
        _export_trace(collector, args.trace_dir, "repro resilience")
    _print_engine_stats(engine)
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.analysis.plots import cluster_node_dashboard
    from repro.cluster.simulator import MigrationConfig
    from repro.experiments.cluster import cluster_sweep, default_trace
    from repro.obs import TraceCollector, use_collector

    catalog = experiment_catalog(args.units)
    epoch_config = RunConfig(duration_s=args.duration)
    trace = default_trace(
        n_epochs=args.epochs,
        n_nodes=args.nodes,
        arrival_rate=args.arrival_rate,
        mean_residency=args.residency,
        suite=args.suite,
        seed=args.seed,
        catalog=catalog,
        qos_fraction=args.qos_fraction,
    )
    engine = _engine(args)
    node_budgets = _parse_node_budgets(args.node_budgets)
    if node_budgets is not None and len(node_budgets) != args.nodes:
        raise SystemExit(
            f"--node-budgets lists {len(node_budgets)} nodes, --nodes is {args.nodes}"
        )
    collector = TraceCollector()
    with use_collector(collector):
        sweep = cluster_sweep(
            trace,
            n_nodes=args.nodes,
            placements=tuple(args.placements),
            policies=tuple(args.policies),
            catalog=catalog,
            epoch_config=epoch_config,
            seed=args.seed,
            fault_intensity=args.fault_intensity,
            migration=(
                MigrationConfig(warmup_penalty_intervals=args.migration_penalty)
                if args.migrate
                else None
            ),
            node_budgets=node_budgets,
            engine=engine,
            warm_start=args.warm_start,
        )
    print(
        f"trace: {sweep.n_jobs} jobs over {sweep.n_epochs} epochs "
        f"({args.duration:g}s each), peak {sweep.peak_jobs} resident, "
        f"{args.nodes} nodes"
    )
    rows = []
    for cell in sweep.cells:
        r = cell.result
        rows.append([
            cell.placement,
            cell.policy,
            f"{r.throughput:.3f}",
            f"{r.mean_speedup:.3f}",
            f"{r.fairness:.3f}",
            f"{r.worst_job_speedup:.3f}",
            f"{r.p10_speedup:.3f}",
            len(r.rejected_jobs),
            r.migrations,
        ])
    print(
        format_table(
            ["placement", "policy", "throughput", "mean speedup", "fairness (jain)",
             "worst job", "p10 job", "rejected", "migrations"],
            rows,
            title="cluster-wide (per-job speedups averaged over resident epochs):",
        )
    )
    for cell in sweep.cells:
        node_rows = [
            [node_id, f"{throughput:.3f}", f"{fairness:.3f}", f"{occupancy:.1f}",
             f"{budget_units:.1f}", f"{budget_occupancy:.2f}"]
            for node_id, throughput, fairness, occupancy, budget_units,
                budget_occupancy in cell.result.node_summary()
        ]
        print()
        print(
            format_table(
                ["node", "throughput", "fairness", "mean jobs",
                 "budget units", "budget occ"],
                node_rows,
                title=f"per-node [{cell.placement} / {cell.policy}]:",
            )
        )

    print("\nper-node trends over epochs (shared scale within each cell):\n")
    print(cluster_node_dashboard(collector.metrics))

    # Placement-vs-placement paired deltas: each job is its own control,
    # so even a small fleet yields a meaningful CI on the speedup gain.
    delta_rows = []
    for policy in args.policies:
        cells = [c for c in sweep.cells if c.policy == policy]
        for i, base in enumerate(cells):
            for other in cells[i + 1:]:
                try:
                    pd = paired_deltas(
                        base.result.job_mean_speedups(),
                        other.result.job_mean_speedups(),
                    )
                except ExperimentError:
                    continue
                delta_rows.append([
                    policy,
                    f"{other.placement} - {base.placement}",
                    f"{pd.delta.mean:+.3f}",
                    f"[{pd.delta.ci_low:+.3f}, {pd.delta.ci_high:+.3f}]",
                    pd.n_common,
                    pd.n_only_a + pd.n_only_b,
                ])
    if delta_rows:
        print()
        print(
            format_table(
                ["policy", "placement delta", "mean Δspeedup", "95% CI",
                 "paired jobs", "unpaired"],
                delta_rows,
                title="paired per-job speedup deltas (same trace, same jobs):",
            )
        )
    if args.trace_dir:
        _export_trace(collector, args.trace_dir, "repro cluster")
    _print_engine_stats(engine)
    return 0


def cmd_broker(args: argparse.Namespace) -> int:
    from repro.analysis.plots import cluster_node_dashboard
    from repro.experiments.broker import broker_sweep
    from repro.experiments.cluster import default_trace
    from repro.obs import TraceCollector, use_collector

    catalog = experiment_catalog(args.units)
    epoch_config = RunConfig(duration_s=args.duration)
    trace = default_trace(
        n_epochs=args.epochs,
        n_nodes=args.nodes,
        arrival_rate=args.arrival_rate,
        mean_residency=args.residency,
        suite=args.suite,
        seed=args.seed,
        catalog=catalog,
    )
    engine = _engine(args)
    node_budgets = _parse_node_budgets(args.node_budgets)
    if node_budgets is not None and len(node_budgets) != args.nodes:
        raise SystemExit(
            f"--node-budgets lists {len(node_budgets)} nodes, --nodes is {args.nodes}"
        )
    collector = TraceCollector()
    with use_collector(collector):
        sweep = broker_sweep(
            trace,
            n_nodes=args.nodes,
            brokers=tuple(args.brokers),
            placements=tuple(args.placements),
            policy=args.policy,
            catalog=catalog,
            epoch_config=epoch_config,
            seed=args.seed,
            fault_intensity=args.fault_intensity,
            node_budgets=node_budgets,
            slo_threshold=args.slo,
            engine=engine,
        )
    print(
        f"trace: {sweep.n_jobs} jobs over {sweep.n_epochs} epochs "
        f"({args.duration:g}s each), {args.nodes} nodes, "
        f"local policy {sweep.policy}"
    )
    rows = []
    for cell in sweep.cells:
        r = cell.result
        rows.append([
            cell.broker,
            cell.placement,
            f"{r.mean_speedup:.3f}",
            f"{r.fairness:.3f}",
            f"{r.slo_attainment(args.slo):.3f}",
            f"{r.worst_job_speedup:.3f}",
            r.budget_transfers,
            len(r.rejected_jobs),
        ])
    print(
        format_table(
            ["broker", "placement", "mean speedup", "fairness (jain)",
             f"SLO ≥ {args.slo:g}", "worst job", "units moved", "rejected"],
            rows,
            title="cluster-wide by broker scheme:",
        )
    )
    deltas = sweep.deltas_vs_static()
    if deltas:
        delta_rows = [
            [
                d.broker,
                d.placement,
                f"{d.speedup.delta.mean:+.3f}",
                f"[{d.speedup.delta.ci_low:+.3f}, {d.speedup.delta.ci_high:+.3f}]",
                f"{d.fairness_delta:+.3f}",
                f"{d.slo_delta:+.3f}",
                d.speedup.n_common,
            ]
            for d in deltas
        ]
        print()
        print(
            format_table(
                ["broker", "placement", "mean Δspeedup", "95% CI",
                 "Δfairness", "ΔSLO", "paired jobs"],
                delta_rows,
                title="paired deltas vs the static control (same trace, same jobs):",
            )
        )
    print("\nper-node trends over epochs (shared scale within each cell):\n")
    print(cluster_node_dashboard(collector.metrics))
    if args.trace_dir:
        _export_trace(collector, args.trace_dir, "repro broker")
    _print_engine_stats(engine)
    return 0


def cmd_warmstart(args: argparse.Namespace) -> int:
    from repro.experiments.warmstart import warmstart_experiment
    from repro.obs import TraceCollector, use_collector

    catalog = experiment_catalog(args.units)
    mixes = suite_mixes(args.suite, mix_size=3)[: args.mixes]
    engine = _engine(args)
    collector = TraceCollector()
    with use_collector(collector):
        report = warmstart_experiment(
            mixes,
            catalog=catalog,
            run_config=RunConfig(duration_s=args.duration,
                                 baseline_reset_s=args.duration / 2),
            n_nodes=args.nodes,
            n_epochs=args.epochs,
            seed=args.seed,
            engine=engine,
        )

    rows = []
    for cell in report.adaptation:
        rows.append([
            cell.mix_label,
            cell.cold_recovery_intervals,
            cell.warm_recovery_intervals,
            f"{cell.recovery_gain_intervals:+d}",
            f"{cell.plateau_delta:+.3f}",
            f"{cell.early_fairness_delta:+.3f}",
            f"{cell.early_throughput_delta:+.3f}",
        ])
    print(
        format_table(
            ["mix", "cold recovery", "warm recovery", "gain (intervals)",
             "plateau Δ", "early ΔF", "early ΔT"],
            rows,
            title="continuation epoch, cold vs warm (paired noise):",
        )
    )
    gain = report.recovery_gain_summary()
    print(f"\nrecovery gain: {gain} intervals saved by warm start")

    cluster = report.cluster
    fairness = cluster.node_epoch_fairness_delta()
    speedup = cluster.job_speedup_delta
    print(f"\ncluster replay ({args.nodes} nodes, round-robin, no migration):")
    print(f"  warm-started node-epochs: {cluster.warm_started_epochs}")
    print(f"  per-job Δspeedup (warm - cold): {speedup.delta.mean:+.3f} "
          f"[{speedup.delta.ci_low:+.3f}, {speedup.delta.ci_high:+.3f}] "
          f"(n={speedup.n_common})")
    print(f"  per-node-epoch Δfairness: {fairness.delta.mean:+.3f} "
          f"[{fairness.delta.ci_low:+.3f}, {fairness.delta.ci_high:+.3f}] "
          f"(n={fairness.n_common})")
    try:
        recovery = cluster.fairness_recovery_delta()
    except ExperimentError:
        print("  fairness recovery: too few warm-started epochs to pair")
    else:
        outcomes = cluster.fairness_recovery_outcomes()
        print(f"  fairness recovery, intervals saved by warm start (cold - warm): "
              f"{recovery.delta.mean:+.1f} "
              f"[{recovery.delta.ci_low:+.1f}, {recovery.delta.ci_high:+.1f}] "
              f"(n={recovery.n_common})")
        print(f"  recovery outcomes: warm faster {outcomes['wins']}, "
              f"tied {outcomes['ties']}, slower {outcomes['losses']}")

    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"\nJSON summary written to {args.json}")
    if args.trace_dir:
        _export_trace(collector, args.trace_dir, "repro warmstart")
    _print_engine_stats(engine)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.cluster import RecoveryConfig
    from repro.experiments.chaos import chaos_fleet_plans, chaos_sweep
    from repro.experiments.cluster import default_trace

    catalog = experiment_catalog(args.units)
    epoch_config = RunConfig(duration_s=args.duration)
    trace = default_trace(
        n_epochs=args.epochs,
        n_nodes=args.nodes,
        arrival_rate=args.arrival_rate,
        mean_residency=args.residency,
        suite=args.suite,
        seed=args.seed,
        catalog=catalog,
        qos_fraction=args.qos_fraction,
    )
    plans = chaos_fleet_plans(
        args.nodes,
        args.epochs,
        crash_node=args.crash_node,
        crash_epoch=args.crash_epoch,
        outage_epochs=args.outage,
        straggler_node=args.straggler_node,
        straggler_slowdown=args.straggler_slowdown,
    )
    engine = _engine(args)
    recovery = RecoveryConfig(
        snapshot_cadence_epochs=args.snapshot_cadence,
        warmup_penalty_intervals=args.penalty,
    )
    report = chaos_sweep(
        trace,
        args.nodes,
        plans,
        placement=args.placement,
        policy=args.policy,
        catalog=catalog,
        epoch_config=epoch_config,
        seed=args.seed,
        recovery=recovery,
        engine=engine,
    )
    print(report.summary())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"\nJSON report written to {args.json}")
    _print_engine_stats(engine)
    if args.assert_recovery:
        problems = []
        if report.recovery.jobs_lost:
            problems.append(
                f"recovery arm lost {report.recovery.jobs_lost} job(s)"
            )
        if not report.recovery.pool_conserved:
            problems.append("recovery arm's budget pool was not conserved")
        if problems:
            print("chaos assertions FAILED: " + "; ".join(problems), file=sys.stderr)
            return 1
        print("\nchaos assertions passed: zero jobs lost, budget pool conserved")
    return 0


def cmd_qos(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.qos import qos_sweep
    from repro.qos import SLOSpec

    catalog = experiment_catalog(args.units)
    engine = _engine(args)
    slo = SLOSpec(min_speedup=args.floor, window=args.window,
                  attain_target=args.attain_target)
    report = qos_sweep(
        shapes=tuple(args.shapes),
        policies=tuple(args.policies),
        qos_fractions=tuple(args.qos_fractions),
        trace_seeds=tuple(args.trace_seeds),
        n_nodes=args.nodes,
        n_epochs=args.epochs,
        slo=slo,
        catalog=catalog,
        epoch_config=RunConfig(duration_s=args.duration),
        placement=args.placement,
        warm_start=not args.cold_start,
        engine=engine,
    )
    print(report.summary())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"\nJSON report written to {args.json}")
    _print_engine_stats(engine)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ControlPlaneServer

    async def _serve() -> None:
        server = ControlPlaneServer(host=args.host, port=args.port)
        await server.start()
        host, port = server.address
        print(f"control plane listening on {host}:{port}", flush=True)
        print("dialects: newline-delimited JSON ops, minimal REST "
              "(GET /healthz, GET /metrics, GET /sessions, POST /sessions, "
              "POST /sessions/<id>/step, GET /sessions/<id>/snapshot, "
              "DELETE /sessions/<id>)", flush=True)
        if args.exit_after is not None:
            try:
                await asyncio.wait_for(server.serve_forever(), args.exit_after)
            except asyncio.TimeoutError:
                pass
            finally:
                await server.stop()
        else:
            await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serve import ControlPlaneServer, LoadGenerator, SessionSpec
    from repro.workloads.arrivals import poisson_trace

    trace = poisson_trace(
        n_epochs=args.epochs,
        arrival_rate=args.arrival_rate,
        mean_residency=args.residency,
        suites=(args.suite,),
        seed=args.seed,
    )
    base_spec = SessionSpec(
        policy=args.policy, suite=args.suite, units=args.units, seed=args.seed
    )

    async def _drive():
        server = None
        host, port = args.host, args.port
        if args.self_host:
            server = ControlPlaneServer()
            await server.start()
            host, port = server.address
        try:
            generator = LoadGenerator(
                host,
                port,
                trace,
                base_spec=base_spec,
                epoch_s=args.epoch_s,
                steps_per_epoch=args.steps_per_epoch,
                connections=args.connections,
                snapshot_on_kill=args.snapshot_on_kill,
            )
            return await generator.run()
        finally:
            if server is not None:
                await server.stop()

    report = asyncio.run(_drive())
    rows = [
        ["epochs replayed", report.epochs],
        ["wall time (s)", f"{report.wall_s:.2f}"],
        ["sessions created", report.sessions_created],
        ["sessions killed", report.sessions_killed],
        ["peak concurrent", report.peak_concurrent],
        ["control steps", report.steps_total],
        ["sessions/sec", f"{report.sessions_per_sec:.1f}"],
        ["steps/sec", f"{report.steps_per_sec:.1f}"],
        ["decision p50 (ms)", f"{report.decision_latency_p50_ms:.3f}"],
        ["decision p99 (ms)", f"{report.decision_latency_p99_ms:.3f}"],
        ["request errors", report.errors],
        ["lagging epochs", report.lagging_epochs],
    ]
    target = "self-hosted server" if args.self_host else f"{args.host}:{args.port}"
    print(format_table(["measure", "value"],
                       rows, title=f"load replay against {target}:"))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"\nJSON report written to {args.json}")
    return 1 if report.errors else 0


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import FigureScale, figure_names, run_figure

    if args.list:
        print("\n".join(figure_names()))
        return 0
    if not args.name:
        print("specify a figure id (or --list)", file=sys.stderr)
        return 2
    scale = FigureScale(
        units=args.units, duration_s=args.duration, n_mixes=args.mixes, seed=args.seed,
        workers=args.workers, cache_dir="" if args.no_cache else args.cache_dir,
    )
    print(run_figure(args.name, scale))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import ReportConfig, generate_report

    report = generate_report(
        ReportConfig(
            suite=args.suite,
            n_mixes=args.mixes,
            duration_s=args.duration,
            units=args.units,
            seed=args.seed,
            workers=args.workers,
            cache_dir="" if args.no_cache else args.cache_dir,
        )
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func, extra in (
        ("workloads", cmd_workloads, None),
        ("quickstart", cmd_quickstart, None),
        ("compare", cmd_compare, "compare"),
        ("weights", cmd_weights, None),
        ("sensitivity", cmd_sensitivity, None),
        ("scalability", cmd_scalability, "scalability"),
        ("overhead", cmd_overhead, None),
        ("obs", cmd_obs, "obs"),
        ("resilience", cmd_resilience, "resilience"),
        ("cluster", cmd_cluster, "cluster"),
        ("broker", cmd_broker, "broker"),
        ("warmstart", cmd_warmstart, "warmstart"),
        ("chaos", cmd_chaos, "chaos"),
        ("qos", cmd_qos, "qos"),
        ("serve", cmd_serve, "serve"),
        ("loadgen", cmd_loadgen, "loadgen"),
        ("report", cmd_report, "report"),
        ("figure", cmd_figure, "figure"),
    ):
        p = sub.add_parser(name, help=func.__doc__)
        if name not in ("workloads", "serve", "loadgen"):
            _add_common(p)
        if extra == "compare":
            p.add_argument("--all-mixes", action="store_true", help="run every suite mix")
        if extra == "scalability":
            p.add_argument("--degrees", type=int, nargs="+", default=[3, 5, 7])
        if extra == "obs":
            p.add_argument("--json", nargs="?", const="-", default=None,
                           help="emit the JSON report ('-' or no value for stdout, "
                                "otherwise a file path)")
            p.add_argument("--idle", action="store_true",
                           help="enable idle detection during the measured run")
            # enough intervals for a stable per-interval budget
            p.set_defaults(duration=15.0, handles_trace=True)
        if extra == "resilience":
            p.add_argument("--intensities", type=float, nargs="+",
                           default=[0.0, 0.25, 0.5, 1.0],
                           help="fault intensities in [0, 1] to sweep")
            p.set_defaults(handles_trace=True)
        if extra == "cluster":
            p.add_argument("--nodes", type=int, default=4, help="fleet size")
            p.add_argument("--epochs", type=int, default=4, help="placement epochs")
            p.add_argument("--arrival-rate", type=float, default=1.5,
                           help="mean job arrivals per epoch (Poisson)")
            p.add_argument("--residency", type=float, default=3.0,
                           help="mean resident epochs per job (geometric)")
            p.add_argument("--placements", nargs="+",
                           default=["round_robin", "contention_aware"],
                           help="placement policies to compare")
            p.add_argument("--policies", nargs="+",
                           default=["SATORI", "EqualPartition"],
                           help="partitioning policies to compare")
            p.add_argument("--fault-intensity", type=float, default=0.0,
                           help="fault intensity on even-numbered nodes")
            p.add_argument("--migrate", action="store_true",
                           help="migrate jobs off persistently unfair nodes")
            p.add_argument("--migration-penalty", type=int, default=0,
                           help="intervals of degraded speedup after a migration")
            p.add_argument("--warm-start", action="store_true",
                           help="carry controller state across epochs when a "
                                "node's job membership is unchanged")
            p.add_argument("--node-budgets", default="",
                           help="comma-separated per-node unit counts, e.g. "
                                "'8,8,4,4' (uniform across resources); empty "
                                "means every node owns its full catalog")
            p.add_argument("--qos-fraction", type=float, default=0.0,
                           help="fraction of arrivals tagged 'qos' (0 keeps "
                                "the trace bit-identical to untyped runs)")
            # for cluster, --duration is the per-epoch length
            p.set_defaults(duration=4.0, handles_trace=True)
        if extra == "broker":
            p.add_argument("--nodes", type=int, default=4, help="fleet size")
            p.add_argument("--epochs", type=int, default=6, help="placement epochs")
            p.add_argument("--arrival-rate", type=float, default=1.5,
                           help="mean job arrivals per epoch (Poisson)")
            p.add_argument("--residency", type=float, default=3.0,
                           help="mean resident epochs per job (geometric)")
            p.add_argument("--brokers", nargs="+",
                           default=["static", "harvest", "trade", "bo"],
                           help="broker schemes to compare")
            p.add_argument("--placements", nargs="+", default=["round_robin"],
                           help="placement policies to cross with")
            p.add_argument("--policy", default="SATORI",
                           help="partitioning policy every node runs")
            p.add_argument("--fault-intensity", type=float, default=0.0,
                           help="fault intensity on even-numbered nodes")
            p.add_argument("--node-budgets", default="",
                           help="comma-separated per-node unit counts, e.g. "
                                "'8,8,4,4' (uniform across resources); empty "
                                "means every node owns its full catalog")
            p.add_argument("--slo", type=float, default=0.8,
                           help="per-job mean-speedup SLO threshold")
            # for broker, --duration is the per-epoch length
            p.set_defaults(duration=4.0, handles_trace=True)
        if extra == "warmstart":
            p.add_argument("--mixes", type=int, default=4,
                           help="number of suite mixes for the adaptation sweep")
            p.add_argument("--nodes", type=int, default=2,
                           help="fleet size for the cluster replay")
            p.add_argument("--epochs", type=int, default=12,
                           help="trace length for the cluster replay "
                                "(warm starts need membership-stable boundaries)")
            p.add_argument("--json", default="",
                           help="write the JSON report to this path")
            # warm-start value shows up over multi-epoch horizons
            p.set_defaults(duration=8.0, handles_trace=True)
        if extra == "chaos":
            p.add_argument("--nodes", type=int, default=4, help="fleet size")
            p.add_argument("--epochs", type=int, default=6, help="placement epochs")
            p.add_argument("--arrival-rate", type=float, default=1.0,
                           help="mean job arrivals per epoch (Poisson)")
            p.add_argument("--residency", type=float, default=5.0,
                           help="mean resident epochs per job (geometric)")
            p.add_argument("--placement", default="least_loaded",
                           help="placement policy for both arms")
            p.add_argument("--policy", default="SATORI",
                           help="partitioning policy every node runs")
            p.add_argument("--crash-node", type=int, default=0,
                           help="node that crashes mid-trace")
            p.add_argument("--crash-epoch", type=int, default=None,
                           help="crash epoch (default: a third of the trace in)")
            p.add_argument("--outage", type=int, default=None,
                           help="blackout length in epochs before rejoin "
                                "(default: a quarter of the trace)")
            p.add_argument("--straggler-node", type=int, default=None,
                           help="optional second node that straggles")
            p.add_argument("--straggler-slowdown", type=float, default=2.0,
                           help="slowdown factor for the straggler node")
            p.add_argument("--snapshot-cadence", type=int, default=1,
                           help="checkpoint policy state every N epochs")
            p.add_argument("--penalty", type=int, default=0,
                           help="warmup penalty intervals for re-placed jobs")
            p.add_argument("--assert-recovery", action="store_true",
                           help="exit 1 unless the recovery arm lost zero jobs "
                                "and conserved the budget pool (CI smoke)")
            p.add_argument("--json", default="",
                           help="write the JSON report to this path")
            p.add_argument("--qos-fraction", type=float, default=0.0,
                           help="fraction of arrivals tagged 'qos' (0 keeps "
                                "the trace bit-identical to untyped runs)")
            # for chaos, --duration is the per-epoch length
            p.set_defaults(duration=3.0)
        if extra == "qos":
            p.add_argument("--nodes", type=int, default=3, help="fleet size")
            p.add_argument("--epochs", type=int, default=8, help="placement epochs")
            p.add_argument("--shapes", nargs="+",
                           default=["flash_crowd", "diurnal"],
                           help="arrival-trace shapes to sweep")
            p.add_argument("--policies", nargs="+",
                           default=["SATORI", "BoPF", "QoSPARTIES"],
                           help="partitioning policies to compare")
            p.add_argument("--qos-fractions", type=float, nargs="+",
                           default=[0.25],
                           help="qos arrival fractions to sweep")
            p.add_argument("--trace-seeds", type=int, nargs="+",
                           default=[0, 1, 2],
                           help="trace seeds (cells pair across policies "
                                "within each seed)")
            p.add_argument("--floor", type=float, default=0.55,
                           help="SLO min-speedup floor for qos jobs")
            p.add_argument("--window", type=int, default=2,
                           help="control intervals per SLO evaluation window")
            p.add_argument("--attain-target", type=float, default=0.75,
                           help="windowed attainment a qos job-epoch must "
                                "reach to avoid a miss event")
            p.add_argument("--placement", default="slo_aware",
                           help="placement policy for every cell")
            p.add_argument("--cold-start", action="store_true",
                           help="disable warm starts (the guarantee phase "
                                "then re-probes every epoch)")
            p.add_argument("--json", default="",
                           help="write the JSON report to this path")
            # for qos, --duration is the per-epoch length
            p.set_defaults(duration=4.0)
        if extra == "serve":
            p.add_argument("--host", default="127.0.0.1", help="bind address")
            p.add_argument("--port", type=int, default=7300,
                           help="bind port (0 picks a free one)")
            p.add_argument("--exit-after", type=float, default=None,
                           help="stop after this many seconds (smoke tests; "
                                "default: serve forever)")
        if extra == "loadgen":
            p.add_argument("--host", default="127.0.0.1", help="server address")
            p.add_argument("--port", type=int, default=7300, help="server port")
            p.add_argument("--self-host", action="store_true",
                           help="boot an in-process server and replay against "
                                "it (ignores --host/--port)")
            p.add_argument("--suite", default="parsec",
                           choices=("parsec", "cloudsuite", "ecp"))
            p.add_argument("--policy", default="SATORI",
                           help="partitioning policy every session runs")
            p.add_argument("--units", type=int, default=8,
                           help="allocation units per resource")
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--epochs", type=int, default=20,
                           help="trace length in wall-clock ticks")
            p.add_argument("--arrival-rate", type=float, default=2.0,
                           help="mean session arrivals per tick (Poisson)")
            p.add_argument("--residency", type=float, default=4.0,
                           help="mean resident ticks per session (geometric)")
            p.add_argument("--epoch-s", type=float, default=0.05,
                           help="wall-clock seconds per tick")
            p.add_argument("--steps-per-epoch", type=int, default=1,
                           help="control intervals per resident session per tick")
            p.add_argument("--connections", type=int, default=16,
                           help="client connection-pool size")
            p.add_argument("--snapshot-on-kill", action="store_true",
                           help="snapshot each departing session before killing it")
            p.add_argument("--json", default="",
                           help="write the JSON load report to this path")
        if extra == "report":
            p.add_argument("--mixes", type=int, default=4, help="mixes to include")
            p.add_argument("--out", default="", help="write markdown to this path")
        if extra == "figure":
            p.add_argument("name", nargs="?", default="", help="figure id (e.g. fig7)")
            p.add_argument("--list", action="store_true", help="list figure ids")
            p.add_argument("--mixes", type=int, default=4)
        p.set_defaults(func=func)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace_dir = getattr(args, "trace_dir", "")
    if not trace_dir or getattr(args, "handles_trace", False):
        # Commands with their own collector (obs, resilience, cluster,
        # broker, warmstart) export the trace themselves.
        return args.func(args)
    from repro.obs import TraceCollector, use_collector

    collector = TraceCollector()
    with use_collector(collector):
        code = args.func(args)
    _export_trace(collector, trace_dir, f"repro {args.command}")
    return code


if __name__ == "__main__":
    sys.exit(main())
