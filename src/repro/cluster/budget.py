"""Elastic per-node resource budgets: the currency of the broker layer.

A :class:`ResourceBudget` is the number of allocation units of each
resource a node currently *owns* — cores, LLC ways, bandwidth-throttle
steps — drawn from a cluster-wide pool whose per-resource totals are
fixed. Historically every :class:`~repro.cluster.node.ServerNode`
carried a hard-coded catalog and a scalar job capacity derived from
it; budgets make node capacity elastic so a cluster-level broker
(:mod:`repro.broker`) can move units between nodes across placement
epochs, the way Spirit's global enforcer apportions capacity across
its local enforcers.

The node's *catalog* stays what it was: the template describing which
resource kinds exist, their per-job minimums, and the physical
capacity of one unit. The budget only overrides how many units of each
the node holds this epoch; :func:`scaled_catalog` materializes the
combination into the effective :class:`~repro.resources.types.ResourceCatalog`
a node-epoch actually partitions. When a budget equals its catalog's
unit counts, ``scaled_catalog`` returns the catalog object itself, so
fixed-budget node-epoch specs keep byte-identical digests with the
pre-budget code — the run cache and every recorded digest stay valid
(the cache schema version is bumped anyway, as cheap insurance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Tuple, Union

from repro import serialize
from repro.errors import ClusterError
from repro.resources.types import Resource, ResourceCatalog


def _named_units_codec() -> serialize.FieldCodec:
    """Codec for a ``((name, units), ...)`` tuple field."""
    return serialize.FieldCodec(
        encode=lambda value: {name: int(units) for name, units in value},
        decode=lambda data: tuple(sorted((str(k), int(v)) for k, v in data.items())),
    )


@dataclass(frozen=True)
class ResourceBudget:
    """How many units of each resource one node currently owns.

    Attributes:
        units: ``(resource_name, unit_count)`` pairs, stored sorted by
            name (pass a mapping or any iterable of pairs). Every count
            is at least 1 — a node with zero cache ways cannot host
            anything and has no business in the fleet.
    """

    units: Tuple[Tuple[str, int], ...]

    def __post_init__(self) -> None:
        pairs = self.units
        if isinstance(pairs, Mapping):
            pairs = tuple(pairs.items())
        normalized = tuple(sorted((str(name), int(n)) for name, n in pairs))
        if not normalized:
            raise ClusterError("a resource budget needs at least one resource")
        names = [name for name, _ in normalized]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate resources in budget: {names}")
        for name, n in normalized:
            if n < 1:
                raise ClusterError(f"budget for {name!r} must be >= 1, got {n}")
        object.__setattr__(self, "units", normalized)

    # -- access -----------------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.units)

    @property
    def total_units(self) -> int:
        """Sum of unit counts across resources (display/occupancy metric)."""
        return sum(n for _, n in self.units)

    def get(self, name: str) -> int:
        for resource, n in self.units:
            if resource == name:
                return n
        raise ClusterError(f"budget has no resource {name!r}; has {self.names}")

    def as_dict(self) -> Dict[str, int]:
        return dict(self.units)

    # -- arithmetic -------------------------------------------------------

    def with_units(self, name: str, count: int) -> "ResourceBudget":
        """A copy with ``name`` set to ``count`` units."""
        self.get(name)  # raise on unknown resource
        return ResourceBudget(
            tuple((r, count if r == name else n) for r, n in self.units)
        )

    def transfer(self, name: str, delta: int) -> "ResourceBudget":
        """A copy with ``delta`` units added to ``name`` (may be negative)."""
        return self.with_units(name, self.get(name) + delta)

    def capacity(self, catalog: ResourceCatalog) -> int:
        """Most jobs this budget can host under ``catalog``'s per-job minimums."""
        return min(self.get(r.name) // r.min_units for r in catalog)

    def floor(self, catalog: ResourceCatalog, n_jobs: int) -> "ResourceBudget":
        """The smallest feasible budget that still hosts ``n_jobs`` jobs.

        Per resource: ``max(1, n_jobs) * min_units`` (an empty node
        still owns one unit of everything — budgets never reach zero).
        """
        return ResourceBudget(
            tuple(
                (r.name, max(1, max(1, n_jobs) * r.min_units)) for r in catalog
            )
        )

    # -- serialization ----------------------------------------------------

    _CODECS = {"units": _named_units_codec()}

    def to_dict(self) -> Dict[str, Any]:
        return serialize.dataclass_to_dict(self, codecs=self._CODECS)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResourceBudget":
        return serialize.dataclass_from_dict(cls, data, codecs=cls._CODECS)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_catalog(cls, catalog: ResourceCatalog) -> "ResourceBudget":
        """The budget matching a catalog's full unit counts."""
        return cls(tuple((r.name, r.units) for r in catalog))

    @classmethod
    def uniform(cls, catalog: ResourceCatalog, units: int) -> "ResourceBudget":
        """``units`` of every resource in ``catalog`` (heterogeneous fleets)."""
        return cls(tuple((r.name, int(units)) for r in catalog))


@dataclass(frozen=True)
class BudgetTransfer:
    """One unit movement the broker decided: the budget-flow ledger entry.

    Emitted as a ``budget_transfer`` trace event and kept countable so
    conservation is auditable: every transfer has a source and a
    target, units never appear or vanish.
    """

    epoch: int
    resource: str
    units: int
    source: int
    target: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "epoch", int(self.epoch))
        object.__setattr__(self, "resource", str(self.resource))
        object.__setattr__(self, "units", int(self.units))
        object.__setattr__(self, "source", int(self.source))
        object.__setattr__(self, "target", int(self.target))
        if self.units < 1:
            raise ClusterError(f"a transfer moves >= 1 unit, got {self.units}")
        if self.source == self.target:
            raise ClusterError(f"transfer from node {self.source} to itself")

    def to_dict(self) -> Dict[str, Any]:
        return serialize.dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BudgetTransfer":
        return serialize.dataclass_from_dict(cls, data)


def scaled_catalog(catalog: ResourceCatalog, budget: ResourceBudget) -> ResourceCatalog:
    """``catalog`` with unit counts overridden by ``budget``.

    Returns the catalog object itself when the budget matches its unit
    counts exactly, so full-budget node-epoch specs digest identically
    to the pre-budget code (see module docstring).
    """
    if set(budget.names) != set(catalog.names):
        raise ClusterError(
            f"budget resources {budget.names} do not match catalog {catalog.names}"
        )
    if all(budget.get(r.name) == r.units for r in catalog):
        return catalog
    return ResourceCatalog(
        Resource(
            kind=r.kind,
            units=budget.get(r.name),
            min_units=r.min_units,
            unit_capacity=r.unit_capacity,
        )
        for r in catalog
    )


def pool_totals(budgets: Iterable[ResourceBudget]) -> Dict[str, int]:
    """Cluster-wide per-resource unit totals — the conserved quantity."""
    totals: Dict[str, int] = {}
    for budget in budgets:
        for name, n in budget.units:
            totals[name] = totals.get(name, 0) + n
    return totals


BudgetLike = Union[ResourceBudget, int, Mapping[str, int]]


def coerce_budget(value: BudgetLike, catalog: ResourceCatalog) -> ResourceBudget:
    """A :class:`ResourceBudget` from the forms configs use.

    ``int`` means that many units of *every* resource (the
    ``--node-budgets 8,8,4,4`` CLI shorthand); a mapping is per-resource
    unit counts; a budget passes through after a catalog check.
    """
    if isinstance(value, ResourceBudget):
        budget = value
    elif isinstance(value, Mapping):
        budget = ResourceBudget(tuple(value.items()))
    elif isinstance(value, int):
        budget = ResourceBudget.uniform(catalog, value)
    else:
        raise ClusterError(
            f"cannot build a budget from {type(value).__name__}: {value!r}"
        )
    if set(budget.names) != set(catalog.names):
        raise ClusterError(
            f"budget resources {budget.names} do not match catalog {catalog.names}"
        )
    return budget
