"""Multi-node cluster layer: nodes, placement, and the fleet simulator.

Turns the single-server reproduction into a simulated fleet: a
:class:`ClusterSimulator` replays a job
:class:`~repro.workloads.arrivals.ArrivalTrace` across N
:class:`ServerNode`\\ s, routing arrivals with a pluggable
:class:`PlacementPolicy` and executing each node's placement epoch as
an independent :class:`~repro.engine.RunSpec` through the execution
engine. See DESIGN.md ("Cluster architecture").
"""

from repro.cluster.budget import (
    BudgetLike,
    BudgetTransfer,
    ResourceBudget,
    coerce_budget,
    pool_totals,
    scaled_catalog,
)
from repro.cluster.node import ServerNode, instance_name, node_capacity
from repro.cluster.placement import (
    ContentionAwarePlacement,
    LeastLoadedPlacement,
    NodeView,
    PlacementPolicy,
    RoundRobinPlacement,
    SLOAwarePlacement,
    make_placement,
    placement_names,
)
from repro.cluster.recovery import (
    EVT_JOB_LOST,
    EVT_JOB_REPLACED,
    EVT_NODE_DOWN,
    EVT_NODE_EPOCH_FAILED,
    EVT_NODE_QUARANTINED,
    EVT_NODE_REJOINED,
    EVT_SESSION_RESURRECTED,
    FleetEvent,
    RecoveryConfig,
)
from repro.cluster.simulator import (
    ClusterResult,
    ClusterSimulator,
    MigrationConfig,
    NodeEpochRecord,
)

__all__ = [
    "BudgetLike",
    "BudgetTransfer",
    "ClusterResult",
    "ClusterSimulator",
    "ContentionAwarePlacement",
    "EVT_JOB_LOST",
    "EVT_JOB_REPLACED",
    "EVT_NODE_DOWN",
    "EVT_NODE_EPOCH_FAILED",
    "EVT_NODE_QUARANTINED",
    "EVT_NODE_REJOINED",
    "EVT_SESSION_RESURRECTED",
    "FleetEvent",
    "LeastLoadedPlacement",
    "MigrationConfig",
    "NodeEpochRecord",
    "NodeView",
    "PlacementPolicy",
    "RecoveryConfig",
    "ResourceBudget",
    "RoundRobinPlacement",
    "SLOAwarePlacement",
    "ServerNode",
    "coerce_budget",
    "instance_name",
    "make_placement",
    "node_capacity",
    "placement_names",
    "pool_totals",
    "scaled_catalog",
]
