"""Fleet recovery policy: knobs and audit records for node failure.

:class:`RecoveryConfig` is the supervised-recovery contract the
cluster simulator executes when fleet weather (``repro.faults.nodes``)
takes a node down:

* resident jobs drain to a re-placement queue and are re-placed by the
  ordinary placement policy, ahead of new arrivals;
* each simulated node's :class:`~repro.state.PolicyState` is
  checkpointed every ``snapshot_cadence_epochs`` completed epochs, and
  when a crashed node's whole job group reassembles on one adopting
  node (same membership, same effective catalog) the last completed
  checkpoint is restored there — checkpoint-lag semantics: the
  controller resumes from the snapshot, not from the crash instant,
  and the adopted jobs pay ``warmup_penalty_intervals`` of useful work
  (the PR 4 migration cost model) for the transfer;
* a circuit breaker quarantines a node after ``failure_threshold``
  consecutive failed node-epochs (engine failures or stragglers past
  ``straggler_deadline_factor``), draining it like a crash for
  ``quarantine_epochs`` before it may rejoin.

:class:`FleetEvent` is the audit-trail record every disruption and
recovery action appends; chaos experiments reconstruct jobs-lost,
re-placement latency, and fairness-recovery intervals from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ClusterError

#: FleetEvent kinds.
EVT_NODE_DOWN = "node_down"
EVT_NODE_REJOINED = "node_rejoined"
EVT_NODE_QUARANTINED = "node_quarantined"
EVT_NODE_EPOCH_FAILED = "node_epoch_failed"
EVT_JOB_LOST = "job_lost"
EVT_JOB_REPLACED = "job_replaced"
EVT_SESSION_RESURRECTED = "session_resurrected"


@dataclass(frozen=True)
class RecoveryConfig:
    """How the cluster reacts to node failure.

    Attributes:
        snapshot_cadence_epochs: checkpoint every node's policy state
            after every Nth completed epoch (1 = every epoch; larger
            cadences trade snapshot cost for staler resurrections).
        warmup_penalty_intervals: control intervals of useful work a
            re-placed or resurrected job loses in its first epoch on
            the adopting node (pro-rata speedup scaling, exactly the
            PR 4 migration cost model).
        failure_threshold: consecutive failed node-epochs before the
            circuit breaker quarantines the node.
        quarantine_epochs: how long a quarantined node stays drained
            before it may rejoin.
        straggler_deadline_factor: a straggler epoch whose slowdown
            reaches this factor misses its deadline outright — the
            node-epoch counts as failed (zero useful work) instead of
            merely slow.
        max_queue_epochs: epochs a displaced job may wait un-placed
            before it is dropped as lost; ``None`` waits out the trace.
    """

    snapshot_cadence_epochs: int = 1
    warmup_penalty_intervals: int = 0
    failure_threshold: int = 3
    quarantine_epochs: int = 2
    straggler_deadline_factor: float = 3.0
    max_queue_epochs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.snapshot_cadence_epochs < 1:
            raise ClusterError(
                f"snapshot_cadence_epochs must be >= 1, "
                f"got {self.snapshot_cadence_epochs}"
            )
        if self.warmup_penalty_intervals < 0:
            raise ClusterError(
                f"warmup_penalty_intervals must be >= 0, "
                f"got {self.warmup_penalty_intervals}"
            )
        if self.failure_threshold < 1:
            raise ClusterError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.quarantine_epochs < 1:
            raise ClusterError(
                f"quarantine_epochs must be >= 1, got {self.quarantine_epochs}"
            )
        if self.straggler_deadline_factor <= 1.0:
            raise ClusterError(
                f"straggler_deadline_factor must exceed 1, "
                f"got {self.straggler_deadline_factor}"
            )
        if self.max_queue_epochs is not None and self.max_queue_epochs < 0:
            raise ClusterError(
                f"max_queue_epochs must be >= 0, got {self.max_queue_epochs}"
            )


@dataclass(frozen=True)
class FleetEvent:
    """One entry of the fleet-disruption audit trail.

    Attributes:
        epoch: placement epoch the event occurred in.
        kind: one of the module's ``EVT_*`` constants.
        node_id: the node concerned (the source node for job events).
        job_id: the job concerned; ``-1`` for node-scoped events.
        detail: free-form context (rejoin epoch, wait epochs, cause).
    """

    epoch: int
    kind: str
    node_id: int
    job_id: int = -1
    detail: str = ""
