"""Job placement policies for the cluster layer.

Placement answers one question per arriving job: *which node takes
it?* Policies see only :class:`NodeView` summaries — occupancy plus
the partitioning telemetry each node observed during the previous
epoch — never the workload models themselves, mirroring a real cluster
scheduler that knows what nodes report, not what jobs will do.

Three stock policies cover the classic spectrum:

* ``round_robin``   — placement ignores state entirely (the paired
  baseline every placement study needs);
* ``least_loaded``  — balance occupancy (a capacity scheduler);
* ``contention_aware`` — balance *observed interference*: prefer the
  node whose resident jobs currently retain the most of their
  isolation performance (mean per-job speedup), i.e. the node whose
  partitioner is coping best. This is the cluster-level analogue of
  the paper's observation that IPS degradation is the universal
  contention signal — no per-workload profiling required.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from repro.errors import ClusterError


@dataclass(frozen=True)
class NodeView:
    """What a placement policy may know about one node.

    Attributes:
        node_id: stable node index.
        n_jobs: jobs currently resident (after departures, including
            placements already made this epoch).
        capacity: maximum resident jobs the node's *current budget*
            supports — elastic, not a constant: the global broker may
            have moved units toward or away from this node since the
            last epoch.
        mean_speedup: mean per-job speedup the node observed last
            epoch (1.0 until the node has telemetry — an empty or
            fresh node looks uncontended).
        fairness: fairness score the node observed last epoch (1.0
            until telemetry exists).
        budget_units: total resource units the node currently owns,
            summed across resources (0 when the caller did not thread
            budgets through — placement decisions key off ``capacity``,
            which already reflects the budget).
        qos_jobs: resident jobs tagged latency-sensitive (``"qos"``
            arrivals). :class:`SLOAwarePlacement` branches on it to
            spread latency-sensitive jobs across nodes.
    """

    node_id: int
    n_jobs: int
    capacity: int
    mean_speedup: float = 1.0
    fairness: float = 1.0
    budget_units: int = 0
    qos_jobs: int = 0

    @property
    def has_capacity(self) -> bool:
        return self.n_jobs < self.capacity


class PlacementPolicy(abc.ABC):
    """Chooses a node for each arriving job."""

    #: Registry id; subclasses override.
    name: str = "placement"

    @abc.abstractmethod
    def place(self, nodes: Sequence[NodeView]) -> int:
        """The node id that takes the next arriving job.

        Args:
            nodes: one view per node, in node-id order, reflecting
                placements already made this epoch.

        Raises:
            ClusterError: if no node has free capacity.
        """

    @staticmethod
    def _open_nodes(nodes: Sequence[NodeView]) -> Sequence[NodeView]:
        open_nodes = [view for view in nodes if view.has_capacity]
        if not open_nodes:
            raise ClusterError(
                f"no free capacity on any of {len(nodes)} node(s); "
                "admission control must cap the trace below cluster capacity"
            )
        return open_nodes


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through nodes, skipping full ones."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def place(self, nodes: Sequence[NodeView]) -> int:
        self._open_nodes(nodes)  # raise early if the cluster is full
        n = len(nodes)
        for offset in range(n):
            view = nodes[(self._next + offset) % n]
            if view.has_capacity:
                self._next = (view.node_id + 1) % n
                return view.node_id
        raise ClusterError("unreachable: capacity check passed but no open node found")


class LeastLoadedPlacement(PlacementPolicy):
    """Fewest resident jobs wins; ties break toward the lowest id."""

    name = "least_loaded"

    def place(self, nodes: Sequence[NodeView]) -> int:
        open_nodes = self._open_nodes(nodes)
        return min(open_nodes, key=lambda view: (view.n_jobs, view.node_id)).node_id


class ContentionAwarePlacement(PlacementPolicy):
    """Highest observed mean speedup wins (least contended node).

    Falls back to least-loaded among nodes whose observed speedups tie
    (fresh clusters, identical telemetry), so it never behaves worse
    than load balancing for lack of signal.
    """

    name = "contention_aware"

    def place(self, nodes: Sequence[NodeView]) -> int:
        open_nodes = self._open_nodes(nodes)
        return min(
            open_nodes,
            key=lambda view: (-round(view.mean_speedup, 6), view.n_jobs, view.node_id),
        ).node_id


class SLOAwarePlacement(PlacementPolicy):
    """Keep qos jobs apart and away from saturated nodes.

    The first real consumer of :attr:`NodeView.qos_jobs`. An SLO miss
    has two cluster-level causes: several latency-sensitive jobs
    packed on one node (they all need the same guarantee phase), and a
    node near capacity (no slack for a guarantee boost to draw on). So
    the policy minimizes, in order:

    1. resident qos jobs — spread the SLO-holders;
    2. *predicted* occupancy ``(n_jobs + 1) / capacity`` — where this
       placement would push the node, not where it was, so elastic
       budget changes are respected;
    3. observed contention (higher mean speedup preferred);
    4. node id, for determinism.

    Batch arrivals use the same key: steering them away from qos-heavy
    nodes is precisely what preserves the guarantee-phase headroom.
    """

    name = "slo_aware"

    def place(self, nodes: Sequence[NodeView]) -> int:
        open_nodes = self._open_nodes(nodes)
        return min(
            open_nodes,
            key=lambda view: (
                view.qos_jobs,
                round((view.n_jobs + 1) / max(1, view.capacity), 6),
                -round(view.mean_speedup, 6),
                view.node_id,
            ),
        ).node_id


_PLACEMENTS: Dict[str, Callable[[], PlacementPolicy]] = {
    RoundRobinPlacement.name: RoundRobinPlacement,
    LeastLoadedPlacement.name: LeastLoadedPlacement,
    ContentionAwarePlacement.name: ContentionAwarePlacement,
    SLOAwarePlacement.name: SLOAwarePlacement,
}


def placement_names() -> Tuple[str, ...]:
    """Registered placement ids, sorted."""
    return tuple(sorted(_PLACEMENTS))


def make_placement(name: str) -> PlacementPolicy:
    """A fresh placement policy instance from its registry id."""
    try:
        factory = _PLACEMENTS[name]
    except KeyError:
        raise ClusterError(
            f"unknown placement policy {name!r}; registered: {', '.join(placement_names())}"
        ) from None
    return factory()
