"""One server in the cluster: resident jobs plus spec construction.

A :class:`ServerNode` owns its resource catalog, its elastic
:class:`~repro.cluster.budget.ResourceBudget` (the share of the
cluster-wide unit pool it currently holds), and the set of job
instances placed on it, and knows how to describe one placement epoch
of partitioned execution as a :class:`~repro.engine.RunSpec`. The node
itself never executes anything — the cluster simulator batches every
node's epoch spec through the
:class:`~repro.engine.ExecutionEngine`, which is what makes nodes run
in parallel worker processes and lets the run cache deduplicate
identical node-epochs across sweep cells.

Capacity is no longer a fixed scalar: the most jobs a node can host is
whatever its *current budget* can physically partition, so when the
global broker moves units toward a node its capacity grows and the
placement layer sees the change on the next arrival. A node at its
catalog's full budget behaves exactly as the pre-budget code did —
same capacity, same epoch-spec digests.

Job instances get *instance-unique* workload names (``canneal#7`` for
job id 7) because :class:`~repro.workloads.mixes.JobMix` forbids
duplicate names — two copies of the same benchmark are distinct jobs
with distinct speedups and must stay distinguishable in telemetry.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.cluster.budget import ResourceBudget, scaled_catalog
from repro.errors import ClusterError
from repro.engine.spec import RunSpec
from repro.experiments.runner import RunConfig
from repro.faults.plan import FaultPlan
from repro.state import PolicyState
from repro.workloads.arrivals import JobArrival
from repro.workloads.mixes import JobMix
from repro.workloads.model import Workload
from repro.resources.types import ResourceCatalog


def instance_name(workload_name: str, job_id: int) -> str:
    """The instance-unique name a job runs under on a node."""
    return f"{workload_name}#{job_id}"


def node_capacity(catalog: ResourceCatalog) -> int:
    """Most jobs a full-budget catalog can host: every job needs its
    per-resource minimum."""
    return min(resource.units // resource.min_units for resource in catalog)


class ServerNode:
    """A single server's placement state within the cluster.

    Args:
        node_id: stable index of this node.
        catalog: the node's resource template (nodes may be
            heterogeneous — each carries its own). Defines the resource
            kinds, per-job minimums, and unit capacities; the *number*
            of units the node holds is the budget's business.
        capacity: optional fixed cap on resident jobs, layered on top
            of whatever the current budget can physically partition
            (kept for admission-control experiments; most callers leave
            it unset and let the budget decide).
        budget: initial :class:`~repro.cluster.budget.ResourceBudget`;
            defaults to the catalog's full unit counts — the historical
            fixed-capacity behavior.
    """

    def __init__(
        self,
        node_id: int,
        catalog: ResourceCatalog,
        capacity: Optional[int] = None,
        budget: Optional[ResourceBudget] = None,
    ):
        if node_id < 0:
            raise ClusterError(f"node_id must be >= 0, got {node_id}")
        self.node_id = int(node_id)
        self.catalog = catalog
        self._budget = budget or ResourceBudget.from_catalog(catalog)
        if set(self._budget.names) != set(catalog.names):
            raise ClusterError(
                f"node {node_id}: budget resources {self._budget.names} do not "
                f"match catalog {catalog.names}"
            )
        limit = self._budget.capacity(catalog)
        if limit < 1:
            raise ClusterError(
                f"node {node_id}: budget {self._budget.as_dict()} cannot host "
                f"even one job under {catalog!r}"
            )
        if capacity is not None:
            if capacity < 1:
                raise ClusterError(f"node capacity must be >= 1, got {capacity}")
            if capacity > limit:
                raise ClusterError(
                    f"node {node_id}: capacity {capacity} exceeds what the "
                    f"budget can partition ({limit} jobs)"
                )
        self._max_jobs = None if capacity is None else int(capacity)
        self._jobs: Dict[int, Workload] = {}
        self._kinds: Dict[int, str] = {}

    # -- budget -----------------------------------------------------------

    @property
    def budget(self) -> ResourceBudget:
        """The node's current share of the cluster-wide unit pool."""
        return self._budget

    @property
    def effective_catalog(self) -> ResourceCatalog:
        """The catalog this node's epochs actually partition.

        Identical (by object) to :attr:`catalog` at full budget, so
        fixed-budget epoch specs keep their historical digests.
        """
        return scaled_catalog(self.catalog, self._budget)

    def set_budget(self, budget: ResourceBudget) -> None:
        """Adopt a broker-assigned budget for the coming epoch.

        Raises:
            ClusterError: if the budget's resources do not match the
                catalog or it cannot host the currently resident jobs —
                the broker must never strand a placed job.
        """
        if set(budget.names) != set(self.catalog.names):
            raise ClusterError(
                f"node {self.node_id}: budget resources {budget.names} do not "
                f"match catalog {self.catalog.names}"
            )
        capacity = budget.capacity(self.catalog)
        if capacity < max(1, self.n_jobs):
            raise ClusterError(
                f"node {self.node_id}: budget {budget.as_dict()} hosts "
                f"{capacity} job(s) but {self.n_jobs} are resident"
            )
        self._budget = budget

    # -- occupancy --------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Most jobs the node can currently host (budget-derived)."""
        limit = self._budget.capacity(self.catalog)
        return limit if self._max_jobs is None else min(limit, self._max_jobs)

    @property
    def n_jobs(self) -> int:
        return len(self._jobs)

    @property
    def has_capacity(self) -> bool:
        return self.n_jobs < self.capacity

    @property
    def job_ids(self) -> Tuple[int, ...]:
        """Resident job ids in ascending order (the mix's job order)."""
        return tuple(sorted(self._jobs))

    @property
    def job_kinds(self) -> Tuple[str, ...]:
        """Resident job kinds, aligned with :attr:`job_ids`."""
        return tuple(self._kinds.get(job_id, "batch") for job_id in self.job_ids)

    def kind_of(self, job_id: int) -> str:
        """The type label a resident job arrived with."""
        if job_id not in self._jobs:
            raise ClusterError(f"job {job_id} is not on node {self.node_id}")
        return self._kinds.get(job_id, "batch")

    @property
    def qos_jobs(self) -> int:
        """Resident jobs tagged latency-sensitive (``kind == "qos"``)."""
        return sum(1 for kind in self._kinds.values() if kind == "qos")

    def add_job(self, arrival: JobArrival) -> None:
        """Place a job instance on this node."""
        if not self.has_capacity:
            raise ClusterError(
                f"node {self.node_id} is full ({self.n_jobs}/{self.capacity} jobs)"
            )
        if arrival.job_id in self._jobs:
            raise ClusterError(f"job {arrival.job_id} is already on node {self.node_id}")
        self._jobs[arrival.job_id] = dataclasses.replace(
            arrival.workload,
            name=instance_name(arrival.workload.name, arrival.job_id),
        )
        self._kinds[arrival.job_id] = arrival.kind

    def remove_job(self, job_id: int) -> None:
        """Remove a departed (or migrating) job instance."""
        try:
            del self._jobs[job_id]
        except KeyError:
            raise ClusterError(f"job {job_id} is not on node {self.node_id}") from None
        self._kinds.pop(job_id, None)

    def has_job(self, job_id: int) -> bool:
        return job_id in self._jobs

    def workload_of(self, job_id: int) -> Workload:
        """The (instance-renamed) workload a resident job runs."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ClusterError(f"job {job_id} is not on node {self.node_id}") from None

    # -- epoch spec -------------------------------------------------------

    def mix(self) -> JobMix:
        """The node's current co-location mix, in job-id order.

        Only meaningful with >= 2 resident jobs (partitioning a single
        job is trivial — the cluster simulator synthesizes those
        epochs instead of running them).
        """
        if self.n_jobs < 2:
            raise ClusterError(
                f"node {self.node_id} has {self.n_jobs} job(s); a mix needs >= 2"
            )
        return JobMix(tuple(self._jobs[job_id] for job_id in self.job_ids))

    def epoch_spec(
        self,
        policy: str,
        run_config: RunConfig,
        seed: int,
        policy_kwargs: Optional[dict] = None,
        goals: Tuple[str, str] = ("sum_ips", "jain"),
        fault_plan: Optional[FaultPlan] = None,
        initial_state: Optional[PolicyState] = None,
    ) -> RunSpec:
        """One placement epoch of this node as an engine spec.

        The caller supplies the epoch seed (derived from cluster seed,
        node id, and epoch — never from the resident jobs, so fault
        and noise environments stay paired across placement policies
        that route different jobs here) and a ``run_config`` whose
        ``phase_offset_s`` encodes the epoch's position in wall time,
        keeping workload phase behavior continuous across epochs.
        ``initial_state`` warm-starts the node's controller from the
        previous epoch's final snapshot (the cluster simulator passes
        it only when job membership did not change across the epoch
        boundary). The spec's catalog is the *effective* catalog — the
        node's budget enters the content digest through it, so an
        epoch run under a shrunken budget never collides in the cache
        with one run at full budget.
        """
        return RunSpec(
            mix=self.mix(),
            policy=policy,
            catalog=self.effective_catalog,
            policy_kwargs=tuple(sorted((policy_kwargs or {}).items())),
            run_config=run_config,
            goals=goals,
            seed=seed,
            fault_plan=fault_plan,
            initial_state=initial_state,
        )
