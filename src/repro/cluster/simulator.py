"""The multi-node cluster simulator: placement epochs over a job trace.

:class:`ClusterSimulator` turns N single-server partitioning problems
plus a job arrival trace into one fleet-level experiment. Time is
discretized into *placement epochs*: within an epoch node membership
is fixed, so each node's epoch is exactly one single-server run —
described as a :class:`~repro.engine.RunSpec` and executed through the
:class:`~repro.engine.ExecutionEngine`. Node epochs are independent,
which is what lets them fan out across worker processes and hit the
content-addressed run cache like any other spec (two sweep cells that
route the same jobs to the same node at the same epoch share one run).

Epoch loop (in order):

1. **fleet weather** — nodes whose down window ended rejoin (their
   parked budget returns to service); nodes whose
   :class:`~repro.faults.nodes.NodeFaultSchedule` takes them down are
   drained: resident jobs move to the re-placement queue (or are lost
   when recovery is disabled) and the node's budget is parked;
2. **departures** — jobs whose trace residency ends leave their node
   (or the re-placement queue);
3. **migration** (optional) — a node whose observed fairness stayed
   below the threshold for ``patience`` consecutive epochs evicts its
   worst-treated job to another node chosen by the placement policy;
4. **re-placement** — displaced jobs are re-placed by the placement
   policy *before* new arrivals (survivors outrank newcomers); a
   crashed node's checkpointed policy state is resurrected on the
   adopting node when its whole job group reassembles there;
5. **arrivals** — the placement policy routes each arriving job using
   :class:`~repro.cluster.placement.NodeView` summaries of the
   *previous* epoch's telemetry (jobs with no free node anywhere are
   rejected and counted — an admission-controlled cluster);
6. **execution** — every live node with >= 2 resident jobs becomes one
   engine spec; nodes with 0 or 1 jobs are *synthesized* (an
   uncontended job retains its isolation performance: speedup,
   throughput and fairness scores of 1.0) rather than simulated; down
   nodes produce no record. Straggler weather scales a node-epoch's
   useful work by its slowdown factor — or fails it outright past the
   recovery deadline — and flaky weather overlays monitoring faults on
   the node's spec;
7. **scoring** — per-node records feed the next epoch's node views and
   accumulate into cluster-wide metrics; the circuit breaker
   quarantines nodes with ``failure_threshold`` consecutive failed
   epochs;
8. **brokering** (optional) — a :class:`~repro.broker.GlobalBroker`
   observes the scored records and reassigns each *live* node's
   elastic :class:`~repro.cluster.budget.ResourceBudget` for the
   next epoch; parked (down-node) budgets are outside its reach and
   the conserved pool is audited every epoch: live + parked totals
   must equal the construction-time pool, bit-exactly.
   The simulator re-validates every decision: per-resource unit totals
   must equal the initial pool (conservation) and no node may drop
   below the floor its resident jobs need (feasibility) — floors are
   computed on end-of-epoch residency, and the new budgets apply
   before the next epoch's arrivals, so a compliant decision can never
   strand a placed job.

Pairing across sweep cells: a node-epoch's seed is
``derive_seed(seed, "node", node_id, "epoch", epoch)`` — a function of
*where and when*, never of *which jobs landed there* — and fault plans
are keyed by node id. Two cells differing only in placement or
partitioning policy therefore present the same per-node noise/fault
environment. (Caveat: fault *realizations* draw from each spec's
environment digest, which includes the mix, so a placement that routes
different jobs to a node sees a different realization of the same
plan; the plan's windows and rates — the experiment design — stay
paired. DESIGN.md discusses this.)

Controller state is epoch-scoped by default: each node's policy
instance is reconstructed per spec inside the engine worker, so a
node's controller re-learns after every membership change. With
``warm_start=True`` a node whose job membership did *not* change
across the epoch boundary gets its previous epoch's policy snapshot
re-injected (via the spec's ``initial_state`` field, which is part of
the content address — warm node-epochs never collide with cold ones
in the run cache); membership changes still cold-start, because a
controller's model of the departed mix is stale by construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.budget import (
    BudgetLike,
    ResourceBudget,
    coerce_budget,
    pool_totals,
)
from repro.cluster.node import ServerNode
from repro.cluster.placement import NodeView, PlacementPolicy, make_placement
from repro.cluster.recovery import (
    EVT_JOB_LOST,
    EVT_JOB_REPLACED,
    EVT_NODE_DOWN,
    EVT_NODE_EPOCH_FAILED,
    EVT_NODE_QUARANTINED,
    EVT_NODE_REJOINED,
    EVT_SESSION_RESURRECTED,
    FleetEvent,
    RecoveryConfig,
)
from repro.engine import EngineFuture, ExecutionEngine, RunError, RunSpec
from repro.engine.spec import derive_seed
from repro.errors import ClusterError, EngineError, ExperimentError
from repro.experiments.runner import RunConfig, RunResult, experiment_catalog
from repro.faults.nodes import NodeFaultPlan, NodeFaultSchedule
from repro.faults.plan import FaultPlan
from repro.metrics.fairness import jain_index
from repro.obs import active_collector
from repro.policies.registry import policy_is_qos_aware
from repro.qos.slo import SLOSpec, SLOSummary, SLOTracker
from repro.resources.types import ResourceCatalog
from repro.state import PolicyState
from repro.workloads.arrivals import KIND_QOS, ArrivalTrace, JobArrival


@dataclass(frozen=True)
class MigrationConfig:
    """When and how jobs migrate between nodes.

    A node triggers migration after its *observed* fairness (previous
    epoch's telemetry) stays below ``fairness_threshold`` for
    ``patience`` consecutive epochs; it then evicts the resident job
    with the lowest observed speedup to whichever other node the
    placement policy picks. This is deliberately conservative —
    sustained unfairness, not one bad epoch — because a migration
    resets the destination controller's learning.
    """

    fairness_threshold: float = 0.85
    patience: int = 2
    #: Control intervals of useful work a migrated job loses on its
    #: destination node (checkpoint transfer, page-cache refill, cold
    #: microarchitectural state), applied as a pro-rata scaling of its
    #: first-epoch speedup there. 0 keeps the historical free-migration
    #: behaviour.
    warmup_penalty_intervals: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.fairness_threshold <= 1.0:
            raise ClusterError(
                f"fairness_threshold must be in (0, 1], got {self.fairness_threshold}"
            )
        if self.patience < 1:
            raise ClusterError(f"patience must be >= 1, got {self.patience}")
        if self.warmup_penalty_intervals < 0:
            raise ClusterError(
                f"warmup_penalty_intervals must be >= 0, got {self.warmup_penalty_intervals}"
            )


@dataclass(frozen=True)
class NodeEpochRecord:
    """One node's outcome for one placement epoch.

    Attributes:
        epoch: placement epoch index.
        node_id: which node.
        job_ids: resident jobs during the epoch (id order).
        synthesized: ``True`` for 0/1-job epochs, which are not
            simulated — an uncontended job runs at its isolation
            performance by definition.
        throughput / fairness: the node's scored means for the epoch.
        job_speedups: per-job mean speedup over the epoch, keyed by
            job id (migration warm-up penalties, when configured, are
            already folded in).
        warm_started: the node's controller was warm-started from the
            previous epoch's snapshot (membership-stable node under
            ``warm_start=True``).
        fairness_series: per-interval fairness scores for the epoch
            (empty for synthesized epochs) — what warm-vs-cold
            comparisons use to measure intervals-to-recover.
        budget: the resource budget in force during the epoch (``None``
            only for records built by hand before the budget layer).
        capacity: jobs that budget could host — the occupancy
            denominator.
        failed: the node-epoch produced no useful work — an engine
            failure, or a straggler past the recovery deadline. Scores
            and speedups are 0.0 by construction.
        slowdown: straggler slowdown factor in force (1.0 = healthy);
            already folded into the scores.
        job_kinds: per-job type labels aligned with ``job_ids``
            (``"batch"`` / ``"qos"``); empty for records built before
            typed traces existed.
        slo_attained: per-qos-job SLO attainment for the epoch as
            ``(job_id, attainment)`` pairs in job-id order; empty when
            no SLO is active or the node hosts no qos jobs. Failed
            epochs score 0.0 (a crashed node delivers no service),
            synthesized ones 1.0 (an uncontended job cannot violate).
    """

    epoch: int
    node_id: int
    job_ids: Tuple[int, ...]
    synthesized: bool
    throughput: float
    fairness: float
    job_speedups: Dict[int, float] = field(default_factory=dict)
    warm_started: bool = False
    fairness_series: Tuple[float, ...] = ()
    budget: Optional[ResourceBudget] = None
    capacity: int = 0
    failed: bool = False
    slowdown: float = 1.0
    job_kinds: Tuple[str, ...] = ()
    slo_attained: Tuple[Tuple[int, float], ...] = ()

    @property
    def n_jobs(self) -> int:
        return len(self.job_ids)

    @property
    def mean_speedup(self) -> float:
        if not self.job_speedups:
            return 1.0
        return float(np.mean(list(self.job_speedups.values())))


@dataclass(frozen=True)
class ClusterResult:
    """A full cluster run: every node-epoch record plus event counts.

    Cluster-wide metrics aggregate *per-job mean speedups* — each
    job's speedup averaged over its resident epochs — because SATORI's
    fairness story is long-term: a job briefly squeezed during one
    epoch but compensated later should not drag the fleet's fairness
    the way a persistently starved job does.
    """

    n_nodes: int
    policy: str
    placement: str
    n_epochs: int
    records: Tuple[NodeEpochRecord, ...]
    rejected_jobs: Tuple[int, ...] = ()
    migrations: int = 0
    broker: str = "none"
    budget_transfers: int = 0
    #: Jobs dropped by fleet disruption: drained with recovery disabled,
    #: or displaced past ``max_queue_epochs``. Distinct from
    #: ``rejected_jobs`` (admission control), which never entered.
    jobs_lost: Tuple[int, ...] = ()
    replacements: int = 0
    resurrections: int = 0
    node_downs: int = 0
    node_rejoins: int = 0
    quarantines: int = 0
    node_epoch_failures: int = 0
    #: Total epochs displaced jobs spent waiting in the re-placement
    #: queue (0 when every drained job was re-placed the same epoch).
    displaced_job_epochs: int = 0
    fleet_events: Tuple[FleetEvent, ...] = ()
    #: Aggregate SLO outcome when the run enforced one (``qos_slo``
    #: passed to the simulator and the trace carried qos jobs);
    #: ``None`` otherwise — existing runs are untouched.
    slo: Optional[SLOSummary] = None

    def epoch_fairness(self) -> Dict[int, float]:
        """Per-epoch Jain index over every resident job's speedup.

        The fleet-disruption view of fairness: unlike :attr:`fairness`
        (long-term, per-job means), this shows the transient dip a
        node crash causes and how many epochs the fleet needs to climb
        back — what chaos sweeps report as recovery intervals.
        """
        by_epoch: Dict[int, List[float]] = {}
        for record in self.records:
            by_epoch.setdefault(record.epoch, []).extend(
                record.job_speedups.values()
            )
        return {
            epoch: jain_index(values) if values else float("nan")
            for epoch, values in sorted(by_epoch.items())
        }

    def node_records(self, node_id: int) -> List[NodeEpochRecord]:
        """One node's records in epoch order."""
        return sorted(
            (r for r in self.records if r.node_id == node_id), key=lambda r: r.epoch
        )

    def job_mean_speedups(self) -> Dict[int, float]:
        """Each job's speedup averaged over its resident epochs."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for record in self.records:
            for job_id, speedup in record.job_speedups.items():
                sums[job_id] = sums.get(job_id, 0.0) + speedup
                counts[job_id] = counts.get(job_id, 0) + 1
        return {job_id: sums[job_id] / counts[job_id] for job_id in sums}

    @property
    def mean_speedup(self) -> float:
        """Mean of per-job mean speedups (cluster throughput proxy)."""
        per_job = self.job_mean_speedups()
        return float(np.mean(list(per_job.values()))) if per_job else float("nan")

    @property
    def fairness(self) -> float:
        """Jain index over per-job mean speedups (long-term fairness)."""
        per_job = self.job_mean_speedups()
        return jain_index(list(per_job.values())) if per_job else float("nan")

    @property
    def worst_job_speedup(self) -> float:
        per_job = self.job_mean_speedups()
        return float(min(per_job.values())) if per_job else float("nan")

    @property
    def p10_speedup(self) -> float:
        """10th-percentile per-job speedup (tail-of-fleet metric)."""
        per_job = self.job_mean_speedups()
        if not per_job:
            return float("nan")
        return float(np.percentile(list(per_job.values()), 10))

    @property
    def throughput(self) -> float:
        """Epoch-and-node mean of simulated throughput scores."""
        simulated = [r.throughput for r in self.records if not r.synthesized]
        if not simulated:
            return float("nan")
        return float(np.mean(simulated))

    def slo_attainment(self, threshold: float = 0.8) -> float:
        """Fraction of jobs whose long-term mean speedup meets ``threshold``.

        The cluster-level SLO proxy: a job "made its SLO" when, averaged
        over its resident epochs, it retained at least ``threshold`` of
        its isolation performance.
        """
        per_job = self.job_mean_speedups()
        if not per_job:
            return float("nan")
        met = sum(1 for speedup in per_job.values() if speedup >= threshold)
        return met / len(per_job)

    def qos_attainment(self) -> float:
        """Mean windowed SLO attainment over every scored qos job-epoch.

        The *enforced* SLO view (per-interval, against the run's
        :class:`~repro.qos.SLOSpec`), unlike :meth:`slo_attainment`
        which is a long-term mean-speedup proxy. ``NaN`` when the run
        had no active SLO.
        """
        if self.slo is None:
            return float("nan")
        return self.slo.attainment

    def qos_miss_rate(self) -> float:
        """Fraction of qos job-epochs below the attainment target.

        ``NaN`` when the run had no active SLO.
        """
        if self.slo is None:
            return float("nan")
        return self.slo.miss_rate

    def node_summary(
        self,
    ) -> List[Tuple[int, float, float, float, float, float]]:
        """Per-node ``(node_id, mean throughput, mean fairness, mean
        occupancy, mean budget units, budget occupancy)``.

        *Budget occupancy* is resident jobs over budget-supported
        capacity, averaged per epoch — 1.0 means the node's budget was
        exactly full, low values mean the broker left it slack. Both
        budget columns are 0.0 for hand-built records with no budget.
        """
        rows = []
        for node_id in sorted({r.node_id for r in self.records}):
            records = self.node_records(node_id)
            budgeted = [r for r in records if r.budget is not None]
            rows.append(
                (
                    node_id,
                    float(np.mean([r.throughput for r in records])),
                    float(np.mean([r.fairness for r in records])),
                    float(np.mean([r.n_jobs for r in records])),
                    float(np.mean([r.budget.total_units for r in budgeted]))
                    if budgeted
                    else 0.0,
                    float(
                        np.mean([r.n_jobs / r.capacity for r in budgeted if r.capacity])
                    )
                    if any(r.capacity for r in budgeted)
                    else 0.0,
                )
            )
        return rows


@dataclass
class _Displaced:
    """One drained job waiting in the re-placement queue."""

    arrival: JobArrival  # base-named workload, ready for add_job
    source: int          # node it was drained from
    since_epoch: int     # epoch it was drained at


@dataclass(frozen=True)
class _Checkpoint:
    """One node's last completed-epoch policy snapshot."""

    epoch: int
    membership: Tuple[int, ...]
    catalog: ResourceCatalog  # effective catalog the state was learned under
    state: PolicyState


#: Monitoring-fault rates a flaky-telemetry node injects at intensity 1.
_FLAKY_RATES = {
    "sample_drop_rate": 0.25,
    "sample_nan_rate": 0.2,
    "sample_stuck_rate": 0.1,
    "sample_outlier_rate": 0.25,
}


def _flaky_overlay(base: Optional[FaultPlan], intensity: float) -> FaultPlan:
    """A node's fault plan with flaky-telemetry corruption folded in.

    Scales the canonical monitoring-fault rates by ``intensity`` and
    takes the max against any base plan's rates (a flaky episode never
    *reduces* an already-faulty node's corruption). The overlay covers
    the whole epoch — fleet weather is epoch-granular.
    """
    rates = {name: rate * intensity for name, rate in _FLAKY_RATES.items()}
    if base is None:
        return FaultPlan(**rates)
    return dataclasses.replace(
        base, **{name: max(getattr(base, name), rate) for name, rate in rates.items()}
    )


class ClusterSimulator:
    """N partitioned servers sharing one job arrival trace.

    Args:
        trace: the job arrival/departure trace (shared verbatim across
            sweep cells — arrivals are environment, not treatment).
        n_nodes: fleet size.
        placement: a placement policy instance or registry id
            (``"round_robin"``, ``"least_loaded"``,
            ``"contention_aware"``).
        policy: partitioning-policy factory id each node runs
            (``"SATORI"``, ``"EqualPartition"``, ...).
        catalog: per-node resource catalog (homogeneous fleet); pass
            ``catalogs`` for a heterogeneous one.
        catalogs: explicit per-node catalogs (overrides ``catalog``).
        epoch_config: methodology knobs for one node-epoch;
            ``duration_s`` is the epoch length. ``phase_offset_s`` is
            overwritten per epoch to keep workload phases continuous
            across epoch boundaries.
        policy_kwargs: kwargs for the partitioning-policy factory.
        goals: ``(throughput_metric, fairness_metric)`` for node runs.
        seed: cluster base seed; node-epoch seeds derive from it and
            the (node, epoch) coordinates only.
        node_fault_plans: optional ``node_id -> FaultPlan`` mapping
            (node-keyed so plans pair across placement cells). A
            plan's fault window must fit inside one node-epoch
            (``epoch_config.duration_s``); a window that outlives it
            raises :class:`~repro.errors.ClusterError` rather than
            silently truncating.
        fleet_plans: optional ``node_id -> NodeFaultPlan`` mapping —
            fleet weather (crashes, blackouts, stragglers, flaky
            telemetry) at placement-epoch granularity. Realized once
            per node from ``derive_seed(seed, "fleet", node_id)``, so
            every sweep arm sees identical weather. Deterministic
            windows that outlive the trace raise
            :class:`~repro.errors.ClusterError` naming the node.
        recovery: optional :class:`~repro.cluster.recovery.RecoveryConfig`
            enabling supervised recovery — drained jobs are re-placed
            instead of lost, policy state is checkpointed and
            resurrected, and the circuit breaker quarantines failing
            nodes. ``None`` (the ablation) drops drained jobs and
            disables the breaker.
        migration: optional :class:`MigrationConfig`; ``None`` disables
            job migration.
        node_capacity: cap on resident jobs per node; defaults to what
            each node's budget can physically partition.
        node_budgets: optional per-node initial budgets (heterogeneous
            fleets) — each entry a :class:`ResourceBudget`, a mapping of
            per-resource unit counts, or an ``int`` meaning that many
            units of every resource. Defaults to every node owning its
            catalog's full unit counts (the historical fixed-capacity
            fleet).
        broker: optional cluster-level budget broker — a
            :class:`~repro.broker.GlobalBroker` instance or registry id
            (``"static"``, ``"harvest"``, ``"trade"``, ``"bo"``).
            ``None`` disables brokering entirely; budgets then never
            move and records are bit-identical to a ``"static"``
            broker's.
        broker_kwargs: kwargs for the broker factory when ``broker``
            is a registry id.
        engine: execution engine for node-epoch batches; defaults to a
            fresh serial engine.
        warm_start: re-inject each node's prior-epoch policy snapshot
            whenever its job membership did not change across the
            epoch boundary, so membership-stable controllers keep
            their learned state instead of re-learning from scratch.
            Membership *changes* still cold-start (the controller's
            model of the old mix is stale by construction). Off by
            default: warm-started node-epoch specs carry the previous
            epoch's state in their content address, which chains
            digests across epochs and reduces cache sharing between
            sweep cells.
        speculate: cross-epoch speculative batching. While epoch E
            drains, the next epoch's specs are already ``submit()``-ted
            for every node whose E+1 membership is provable from the
            trace alone (no departures among its jobs, no arrival or
            re-placement can land on it, weather permits) — on a
            worker-pool engine those specs compute while the parent
            scores, brokers, and places epoch E. Specs are claimed by
            content equality, so a hit is *by construction* the spec
            the blocking path would have run, and a mispredicted spec
            is cancelled (or its finished result discarded) — results
            are bit-identical to ``speculate=False`` for every trace
            and fault schedule. Off by default. On a serial engine
            queued speculation simply waits (no wasted work). Warm
            starts and migration disable speculation wholesale: their
            specs depend on epoch-E outcomes.
        qos_slo: optional :class:`~repro.qos.SLOSpec` enforced for
            qos-kind jobs. When set, an :class:`~repro.qos.SLOTracker`
            scores every node-epoch's per-interval telemetry, records
            land in ``NodeEpochRecord.slo_attained`` /
            ``ClusterResult.slo``, per-node ``slo_attainment`` series
            and a ``cluster.slo_misses`` counter are emitted, and
            qos-aware partitioning policies (``BoPF``,
            ``QoSPARTIES``) receive the node's qos slot indices and
            the floor via injected kwargs. ``None`` (the default)
            changes nothing — specs, RNG draws, and telemetry are
            bit-identical to a simulator without the feature.
    """

    def __init__(
        self,
        trace: ArrivalTrace,
        n_nodes: int,
        placement: Union[str, PlacementPolicy] = "round_robin",
        policy: str = "SATORI",
        catalog: Optional[ResourceCatalog] = None,
        catalogs: Optional[Sequence[ResourceCatalog]] = None,
        epoch_config: Optional[RunConfig] = None,
        policy_kwargs: Optional[dict] = None,
        goals: Tuple[str, str] = ("sum_ips", "jain"),
        seed: int = 0,
        node_fault_plans: Optional[Mapping[int, FaultPlan]] = None,
        fleet_plans: Optional[Mapping[int, NodeFaultPlan]] = None,
        recovery: Optional[RecoveryConfig] = None,
        migration: Optional[MigrationConfig] = None,
        node_capacity: Optional[int] = None,
        node_budgets: Optional[Sequence[BudgetLike]] = None,
        broker: Union[str, "GlobalBroker", None] = None,  # noqa: F821
        broker_kwargs: Optional[dict] = None,
        engine: Optional[ExecutionEngine] = None,
        warm_start: bool = False,
        speculate: bool = False,
        qos_slo: Optional[SLOSpec] = None,
    ):
        if n_nodes < 1:
            raise ClusterError(f"a cluster needs at least one node, got {n_nodes}")
        if catalogs is not None and len(catalogs) != n_nodes:
            raise ClusterError(
                f"got {len(catalogs)} catalogs for {n_nodes} nodes"
            )
        if catalogs is None:
            catalogs = [catalog or experiment_catalog()] * n_nodes
        self._trace = trace
        self._placement = (
            make_placement(placement) if isinstance(placement, str) else placement
        )
        self._policy = policy
        self._policy_kwargs = dict(policy_kwargs or {})
        self._epoch_config = epoch_config or RunConfig(duration_s=5.0)
        self._goals = goals
        self._seed = int(seed)
        self._fault_plans = dict(node_fault_plans or {})
        unknown = set(self._fault_plans) - set(range(n_nodes))
        if unknown:
            raise ClusterError(
                f"fault plans reference unknown node ids {sorted(unknown)}"
            )
        # A fault window reaching past the node-epoch would be silently
        # truncated by FaultPlan.window(); reject it loudly instead.
        epoch_s = self._epoch_config.duration_s
        for node_id in sorted(self._fault_plans):
            plan = self._fault_plans[node_id]
            if plan.start_s >= epoch_s or (
                plan.end_s is not None and plan.end_s > epoch_s
            ):
                raise ClusterError(
                    f"node {node_id}: fault plan window "
                    f"[{plan.start_s}, {plan.end_s}) outlives the {epoch_s}s "
                    f"node-epoch; shrink the window or lengthen the epoch"
                )
        self._fleet_plans = dict(fleet_plans or {})
        unknown = set(self._fleet_plans) - set(range(n_nodes))
        if unknown:
            raise ClusterError(
                f"fleet fault plans reference unknown node ids {sorted(unknown)}"
            )
        # Fleet weather is realized here, once, from node-keyed seeds:
        # identical across every sweep arm sharing (trace, seed).
        self._fleet_schedules: Dict[int, NodeFaultSchedule] = {}
        for node_id in sorted(self._fleet_plans):
            try:
                self._fleet_schedules[node_id] = NodeFaultSchedule.generate(
                    self._fleet_plans[node_id],
                    trace.n_epochs,
                    seed=derive_seed(self._seed, "fleet", node_id),
                )
            except ExperimentError as error:
                raise ClusterError(f"node {node_id}: {error}") from error
        self._recovery = recovery
        self._migration = migration
        self._engine = engine or ExecutionEngine()
        if node_budgets is not None and len(node_budgets) != n_nodes:
            raise ClusterError(
                f"got {len(node_budgets)} node budgets for {n_nodes} nodes"
            )
        self._nodes = [
            ServerNode(
                node_id,
                catalogs[node_id],
                capacity=node_capacity,
                budget=(
                    coerce_budget(node_budgets[node_id], catalogs[node_id])
                    if node_budgets is not None
                    else None
                ),
            )
            for node_id in range(n_nodes)
        ]
        # The conserved quantity: cluster-wide per-resource unit totals.
        # Fixed at construction; every broker decision is checked
        # against it.
        self._pool = pool_totals(node.budget for node in self._nodes)
        if isinstance(broker, str):
            # Lazy import: repro.broker imports repro.cluster.budget at
            # module load, so the simulator must not import it back at
            # module level.
            from repro.broker import make_broker

            broker = make_broker(broker, **(broker_kwargs or {}))
        elif broker_kwargs:
            raise ClusterError(
                "broker_kwargs only apply when broker is a registry id"
            )
        self._broker = broker
        self._budget_transfers = 0
        self._warm_start = bool(warm_start)
        # Previous-epoch observations per node (the placement policy's
        # information set) and consecutive-unfair counters for migration.
        self._observed: Dict[int, Tuple[float, float]] = {}
        self._unfair_streak: Dict[int, int] = {node.node_id: 0 for node in self._nodes}
        # Warm-start bookkeeping: each node's previous-epoch membership
        # and final policy snapshot, and the jobs that migrated in at
        # the current epoch boundary (warm-up penalty targets).
        self._prev_membership: Dict[int, Tuple[int, ...]] = {}
        self._node_states: Dict[int, PolicyState] = {}
        self._migrated_in: Dict[int, set] = {}
        # Fleet fault-tolerance state: which nodes are down (and until
        # when), their parked budgets, the re-placement queue, policy
        # checkpoints awaiting resurrection, and the audit trail.
        self._down_until: Dict[int, Optional[int]] = {}
        self._parked: Dict[int, ResourceBudget] = {}
        self._queue: List[_Displaced] = []
        self._lost: List[int] = []
        self._checkpoints: Dict[int, _Checkpoint] = {}
        self._adoptable: List[_Checkpoint] = []
        self._pending_restore: Dict[int, PolicyState] = {}
        self._replaced_in: Dict[int, set] = {}
        self._fail_streak: Dict[int, int] = {node.node_id: 0 for node in self._nodes}
        self._fleet_events: List[FleetEvent] = []
        self._node_downs = 0
        self._node_rejoins = 0
        self._replacements = 0
        self._resurrections = 0
        self._quarantines = 0
        self._node_epoch_failures = 0
        self._displaced_epochs = 0
        # Incremental stepping state: :meth:`run` is a loop over
        # :meth:`step_epoch`, and external callers may interleave
        # epochs with their own work (the serve layer, speculative
        # batching). ``_previous`` holds the last epoch's records —
        # the placement policy's information set.
        self._epoch = 0
        self._all_records: List[NodeEpochRecord] = []
        self._rejected: List[int] = []
        self._migrations = 0
        self._previous: Dict[int, NodeEpochRecord] = {}
        # Cross-epoch speculation: futures for next-epoch specs we
        # submitted early, keyed by spec (content identity). Claimed by
        # equality when the epoch actually runs; unclaimed entries are
        # mispredictions and are cancelled.
        self._speculate = bool(speculate)
        self._spec_futures: Dict[RunSpec, EngineFuture] = {}
        self._speculative_submitted = 0
        self._speculative_hits = 0
        self._speculative_cancelled = 0
        # SLO enforcement: one tracker for the whole run, scoring each
        # node-epoch's qos jobs against the spec. Inert when no spec.
        self._qos_slo = qos_slo
        self._slo_tracker = SLOTracker(qos_slo) if qos_slo is not None else None

    @property
    def nodes(self) -> List[ServerNode]:
        return self._nodes

    @property
    def engine(self) -> ExecutionEngine:
        return self._engine

    @property
    def broker(self):
        """The cluster-level budget broker (``None`` when disabled)."""
        return self._broker

    @property
    def pool(self) -> Dict[str, int]:
        """Cluster-wide per-resource unit totals (the conserved pool)."""
        return dict(self._pool)

    @property
    def recovery(self) -> Optional[RecoveryConfig]:
        """The supervised-recovery policy (``None`` = ablation)."""
        return self._recovery

    @property
    def fleet_schedules(self) -> Dict[int, NodeFaultSchedule]:
        """Realized fleet weather per node (empty without fleet plans)."""
        return dict(self._fleet_schedules)

    @property
    def down_nodes(self) -> Tuple[int, ...]:
        """Nodes currently down (crashed, blacked out, or quarantined)."""
        return tuple(sorted(self._down_until))

    # -- views ------------------------------------------------------------

    def _views(self, exclude: Optional[int] = None) -> List[NodeView]:
        """Current node views (previous-epoch telemetry), in id order.

        ``exclude`` presents one node as full — used to force a
        migrating job *off* its source node. Down nodes are presented
        as full too, so no placement policy can route onto them while
        keeping every policy's view indexing stable.
        """
        views = []
        for node in self._nodes:
            mean_speedup, fairness = self._observed.get(node.node_id, (1.0, 1.0))
            n_jobs = node.n_jobs
            if node.node_id == exclude or node.node_id in self._down_until:
                n_jobs = node.capacity
            views.append(
                NodeView(
                    node_id=node.node_id,
                    n_jobs=n_jobs,
                    capacity=node.capacity,
                    mean_speedup=mean_speedup,
                    fairness=fairness,
                    budget_units=node.budget.total_units,
                    qos_jobs=node.qos_jobs,
                )
            )
        return views

    def _node_policy_kwargs(self, node: ServerNode) -> dict:
        """Per-node policy kwargs, with qos context injected when due.

        When an SLO is active, the partitioning policy is qos-aware
        (see :func:`repro.policies.registry.policy_is_qos_aware`), and
        the node hosts at least one qos job, the factory receives the
        node's qos slot indices and the SLO floor. Everything else —
        no SLO, unaware policy, all-batch node — gets the shared
        kwargs object unchanged, so spec digests are bit-identical to
        a simulator without the feature.

        Used by *both* the blocking spec build and speculative
        submission: speculation claims specs by content equality, so
        the two paths must construct identical kwargs.
        """
        if self._qos_slo is None or not policy_is_qos_aware(self._policy):
            return self._policy_kwargs
        qos_slots = tuple(
            slot for slot, kind in enumerate(node.job_kinds) if kind == KIND_QOS
        )
        if not qos_slots:
            return self._policy_kwargs
        merged = dict(self._policy_kwargs)
        merged["qos_jobs"] = qos_slots
        merged["qos_min_speedup"] = self._qos_slo.min_speedup
        return merged

    # -- SLO scoring -------------------------------------------------------

    def _score_slo_epoch(
        self,
        epoch: int,
        node: ServerNode,
        interval_speedups: Sequence[Sequence[float]],
    ) -> Tuple[Tuple[int, float], ...]:
        """Score one node-epoch's qos jobs; ``()`` when no SLO is active."""
        if self._slo_tracker is None:
            return ()
        attained = self._slo_tracker.score_epoch(
            epoch, node.node_id, node.job_ids, node.job_kinds, interval_speedups
        )
        return tuple(sorted(attained.items()))

    def _score_slo_outage(
        self, epoch: int, node: ServerNode
    ) -> Tuple[Tuple[int, float], ...]:
        """Score a failed node-epoch: its qos jobs attain nothing."""
        if self._slo_tracker is None:
            return ()
        attained = self._slo_tracker.score_outage(
            epoch, node.node_id, node.job_ids, node.job_kinds
        )
        return tuple(sorted(attained.items()))

    # -- epoch phases ------------------------------------------------------

    def _apply_departures(self, epoch: int) -> None:
        departing = set()
        for arrival in self._trace.departures_at(epoch):
            departing.add(arrival.job_id)
            for node in self._nodes:
                if node.has_job(arrival.job_id):
                    node.remove_job(arrival.job_id)
                    break
        if departing and self._queue:
            # A displaced job whose residency ends departs from the
            # queue — it is not lost, but its wait epochs still count.
            kept: List[_Displaced] = []
            for item in self._queue:
                if item.arrival.job_id in departing:
                    self._displaced_epochs += epoch - item.since_epoch
                else:
                    kept.append(item)
            self._queue = kept

    # -- fleet weather and recovery ---------------------------------------

    def _fleet_event(self, event: FleetEvent) -> None:
        self._fleet_events.append(event)

    def _apply_fleet_weather(self, epoch: int) -> None:
        """Start of epoch: process rejoins, then new down windows.

        Rejoins run first so a node whose blackout just ended is
        placeable this very epoch — its parked budget returns before
        re-placement and arrivals look at the fleet.
        """
        for node_id in sorted(self._down_until):
            rejoin = self._down_until[node_id]
            if rejoin is not None and epoch >= rejoin:
                self._rejoin(epoch, node_id)
        for node_id in sorted(self._fleet_schedules):
            if node_id in self._down_until:
                continue
            schedule = self._fleet_schedules[node_id]
            if schedule.down_at(epoch):
                self._take_down(
                    epoch, node_id, until=schedule.down_end(epoch), cause="fault"
                )

    def _take_down(
        self, epoch: int, node_id: int, until: Optional[int], cause: str
    ) -> None:
        """Drain a node and park its budget until it rejoins.

        With recovery enabled, drained jobs enter the re-placement
        queue and the node's last checkpoint becomes adoptable;
        without it, they are simply lost — the ablation the chaos
        sweep measures against. The budget is *parked*, not destroyed:
        the conserved pool is live budgets + parked budgets at every
        epoch, so crash/rejoin cycles are conservation-neutral by
        construction.
        """
        obs = active_collector()
        node = self._nodes[node_id]
        self._down_until[node_id] = until
        self._parked[node_id] = node.budget
        self._node_downs += 1
        checkpoint = self._checkpoints.pop(node_id, None)
        if self._recovery is not None and checkpoint is not None:
            self._adoptable.append(checkpoint)
        drained = node.job_ids
        for job_id in drained:
            workload = node.workload_of(job_id)
            job_kind = node.kind_of(job_id)
            node.remove_job(job_id)
            # Strip the instance rename; the adopting node re-applies
            # it. The kind travels too — a qos job drained by a crash
            # must still be a qos job after recovery re-placement
            # (the migration path already preserved it).
            base_name = workload.name.rsplit("#", 1)[0]
            arrival = JobArrival(
                job_id=job_id,
                workload=dataclasses.replace(workload, name=base_name),
                arrival_epoch=0,
                kind=job_kind,
            )
            if self._recovery is None:
                self._lost.append(job_id)
                obs.event("job_lost", "cluster", job_id=job_id, node=node_id, epoch=epoch)
                obs.metrics.counter("cluster.jobs_lost").inc()
                self._fleet_event(
                    FleetEvent(epoch, EVT_JOB_LOST, node_id, job_id, detail=cause)
                )
            else:
                self._queue.append(_Displaced(arrival, node_id, epoch))
        kind = "node_quarantined" if cause == "quarantine" else "node_down"
        obs.event(
            kind, "cluster",
            node=node_id, epoch=epoch, until=until, jobs=len(drained), cause=cause,
        )
        obs.metrics.counter(f"cluster.{kind}s").inc()
        self._fleet_event(
            FleetEvent(
                epoch,
                EVT_NODE_QUARANTINED if cause == "quarantine" else EVT_NODE_DOWN,
                node_id,
                detail=f"until={until} jobs={len(drained)} cause={cause}",
            )
        )
        # The node's telemetry, learned state, and failure streak died
        # with it.
        self._observed.pop(node_id, None)
        self._node_states.pop(node_id, None)
        self._prev_membership.pop(node_id, None)
        self._pending_restore.pop(node_id, None)
        self._unfair_streak[node_id] = 0
        self._fail_streak[node_id] = 0

    def _rejoin(self, epoch: int, node_id: int) -> None:
        """Return a down node to service with its parked budget."""
        obs = active_collector()
        del self._down_until[node_id]
        budget = self._parked.pop(node_id)
        node = self._nodes[node_id]
        if node.budget != budget:
            node.set_budget(budget)
        self._node_rejoins += 1
        obs.event("node_rejoined", "cluster", node=node_id, epoch=epoch)
        obs.metrics.counter("cluster.node_rejoins").inc()
        self._fleet_event(FleetEvent(epoch, EVT_NODE_REJOINED, node_id))

    def _replace_queued(self, epoch: int) -> None:
        """Re-place displaced jobs ahead of this epoch's arrivals."""
        if not self._queue:
            return
        obs = active_collector()
        still: List[_Displaced] = []
        for item in self._queue:
            job_id = item.arrival.job_id
            waited = epoch - item.since_epoch
            try:
                target = self._placement.place(self._views())
            except ClusterError:
                target = None
            if target is None or not self._nodes[target].has_capacity:
                if (
                    self._recovery is not None
                    and self._recovery.max_queue_epochs is not None
                    and waited >= self._recovery.max_queue_epochs
                ):
                    self._lost.append(job_id)
                    self._displaced_epochs += waited
                    obs.event(
                        "job_lost", "cluster",
                        job_id=job_id, node=item.source, epoch=epoch,
                    )
                    obs.metrics.counter("cluster.jobs_lost").inc()
                    self._fleet_event(
                        FleetEvent(
                            epoch, EVT_JOB_LOST, item.source, job_id,
                            detail=f"queued {waited} epoch(s), gave up",
                        )
                    )
                else:
                    still.append(item)
                continue
            self._nodes[target].add_job(item.arrival)
            self._replacements += 1
            self._displaced_epochs += waited
            self._replaced_in.setdefault(target, set()).add(job_id)
            obs.event(
                "job_replaced", "cluster",
                job_id=job_id, source=item.source, target=target,
                epoch=epoch, waited=waited,
            )
            obs.metrics.counter("cluster.replacements").inc()
            self._fleet_event(
                FleetEvent(
                    epoch, EVT_JOB_REPLACED, item.source, job_id,
                    detail=f"target={target} waited={waited}",
                )
            )
        self._queue = still

    def _match_resurrections(self, epoch: int) -> None:
        """Restore crashed controllers whose job group reassembled.

        Runs after re-placement *and* arrivals, when epoch membership
        is final: an adoptable checkpoint is resurrected onto a live
        node holding exactly the checkpoint's job group under the same
        effective catalog (a different catalog means the learned
        partitionings no longer describe the hardware). Groups that
        scattered stay adoptable — they may yet reassemble — but cold
        membership simply cold-starts, which is the checkpoint-lag
        contract: resurrection is an optimization, never a correctness
        requirement.
        """
        if not self._adoptable:
            return
        obs = active_collector()
        for checkpoint in list(self._adoptable):
            for node in self._nodes:
                if node.node_id in self._down_until:
                    continue
                if node.node_id in self._pending_restore:
                    continue
                if node.job_ids != checkpoint.membership:
                    continue
                if node.effective_catalog != checkpoint.catalog:
                    continue
                self._pending_restore[node.node_id] = checkpoint.state
                self._adoptable.remove(checkpoint)
                self._resurrections += 1
                obs.event(
                    "session_resurrected", "cluster",
                    node=node.node_id, epoch=epoch,
                    snapshot_epoch=checkpoint.epoch,
                    lag_epochs=epoch - checkpoint.epoch,
                )
                obs.metrics.counter("cluster.resurrections").inc()
                self._fleet_event(
                    FleetEvent(
                        epoch, EVT_SESSION_RESURRECTED, node.node_id,
                        detail=f"snapshot_epoch={checkpoint.epoch}",
                    )
                )
                break

    def _maybe_quarantine(self, epoch: int) -> None:
        """Circuit breaker: drain nodes with too many consecutive failures."""
        if self._recovery is None:
            return
        for node in self._nodes:
            if node.node_id in self._down_until:
                continue
            if self._fail_streak[node.node_id] < self._recovery.failure_threshold:
                continue
            self._quarantines += 1
            self._take_down(
                epoch,
                node.node_id,
                until=epoch + 1 + self._recovery.quarantine_epochs,
                cause="quarantine",
            )

    def _audit_pool(self, epoch: int) -> None:
        """Assert bit-exact budget conservation: live + parked == pool."""
        totals = pool_totals(
            node.budget
            for node in self._nodes
            if node.node_id not in self._down_until
        )
        for budget in self._parked.values():
            for name in budget.names:
                totals[name] = totals.get(name, 0) + budget.get(name)
        if totals != self._pool:
            raise ClusterError(
                f"budget leak at epoch {epoch}: live + parked totals {totals} "
                f"!= pool {self._pool}"
            )

    def _maybe_migrate(self, records_by_node: Dict[int, NodeEpochRecord]) -> int:
        """Evict the worst-treated job from persistently unfair nodes."""
        if self._migration is None:
            return 0
        moved = 0
        for node in self._nodes:
            record = records_by_node.get(node.node_id)
            if record is None or record.synthesized:
                self._unfair_streak[node.node_id] = 0
                continue
            if record.fairness < self._migration.fairness_threshold:
                self._unfair_streak[node.node_id] += 1
            else:
                self._unfair_streak[node.node_id] = 0
                continue
            if self._unfair_streak[node.node_id] < self._migration.patience:
                continue
            if node.n_jobs < 2:
                continue
            victim = min(record.job_speedups, key=record.job_speedups.get)
            if not node.has_job(victim):  # departed in the meantime
                continue
            try:
                target = self._placement.place(self._views(exclude=node.node_id))
            except ClusterError:
                continue  # nowhere to go; stay put
            if target == node.node_id or not self._nodes[target].has_capacity:
                continue
            workload = node.workload_of(victim)
            kind = node.kind_of(victim)
            active_collector().event(
                "migration", "cluster",
                job_id=victim, source=node.node_id, target=target,
            )
            active_collector().metrics.counter("cluster.migrations").inc()
            node.remove_job(victim)
            # Re-add under the original (pre-instance-rename) name; the
            # destination node re-renames it identically since the job
            # id is stable.
            base_name = workload.name.rsplit("#", 1)[0]
            self._nodes[target].add_job(
                JobArrival(
                    job_id=victim,
                    workload=dataclasses.replace(workload, name=base_name),
                    arrival_epoch=0,
                    kind=kind,
                )
            )
            self._migrated_in.setdefault(target, set()).add(victim)
            self._unfair_streak[node.node_id] = 0
            moved += 1
        return moved

    def _place_arrivals(self, epoch: int) -> List[int]:
        obs = active_collector()
        rejected = []
        for arrival in self._trace.arrivals_at(epoch):
            try:
                node_id = self._placement.place(self._views())
            except ClusterError:
                rejected.append(arrival.job_id)
                obs.event(
                    "job_rejected", "cluster", job_id=arrival.job_id, epoch=epoch
                )
                obs.metrics.counter("cluster.rejected_jobs").inc()
                continue
            self._nodes[node_id].add_job(arrival)
            obs.event(
                "placement", "cluster",
                job_id=arrival.job_id, node=node_id, epoch=epoch,
            )
        return rejected

    def _epoch_records(self, epoch: int) -> List[NodeEpochRecord]:
        """Run (or synthesize) every live node's epoch and score it."""
        obs = active_collector()
        # Membership is final for this epoch — now crashed controllers
        # whose job groups reassembled can be matched for resurrection.
        self._match_resurrections(epoch)
        config = RunConfig(
            duration_s=self._epoch_config.duration_s,
            interval_s=self._epoch_config.interval_s,
            baseline_reset_s=self._epoch_config.baseline_reset_s,
            noise_sigma=self._epoch_config.noise_sigma,
            phase_offset_s=epoch * self._epoch_config.duration_s,
            warmup_fraction=self._epoch_config.warmup_fraction,
            actuation_retries=self._epoch_config.actuation_retries,
        )
        specs: List[RunSpec] = []
        spec_nodes: List[ServerNode] = []
        spec_slowdowns: List[float] = []
        warm_nodes: set = set()
        records: List[NodeEpochRecord] = []

        def _failed_record(node: ServerNode, slowdown: float, why: str) -> None:
            self._fail_streak[node.node_id] += 1
            self._node_epoch_failures += 1
            obs.event(
                "node_epoch_failed", "cluster",
                node=node.node_id, epoch=epoch,
                streak=self._fail_streak[node.node_id], why=why,
            )
            obs.metrics.counter("cluster.node_epoch_failures").inc()
            self._fleet_event(
                FleetEvent(epoch, EVT_NODE_EPOCH_FAILED, node.node_id, detail=why)
            )
            records.append(
                NodeEpochRecord(
                    epoch=epoch,
                    node_id=node.node_id,
                    job_ids=node.job_ids,
                    synthesized=False,
                    throughput=0.0,
                    fairness=0.0,
                    job_speedups={job_id: 0.0 for job_id in node.job_ids},
                    budget=node.budget,
                    capacity=node.capacity,
                    failed=True,
                    slowdown=slowdown,
                    job_kinds=node.job_kinds,
                    slo_attained=self._score_slo_outage(epoch, node),
                )
            )

        for node in self._nodes:
            if node.node_id in self._down_until:
                continue
            schedule = self._fleet_schedules.get(node.node_id)
            slowdown = schedule.slowdown_at(epoch) if schedule else 1.0
            flaky = schedule.flaky_at(epoch) if schedule else 0.0
            if node.n_jobs < 2:
                continue
            initial_state = self._pending_restore.pop(node.node_id, None)
            if (
                self._recovery is not None
                and slowdown >= self._recovery.straggler_deadline_factor
            ):
                # The straggler misses its deadline outright: the
                # node-epoch fails with zero useful work (a consumed
                # resurrection is wasted — the controller never ran).
                _failed_record(
                    node, slowdown,
                    f"straggler slowdown {slowdown:.2f}x missed deadline",
                )
                continue
            if initial_state is None and (
                self._warm_start
                and self._prev_membership.get(node.node_id) == node.job_ids
            ):
                # Membership unchanged across the epoch boundary: the
                # controller's learned model still describes this mix,
                # so hand the prior epoch's snapshot back to it.
                initial_state = self._node_states.get(node.node_id)
                if initial_state is not None:
                    warm_nodes.add(node.node_id)
                    obs.event(
                        "warm_start", "cluster", node=node.node_id, epoch=epoch
                    )
                    obs.metrics.counter("cluster.warm_starts").inc()
            fault_plan = self._fault_plans.get(node.node_id)
            if flaky > 0.0:
                fault_plan = _flaky_overlay(fault_plan, flaky)
            specs.append(
                node.epoch_spec(
                    policy=self._policy,
                    run_config=config,
                    seed=derive_seed(self._seed, "node", node.node_id, "epoch", epoch),
                    policy_kwargs=self._node_policy_kwargs(node),
                    goals=self._goals,
                    fault_plan=fault_plan,
                    initial_state=initial_state,
                )
            )
            spec_nodes.append(node)
            spec_slowdowns.append(slowdown)

        results = self._run_node_epochs(epoch, specs)

        penalty = (
            self._migration.warmup_penalty_intervals if self._migration is not None else 0
        )
        replace_penalty = (
            self._recovery.warmup_penalty_intervals if self._recovery is not None else 0
        )
        simulated = {node.node_id for node in spec_nodes}
        for node, result, slowdown in zip(spec_nodes, results, spec_slowdowns):
            if isinstance(result, RunError):
                _failed_record(node, slowdown, f"engine: {result.error}")
                self._node_states.pop(node.node_id, None)
                continue
            assert isinstance(result, RunResult)
            self._fail_streak[node.node_id] = 0
            speedups = result.scored.mean_job_speedups()
            job_speedups = {
                job_id: float(speedup) / slowdown
                for job_id, speedup in zip(node.job_ids, speedups)
            }
            penalty_scale: Dict[int, float] = {}
            for intervals, arrived in (
                (penalty, self._migrated_in.get(node.node_id, ())),
                (replace_penalty, self._replaced_in.get(node.node_id, ())),
            ):
                if not intervals:
                    continue
                # Jobs that just moved here lose `intervals` control
                # intervals of useful work this epoch (pro-rata).
                scale = max(0.0, 1.0 - intervals / config.n_steps)
                for job_id in arrived:
                    if job_id in job_speedups:
                        job_speedups[job_id] *= scale
                        penalty_scale[job_id] = (
                            penalty_scale.get(job_id, 1.0) * scale
                        )
            slo_attained: Tuple[Tuple[int, float], ...] = ()
            if self._slo_tracker is not None:
                # Per-interval speedups (straggler slowdown and warm-up
                # penalties folded in, matching the epoch scores) feed
                # the windowed SLO attainment; only qos slots need a
                # series.
                kinds = node.job_kinds
                interval_speedups = [
                    tuple(
                        float(rec.speedups[slot])
                        / slowdown
                        * penalty_scale.get(job_id, 1.0)
                        for rec in result.scored
                    )
                    if slot < len(kinds) and kinds[slot] == KIND_QOS
                    else ()
                    for slot, job_id in enumerate(node.job_ids)
                ]
                slo_attained = self._score_slo_epoch(
                    epoch, node, interval_speedups
                )
            records.append(
                NodeEpochRecord(
                    epoch=epoch,
                    node_id=node.node_id,
                    job_ids=node.job_ids,
                    synthesized=False,
                    throughput=result.throughput / slowdown,
                    fairness=result.fairness,
                    job_speedups=job_speedups,
                    warm_started=node.node_id in warm_nodes,
                    fairness_series=tuple(
                        float(v) for v in result.telemetry.series("fairness")
                    ),
                    budget=node.budget,
                    capacity=node.capacity,
                    slowdown=slowdown,
                    job_kinds=node.job_kinds,
                    slo_attained=slo_attained,
                )
            )
            if result.final_state is not None:
                self._node_states[node.node_id] = result.final_state
            else:
                self._node_states.pop(node.node_id, None)
        failed = {record.node_id for record in records if record.failed}
        for node in self._nodes:
            if node.node_id in simulated or node.node_id in failed:
                continue
            if node.node_id in self._down_until:
                continue
            # 0/1-job nodes: an uncontended job retains its isolation
            # performance by construction — nothing to simulate. No
            # controller ran this epoch, so any held snapshot is stale;
            # drop it.
            self._node_states.pop(node.node_id, None)
            records.append(
                NodeEpochRecord(
                    epoch=epoch,
                    node_id=node.node_id,
                    job_ids=node.job_ids,
                    synthesized=True,
                    throughput=1.0,
                    fairness=1.0,
                    job_speedups={job_id: 1.0 for job_id in node.job_ids},
                    budget=node.budget,
                    capacity=node.capacity,
                    job_kinds=node.job_kinds,
                    # An uncontended qos job runs at isolation speed:
                    # full attainment by construction.
                    slo_attained=self._score_slo_epoch(
                        epoch, node, [() for _ in node.job_ids]
                    ),
                )
            )
        for node in self._nodes:
            if node.node_id in self._down_until:
                continue
            self._prev_membership[node.node_id] = node.job_ids
        self._migrated_in.clear()
        self._replaced_in.clear()
        if (
            self._recovery is not None
            and (epoch + 1) % self._recovery.snapshot_cadence_epochs == 0
        ):
            # Checkpoint cadence: snapshot every live controller's
            # state as of this completed epoch. A crash before the
            # next checkpoint resurrects from *this* one (checkpoint
            # lag).
            for node in self._nodes:
                if node.node_id in self._down_until:
                    continue
                state = self._node_states.get(node.node_id)
                if state is None:
                    continue
                self._checkpoints[node.node_id] = _Checkpoint(
                    epoch=epoch,
                    membership=node.job_ids,
                    catalog=node.effective_catalog,
                    state=state,
                )
        if self._slo_tracker is not None:
            # Displaced qos jobs still waiting in the re-placement
            # queue received no service this epoch: that outage is part
            # of their SLO story (it is what the slo_aware placement +
            # recovery interplay is judged on).
            for item in self._queue:
                if item.arrival.kind == KIND_QOS:
                    self._slo_tracker.score_outage(
                        epoch, item.source, (item.arrival.job_id,), (KIND_QOS,)
                    )
        records.sort(key=lambda r: r.node_id)
        return records

    # -- speculative cross-epoch batching ---------------------------------

    def _run_node_epochs(self, epoch: int, specs: List[RunSpec]) -> List:
        """Execute an epoch's specs, claiming/refreshing speculation.

        Without ``speculate`` this is exactly the historical blocking
        ``engine.run`` call. With it, each spec first tries to claim a
        speculative future submitted last epoch (content equality —
        a hit IS the same run), leftovers are cancelled as
        mispredictions, the *next* epoch's predictable specs are
        submitted before this epoch drains, and only then are this
        epoch's futures drained in spec order — reproducing
        ``on_error`` semantics bit-identically.
        """
        on_error = "record" if self._recovery is not None else "raise"
        if not self._speculate:
            return self._engine.run(specs, on_error=on_error) if specs else []
        obs = active_collector()
        futures: List[EngineFuture] = []
        for spec in specs:
            future = self._spec_futures.pop(spec, None)
            if future is not None:
                self._speculative_hits += 1
                obs.metrics.counter("cluster.speculative_hits").inc()
            else:
                future = self._engine.submit(spec)
            futures.append(future)
        self._cancel_unclaimed(obs)
        self._speculate_next(epoch + 1, obs)
        results = []
        for future in futures:
            value = future.outcome()
            if isinstance(value, RunError) and on_error == "raise":
                raise EngineError(
                    f"{value.spec!r} failed after {value.attempts} "
                    f"attempt(s): {value.error}"
                )
            results.append(value)
        return results

    def _cancel_unclaimed(self, obs) -> None:
        """Retire mispredicted speculative futures.

        Still-queued specs are withdrawn from the engine; specs a pool
        worker already started (or finished) just have their results
        discarded — wasted work, counted separately, never wrong
        results.
        """
        for spec, future in list(self._spec_futures.items()):
            if self._engine.cancel(future):
                self._speculative_cancelled += 1
                obs.metrics.counter("cluster.speculative_cancelled").inc()
            else:
                obs.metrics.counter("cluster.speculative_wasted").inc()
            del self._spec_futures[spec]

    def _speculate_next(self, next_epoch: int, obs) -> None:
        """Submit next-epoch specs whose content is already determined.

        A node's epoch-``next_epoch`` spec is predictable exactly when
        nothing that happens between now and then can change its mix,
        catalog, or fault overlay: no resident job departs, no arrival
        or re-placement can land on it, its weather neither downs it
        nor fails it outright, and no resurrection state is pending.
        Anything less certain is skipped — a wrong guess would only be
        wasted work (claims go by content equality), but conservative
        prediction keeps the speculation hit rate near 1 on stable
        traces. Broker budget moves after this epoch simply turn the
        affected predictions into cancelled misses.
        """
        if next_epoch >= self._trace.n_epochs:
            return
        if self._warm_start or self._migration is not None:
            # Warm-start state and migration targets depend on the
            # current epoch's outcome — next-epoch specs are not a
            # function of the trace alone.
            return
        if self._down_until or self._queue or self._pending_restore:
            return
        if any(
            schedule.down_at(next_epoch)
            for schedule in self._fleet_schedules.values()
        ):
            # A node going down next epoch drains its jobs into the
            # re-placement queue, perturbing every node with capacity.
            return
        departing = {
            arrival.job_id for arrival in self._trace.departures_at(next_epoch)
        }
        has_arrivals = bool(self._trace.arrivals_at(next_epoch))
        config = RunConfig(
            duration_s=self._epoch_config.duration_s,
            interval_s=self._epoch_config.interval_s,
            baseline_reset_s=self._epoch_config.baseline_reset_s,
            noise_sigma=self._epoch_config.noise_sigma,
            phase_offset_s=next_epoch * self._epoch_config.duration_s,
            warmup_fraction=self._epoch_config.warmup_fraction,
            actuation_retries=self._epoch_config.actuation_retries,
        )
        for node in self._nodes:
            if node.n_jobs < 2:
                continue
            if departing & set(node.job_ids):
                continue
            if has_arrivals and node.n_jobs < node.capacity:
                continue
            schedule = self._fleet_schedules.get(node.node_id)
            slowdown = schedule.slowdown_at(next_epoch) if schedule else 1.0
            flaky = schedule.flaky_at(next_epoch) if schedule else 0.0
            if (
                self._recovery is not None
                and slowdown >= self._recovery.straggler_deadline_factor
            ):
                continue
            fault_plan = self._fault_plans.get(node.node_id)
            if flaky > 0.0:
                fault_plan = _flaky_overlay(fault_plan, flaky)
            spec = node.epoch_spec(
                policy=self._policy,
                run_config=config,
                seed=derive_seed(
                    self._seed, "node", node.node_id, "epoch", next_epoch
                ),
                policy_kwargs=self._node_policy_kwargs(node),
                goals=self._goals,
                fault_plan=fault_plan,
                initial_state=None,
            )
            if spec in self._spec_futures:
                continue
            self._spec_futures[spec] = self._engine.submit(spec)
            self._speculative_submitted += 1
            obs.metrics.counter("cluster.speculative_submitted").inc()

    # -- brokering ---------------------------------------------------------

    def _broker_step(self, epoch: int, records: Sequence[NodeEpochRecord]) -> None:
        """Let the broker reassign budgets from the epoch's outcomes."""
        if self._broker is None:
            return
        from repro.broker import BrokerView  # lazy: see __init__

        live = [
            node for node in self._nodes if node.node_id not in self._down_until
        ]
        if not live:
            return
        obs = active_collector()
        by_node = {record.node_id: record for record in records}
        views = []
        for node in live:
            record = by_node[node.node_id]
            views.append(
                BrokerView(
                    node_id=node.node_id,
                    budget=node.budget,
                    floor=node.budget.floor(node.catalog, node.n_jobs),
                    n_jobs=node.n_jobs,
                    throughput=record.throughput,
                    fairness=record.fairness,
                    mean_speedup=record.mean_speedup,
                    synthesized=record.synthesized,
                )
            )
        with obs.span(
            "broker.decide", "broker", epoch=epoch, scheme=self._broker.name
        ):
            decision = self._broker.decide(epoch, views)
        self._apply_budgets(epoch, decision, views)

    def _apply_budgets(
        self,
        epoch: int,
        decision: Mapping[int, ResourceBudget],
        views: Sequence["BrokerView"],  # noqa: F821
    ) -> None:
        """Validate a broker decision, emit its transfers, and adopt it.

        The broker only sees (and may only reassign) *live* nodes; a
        down node's budget is parked and its units are subtracted from
        the conservation target until it rejoins.

        Raises:
            ClusterError: on an incomplete mapping, a conservation
                violation (per-resource totals drifted from the pool),
                or a floor violation (a node left unable to host its
                resident jobs). Broker bugs fail loudly — a silent leak
                of capacity would invalidate every downstream metric.
        """
        live = [
            node for node in self._nodes if node.node_id not in self._down_until
        ]
        missing = {node.node_id for node in live} - set(decision)
        if missing:
            raise ClusterError(
                f"broker {self._broker.name!r} omitted node(s) {sorted(missing)} "
                f"at epoch {epoch}"
            )
        expected = dict(self._pool)
        for budget in self._parked.values():
            for name in budget.names:
                expected[name] -= budget.get(name)
        totals = pool_totals(decision[node.node_id] for node in live)
        if totals != expected:
            raise ClusterError(
                f"broker {self._broker.name!r} broke conservation at epoch "
                f"{epoch}: live pool {expected} became {totals}"
            )
        floors = {view.node_id: view.floor for view in views}
        for node in live:
            new = decision[node.node_id]
            floor = floors[node.node_id]
            for name in floor.names:
                if new.get(name) < floor.get(name):
                    raise ClusterError(
                        f"broker {self._broker.name!r} pushed node "
                        f"{node.node_id} below its floor at epoch {epoch}: "
                        f"{name}={new.get(name)} < {floor.get(name)}"
                    )
        obs = active_collector()
        for resource, source, target, units in _transfer_ledger(
            {node.node_id: node.budget for node in live}, decision
        ):
            obs.event(
                "budget_transfer", "broker",
                epoch=epoch, resource=resource,
                source=source, target=target, units=units,
            )
            obs.metrics.counter("cluster.budget_transfers").inc()
            self._budget_transfers += 1
        for node in live:
            if decision[node.node_id] != node.budget:
                node.set_budget(decision[node.node_id])

    # -- the run -----------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Epochs stepped so far (the next :meth:`step_epoch` runs this one)."""
        return self._epoch

    @property
    def finished(self) -> bool:
        """Whether the arrival trace has been fully replayed."""
        return self._epoch >= self._trace.n_epochs

    @property
    def _series_prefix(self) -> str:
        # Sweep cells run sequentially under one collector, so series
        # names carry the cell coordinates to keep nodes from
        # interleaving across cells. Broker sweeps share placement and
        # policy across cells, so the broker name joins the coordinate
        # (no-broker runs keep the historical prefix).
        prefix = f"cluster.{self._placement.name}.{self._policy}"
        if self._broker is not None:
            prefix += f"@{self._broker.name}"
        return prefix

    def step_epoch(self) -> List[NodeEpochRecord]:
        """Advance the cluster by exactly one placement epoch.

        The epoch runs as explicit sub-steps, in order: fleet weather
        (down/rejoin + budget parking), trace departures, optional
        fairness-driven migration, re-placement of drained jobs, new
        arrivals, node-epoch spec execution through the engine,
        scoring (per-node series + the placement policy's view),
        quarantine, brokering, and the conservation audit.

        Callers may interleave their own work between epochs — inspect
        :attr:`nodes`, read the accumulated records, or snapshot
        policies — and :meth:`run` is exactly a loop over this method,
        so a manually stepped replay is bit-identical to a batch one.

        Returns the epoch's node records (down nodes produce none).

        Raises:
            ClusterError: when the trace is already fully replayed.
        """
        if self.finished:
            raise ClusterError(
                f"trace exhausted: all {self._trace.n_epochs} epochs already stepped"
            )
        epoch = self._epoch
        obs = active_collector()
        with obs.span("epoch", "cluster", epoch=epoch):
            self._apply_fleet_weather(epoch)
            self._apply_departures(epoch)
            self._migrations += self._maybe_migrate(self._previous)
            self._replace_queued(epoch)
            self._rejected.extend(self._place_arrivals(epoch))
            records = self._epoch_records(epoch)
        self._score_epoch(records)
        self._maybe_quarantine(epoch)
        self._broker_step(epoch, records)
        self._audit_pool(epoch)
        self._previous = {record.node_id: record for record in records}
        self._all_records.extend(records)
        self._epoch += 1
        if self._speculate and self.finished:
            # Nothing left to claim leftover speculation: retire it so
            # a shared engine is not left holding our queued specs.
            self._cancel_unclaimed(obs)
        return records

    def _score_epoch(self, records: Sequence[NodeEpochRecord]) -> None:
        """Fold an epoch's records into observed views and metric series."""
        obs = active_collector()
        series_prefix = self._series_prefix
        for record in records:
            self._observed[record.node_id] = (record.mean_speedup, record.fairness)
            node_prefix = f"{series_prefix}.node{record.node_id}"
            obs.metrics.series(f"{node_prefix}.throughput").append(record.throughput)
            obs.metrics.series(f"{node_prefix}.fairness").append(record.fairness)
            obs.metrics.series(f"{node_prefix}.occupancy").append(record.n_jobs)
            if record.budget is not None:
                obs.metrics.series(f"{node_prefix}.budget_units").append(
                    record.budget.total_units
                )
            if record.slo_attained:
                values = [value for _, value in record.slo_attained]
                obs.metrics.series(f"{node_prefix}.slo_attainment").append(
                    float(np.mean(values))
                )
                misses = sum(
                    1
                    for value in values
                    if value < self._qos_slo.attain_target
                )
                if misses:
                    obs.metrics.counter("cluster.slo_misses").inc(misses)

    def result(self) -> ClusterResult:
        """The cluster-level result over the epochs stepped so far."""
        return ClusterResult(
            n_nodes=len(self._nodes),
            policy=self._policy,
            placement=self._placement.name,
            n_epochs=self._epoch,
            records=tuple(self._all_records),
            rejected_jobs=tuple(self._rejected),
            migrations=self._migrations,
            broker=self._broker.name if self._broker is not None else "none",
            budget_transfers=self._budget_transfers,
            jobs_lost=tuple(self._lost),
            replacements=self._replacements,
            resurrections=self._resurrections,
            node_downs=self._node_downs,
            node_rejoins=self._node_rejoins,
            quarantines=self._quarantines,
            node_epoch_failures=self._node_epoch_failures,
            displaced_job_epochs=self._displaced_epochs,
            fleet_events=tuple(self._fleet_events),
            slo=(
                SLOSummary(
                    attainment=self._slo_tracker.attainment(),
                    miss_rate=self._slo_tracker.miss_rate(),
                    qos_jobs=len(self._slo_tracker.job_attainment()),
                    misses=self._slo_tracker.misses,
                )
                if self._slo_tracker is not None
                else None
            ),
        )

    def run(self) -> ClusterResult:
        """Replay the remaining trace and return the cluster-level result.

        A thin loop over :meth:`step_epoch`; on a fresh simulator this
        reproduces the historical whole-trace behavior bit-identically
        (same spec digests, same telemetry series). After manual
        stepping it finishes the replay from wherever the caller
        stopped.
        """
        while not self.finished:
            self.step_epoch()
        return self.result()


def _transfer_ledger(
    before: Mapping[int, ResourceBudget],
    after: Mapping[int, ResourceBudget],
) -> List[Tuple[str, int, int, int]]:
    """Explain a budget reassignment as ``(resource, source, target,
    units)`` flows.

    The broker returns end states, not flows; for the trace we
    reconstruct a minimal deterministic flow per resource by matching
    losers to gainers in node-id order. Any matching with the right
    row/column sums is equally valid as an audit trail — this one is
    stable, which is what replayable traces need.
    """
    ledger: List[Tuple[str, int, int, int]] = []
    resources = sorted({name for b in before.values() for name in b.names})
    for resource in resources:
        losses = []
        gains = []
        for node_id in sorted(before):
            delta = after[node_id].get(resource) - before[node_id].get(resource)
            if delta < 0:
                losses.append([node_id, -delta])
            elif delta > 0:
                gains.append([node_id, delta])
        li = gi = 0
        while li < len(losses) and gi < len(gains):
            units = min(losses[li][1], gains[gi][1])
            ledger.append((resource, losses[li][0], gains[gi][0], units))
            losses[li][1] -= units
            gains[gi][1] -= units
            if losses[li][1] == 0:
                li += 1
            if gains[gi][1] == 0:
                gi += 1
    return ledger
