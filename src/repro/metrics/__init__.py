"""Throughput and fairness metrics, and the GoalSet evaluator."""

from repro.metrics.fairness import (
    FAIRNESS_METRICS,
    coefficient_of_variation,
    jain_index,
    one_minus_cov,
    one_minus_cov_normalized,
)
from repro.metrics.goals import FAIRNESS_CHOICES, THROUGHPUT_CHOICES, GoalScores, GoalSet
from repro.metrics.throughput import (
    THROUGHPUT_METRICS,
    geometric_mean_speedup,
    harmonic_mean_speedup,
    speedups,
    total_ips,
    weighted_mean_speedup,
)

__all__ = [
    "FAIRNESS_CHOICES",
    "FAIRNESS_METRICS",
    "GoalScores",
    "GoalSet",
    "THROUGHPUT_CHOICES",
    "THROUGHPUT_METRICS",
    "coefficient_of_variation",
    "geometric_mean_speedup",
    "harmonic_mean_speedup",
    "jain_index",
    "one_minus_cov",
    "one_minus_cov_normalized",
    "speedups",
    "total_ips",
    "weighted_mean_speedup",
]
