"""Fairness metrics (Sec. II of the paper).

Fairness measures the *similarity* of the co-located jobs' slowdowns.
The paper's default is Jain's Fairness Index over the per-job
speedups, ``1 / (1 + CoV^2)``, which is 1 when every job suffers the
same relative slowdown and approaches 0 as the slowdowns diverge.
``1 - CoV`` is provided as the alternative metric the paper discusses
(unbounded below, hence the normalization note in Sec. III-B).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.errors import ExperimentError


def coefficient_of_variation(job_speedups: Sequence[float]) -> float:
    """Population CoV (std as a fraction of the mean) of the speedups."""
    s = np.asarray(job_speedups, dtype=float)
    if s.size == 0:
        raise ExperimentError("need at least one job")
    if np.any(s < 0):
        raise ExperimentError(f"speedups must be non-negative, got {s}")
    mean = float(np.mean(s))
    if mean <= 0:
        raise ExperimentError("mean speedup must be positive to compute CoV")
    return float(np.std(s) / mean)


def jain_index(job_speedups: Sequence[float]) -> float:
    """Jain's Fairness Index: ``1 / (1 + CoV^2)``, in ``(0, 1]``."""
    cov = coefficient_of_variation(job_speedups)
    return 1.0 / (1.0 + cov * cov)


def one_minus_cov(job_speedups: Sequence[float]) -> float:
    """The ``1 - CoV`` fairness metric (1 when perfectly fair; can be < 0)."""
    return 1.0 - coefficient_of_variation(job_speedups)


def one_minus_cov_normalized(job_speedups: Sequence[float]) -> float:
    """``1 - CoV`` clipped into [0, 1] (the paper normalizes unbounded
    metrics into a common [0, 1] range before weighting, Sec. III-B)."""
    return float(np.clip(one_minus_cov(job_speedups), 0.0, 1.0))


#: Named fairness metrics for metric-sweep experiments.
FAIRNESS_METRICS: Dict[str, Callable[[Sequence[float]], float]] = {
    "jain": jain_index,
    "one_minus_cov": one_minus_cov_normalized,
}
