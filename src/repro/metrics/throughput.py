"""System-throughput metrics (Sec. II of the paper).

All metrics operate on per-job *speedups*: each job's current IPS
divided by its co-location-free (isolation) IPS for the same program
phase. Under partitioning a speedup lies in ``(0, 1]`` — a job cannot
run faster with a slice of the machine than with all of it — so the
normalized metrics below land in ``(0, 1]`` and are directly usable as
SATORI objective-function components.

The paper's default throughput metric is the *sum of instructions per
second*; normalized by the sum of isolation IPS it equals the
IPS-weighted mean speedup. Geometric and harmonic mean speedups are
provided because Sec. II lists them as common alternatives and the
paper confirms SATORI's improvements hold for them.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.errors import ExperimentError


def speedups(ips: Sequence[float], isolation_ips: Sequence[float]) -> np.ndarray:
    """Per-job speedups relative to isolation performance.

    Raises:
        ExperimentError: on length mismatch or non-positive baselines.
    """
    ips = np.asarray(ips, dtype=float)
    iso = np.asarray(isolation_ips, dtype=float)
    if ips.shape != iso.shape:
        raise ExperimentError(f"ips shape {ips.shape} != baseline shape {iso.shape}")
    if np.any(iso <= 0):
        raise ExperimentError("isolation IPS must be positive")
    if np.any(ips < 0):
        raise ExperimentError("IPS must be non-negative")
    return ips / iso


def geometric_mean_speedup(job_speedups: Sequence[float]) -> float:
    """Geometric mean of the per-job speedups."""
    s = _checked(job_speedups)
    return float(np.exp(np.mean(np.log(np.maximum(s, 1e-12)))))


def harmonic_mean_speedup(job_speedups: Sequence[float]) -> float:
    """Harmonic mean of the per-job speedups."""
    s = _checked(job_speedups)
    return float(len(s) / np.sum(1.0 / np.maximum(s, 1e-12)))


def weighted_mean_speedup(job_speedups: Sequence[float], isolation_ips: Sequence[float]) -> float:
    """Sum-of-IPS throughput, normalized by the isolation sum.

    ``sum_i ips_i / sum_i iso_i`` — the paper's default throughput
    metric in its [0, 1] normalized form.
    """
    s = _checked(job_speedups)
    iso = np.asarray(isolation_ips, dtype=float)
    if iso.shape != s.shape:
        raise ExperimentError(f"speedup shape {s.shape} != baseline shape {iso.shape}")
    return float(np.sum(s * iso) / np.sum(iso))


def total_ips(ips: Sequence[float]) -> float:
    """Raw sum of instructions per second (unnormalized)."""
    values = np.asarray(ips, dtype=float)
    if values.size == 0:
        raise ExperimentError("need at least one job")
    return float(np.sum(values))


#: Named throughput metrics over speedups alone, for metric-sweep
#: experiments ("SATORI provides similar improvements ... for other
#: commonly-used objective metrics").
THROUGHPUT_METRICS: Dict[str, Callable[[Sequence[float]], float]] = {
    "geometric_mean": geometric_mean_speedup,
    "harmonic_mean": harmonic_mean_speedup,
}


def _checked(job_speedups: Sequence[float]) -> np.ndarray:
    s = np.asarray(job_speedups, dtype=float)
    if s.size == 0:
        raise ExperimentError("need at least one job")
    if np.any(s < 0):
        raise ExperimentError(f"speedups must be non-negative, got {s}")
    return s
