"""Goal evaluation shared by SATORI, the baselines, and the Oracle.

A :class:`GoalSet` turns raw per-job IPS measurements plus isolation
baselines into the two normalized goal scores the paper optimizes —
throughput and fairness, each in [0, 1] — under a configurable choice
of underlying metric (Sec. IV: Jain's index and sum-of-IPS are the
defaults "as these have been used by other competing techniques").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.metrics.fairness import jain_index, one_minus_cov_normalized
from repro.metrics.throughput import (
    geometric_mean_speedup,
    harmonic_mean_speedup,
    speedups,
    weighted_mean_speedup,
)

THROUGHPUT_CHOICES = ("sum_ips", "geometric_mean", "harmonic_mean")
FAIRNESS_CHOICES = ("jain", "one_minus_cov")


@dataclass(frozen=True)
class GoalScores:
    """Normalized (throughput, fairness) scores for one evaluation."""

    throughput: float
    fairness: float

    def weighted(self, w_throughput: float, w_fairness: float) -> float:
        """The paper's Eq. 2 combination for one sample."""
        return w_throughput * self.throughput + w_fairness * self.fairness


class GoalSet:
    """Computes normalized throughput and fairness from measurements.

    Args:
        throughput_metric: ``"sum_ips"`` (the paper default; sum of IPS
            normalized by the isolation sum), ``"geometric_mean"``, or
            ``"harmonic_mean"``.
        fairness_metric: ``"jain"`` (the paper default) or
            ``"one_minus_cov"`` (clipped into [0, 1]).
    """

    def __init__(self, throughput_metric: str = "sum_ips", fairness_metric: str = "jain"):
        if throughput_metric not in THROUGHPUT_CHOICES:
            raise ExperimentError(
                f"unknown throughput metric {throughput_metric!r}; choices: {THROUGHPUT_CHOICES}"
            )
        if fairness_metric not in FAIRNESS_CHOICES:
            raise ExperimentError(
                f"unknown fairness metric {fairness_metric!r}; choices: {FAIRNESS_CHOICES}"
            )
        self._throughput_metric = throughput_metric
        self._fairness_metric = fairness_metric

    @property
    def throughput_metric(self) -> str:
        return self._throughput_metric

    @property
    def fairness_metric(self) -> str:
        return self._fairness_metric

    def __repr__(self) -> str:
        return f"GoalSet(throughput={self._throughput_metric!r}, fairness={self._fairness_metric!r})"

    def scores(self, ips: Sequence[float], isolation_ips: Sequence[float]) -> GoalScores:
        """Normalized goal scores for one set of measurements."""
        s = speedups(ips, isolation_ips)
        return GoalScores(
            throughput=self._throughput(s, isolation_ips),
            fairness=self._fairness(s),
        )

    def scores_batch(self, ips: np.ndarray, isolation_ips: Sequence[float]):
        """Vectorized scores for many candidate evaluations.

        Args:
            ips: ``(n_configs, n_jobs)`` array of modeled IPS values.
            isolation_ips: per-job isolation baselines.

        Returns:
            ``(throughput, fairness)`` arrays of shape ``(n_configs,)``.

        Used by the brute-force Oracle, where building per-row
        :class:`GoalScores` objects would dominate the search cost.
        """
        ips = np.asarray(ips, dtype=float)
        iso = np.asarray(isolation_ips, dtype=float)
        if ips.ndim != 2 or ips.shape[1] != iso.shape[0]:
            raise ExperimentError(f"expected (n, {iso.shape[0]}) ips array, got {ips.shape}")
        s = ips / iso

        if self._throughput_metric == "sum_ips":
            throughput = (s * iso).sum(axis=1) / iso.sum()
        elif self._throughput_metric == "geometric_mean":
            throughput = np.exp(np.log(np.maximum(s, 1e-12)).mean(axis=1))
        else:  # harmonic_mean
            throughput = s.shape[1] / (1.0 / np.maximum(s, 1e-12)).sum(axis=1)

        mean = s.mean(axis=1)
        std = s.std(axis=1)
        cov = std / np.maximum(mean, 1e-12)
        if self._fairness_metric == "jain":
            fairness = 1.0 / (1.0 + cov * cov)
        else:
            fairness = np.clip(1.0 - cov, 0.0, 1.0)
        return throughput, fairness

    def _throughput(self, s: np.ndarray, isolation_ips: Sequence[float]) -> float:
        if self._throughput_metric == "sum_ips":
            return weighted_mean_speedup(s, isolation_ips)
        if self._throughput_metric == "geometric_mean":
            return geometric_mean_speedup(s)
        return harmonic_mean_speedup(s)

    def _fairness(self, s: np.ndarray) -> float:
        if self._fairness_metric == "jain":
            return jain_index(s)
        return one_minus_cov_normalized(s)
