"""The co-location simulator: the paper's testbed as a substrate.

:class:`CoLocationSimulator` plays the role of the paper's Skylake
server. It hosts a job mix, accepts partitioning configurations
through the simulated CAT / MBA / affinity / RAPL actuators, advances
wall time in control intervals (0.1 s, the paper's sampling period),
tracks fixed-work progress per job, and reports noisy ``pqos``
measurements — everything a partitioning policy is allowed to see.

Policies never touch the workload models directly; they observe only
:class:`Observation` objects, the same information the paper's
user-space service gets from hardware counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ExperimentError
from repro.hardware.affinity import CoreAffinityController
from repro.hardware.cat import CacheAllocationTechnology
from repro.hardware.mba import MemoryBandwidthAllocator
from repro.hardware.msr import MsrFile
from repro.hardware.pqos import PqosMonitor
from repro.hardware.rapl import PowerCapController
from repro.resources.allocation import Configuration, equal_partition
from repro.resources.types import (
    CORES,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    POWER,
    ResourceCatalog,
    default_catalog,
)
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.system.contention import effective_allocations, evaluate_system, isolation_ips
from repro.workloads.mixes import JobMix

#: The paper's control/sampling interval: SATORI updates its resource
#: allocation every 0.1 seconds.
DEFAULT_CONTROL_INTERVAL_S = 0.1

#: Strength of the reconfiguration disturbance: installing a new
#: partition is not free on real hardware — reassigned cache ways must
#: be refilled, migrated threads lose their L1/L2 state, and MBA
#: throttle changes take effect with lag. A job whose entire allocation
#: changed loses this fraction of one interval's work; proportionally
#: less for smaller moves. (Per-interval, so slow movers barely notice
#: and per-interval random thrashing pays full price.)
RECONFIGURATION_PENALTY = 0.2


@dataclass(frozen=True)
class Observation:
    """What a policy sees after one control interval.

    Attributes:
        time_s: wall time at the *end* of the interval.
        interval_s: interval length.
        ips: measured (noisy) per-job IPS over the interval.
        isolation_ips: the most recently measured isolation baselines.
        config: the configuration that was active during the interval
            (``None`` while running unmanaged).
        completed_runs: per-job count of fixed-work completions so far.
        memory_bandwidth_bytes_s: measured per-job memory traffic
            (Intel MBM counters via pqos); miss-driven policies such
            as dCAT key off this.
        llc_occupancy_bytes: measured per-job LLC occupancy (CMT).
    """

    time_s: float
    interval_s: float
    ips: Tuple[float, ...]
    isolation_ips: Tuple[float, ...]
    config: Optional[Configuration]
    completed_runs: Tuple[int, ...]
    memory_bandwidth_bytes_s: Tuple[float, ...] = ()
    llc_occupancy_bytes: Tuple[float, ...] = ()

    @property
    def n_jobs(self) -> int:
        return len(self.ips)


class CoLocationSimulator:
    """Simulated CMP server running one job mix.

    Args:
        mix: the co-located workloads.
        catalog: server resources; defaults to the paper's 3-resource
            setup (10 cores, 10 LLC way units, 10 bandwidth units).
        control_interval_s: seconds per control interval.
        noise_sigma: pqos measurement noise (lognormal sigma).
        outlier_rate: probability of a monitoring glitch per job per
            interval (fault injection; 0 = clean counters).
        seed: RNG seed for measurement noise.
        phase_offset_s: initial offset added to every workload's phase
            clock (staggered per job), so repeated experiments on the
            same mix can start from different phase alignments.
    """

    def __init__(
        self,
        mix: JobMix,
        catalog: Optional[ResourceCatalog] = None,
        control_interval_s: float = DEFAULT_CONTROL_INTERVAL_S,
        noise_sigma: float = 0.02,
        outlier_rate: float = 0.0,
        seed: SeedLike = None,
        phase_offset_s: float = 0.0,
    ):
        if control_interval_s <= 0:
            raise ExperimentError(f"control interval must be positive, got {control_interval_s}")
        catalog = catalog or default_catalog()
        for required in (CORES, LLC_WAYS, MEMORY_BANDWIDTH):
            if required not in catalog:
                raise ExperimentError(f"catalog must include {required!r}")
        if phase_offset_s:
            mix = JobMix(
                tuple(
                    w.with_offset(phase_offset_s * (j + 1)) for j, w in enumerate(mix.workloads)
                )
            )
        self._mix = mix
        self._catalog = catalog
        self._interval = control_interval_s
        self._rng = make_rng(seed)
        self._monitor = PqosMonitor(
            noise_sigma=noise_sigma, outlier_rate=outlier_rate, rng=spawn_rng(self._rng)
        )

        # Hardware actuators over a shared register file.
        self._msr = MsrFile()
        self._cat = CacheAllocationTechnology(self._msr, n_ways=catalog.get(LLC_WAYS).units)
        self._mba = MemoryBandwidthAllocator(
            self._msr, total_units=catalog.get(MEMORY_BANDWIDTH).units
        )
        self._affinity = CoreAffinityController(n_cores=catalog.get(CORES).units)
        self._rapl = PowerCapController(self._msr)

        self._time_s = 0.0
        self._config: Optional[Configuration] = None
        self._instructions = np.zeros(len(mix), dtype=float)
        self._completed_runs = np.zeros(len(mix), dtype=np.int64)
        self._prev_allocations: Optional[dict] = None

    # -- introspection ------------------------------------------------------

    @property
    def mix(self) -> JobMix:
        return self._mix

    @property
    def catalog(self) -> ResourceCatalog:
        return self._catalog

    @property
    def n_jobs(self) -> int:
        return len(self._mix)

    @property
    def time_s(self) -> float:
        return self._time_s

    @property
    def control_interval_s(self) -> float:
        return self._interval

    @property
    def current_config(self) -> Optional[Configuration]:
        return self._config

    @property
    def msr(self) -> MsrFile:
        """The simulated register file (inspectable by tests)."""
        return self._msr

    def equal_partition(self) -> Configuration:
        """The ``S_init`` configuration for this server and mix."""
        return equal_partition(self._catalog, self.n_jobs)

    # -- actuation ----------------------------------------------------------

    def apply(self, config: Optional[Configuration]) -> None:
        """Install a partitioning configuration on the (simulated) hardware.

        Resources the configuration covers are programmed through the
        corresponding actuator; resources it omits revert to shared.
        ``None`` removes all partitions (unmanaged baseline).

        Raises:
            ConfigurationError: if the configuration is invalid for
                this server/mix.
        """
        if config is not None:
            if config.n_jobs != self.n_jobs:
                raise ConfigurationError(
                    f"configuration covers {config.n_jobs} jobs, mix has {self.n_jobs}"
                )
            config.validate(self._catalog.subset(config.resource_names))
            if config.partitions(LLC_WAYS):
                self._cat.apply_partition(config.units(LLC_WAYS))
            if config.partitions(MEMORY_BANDWIDTH):
                self._mba.apply_partition(config.units(MEMORY_BANDWIDTH))
            if config.partitions(CORES):
                self._affinity.apply_partition(config.units(CORES))
            if config.partitions(POWER):
                self._rapl.apply_partition(config.units(POWER))
        self._config = config

    # -- execution ----------------------------------------------------------

    def step(self, config: Optional[Configuration] = None) -> Observation:
        """Run one control interval and return its measurements.

        Args:
            config: if given, installed via :meth:`apply` before the
                interval runs; otherwise the previous configuration
                stays active ("jobs continue to execute using their
                previous resource allocation configuration until
                SATORI generates a new decision", Sec. V).
        """
        if config is not None:
            self.apply(config)

        state = evaluate_system(self._mix, self._catalog, self._config, self._time_s)
        ips = state.ips * self._reconfiguration_factors()
        self._instructions += ips * self._interval
        self._account_completions()
        self._time_s += self._interval

        samples = self._monitor.observe(
            ips,
            self._interval,
            llc_occupancy_bytes=state.llc_occupancy_bytes,
            memory_bandwidth_bytes_s=state.memory_bandwidth_bytes_s,
        )
        return Observation(
            time_s=self._time_s,
            interval_s=self._interval,
            ips=tuple(s.ips for s in samples),
            isolation_ips=tuple(self.measure_isolation()),
            config=self._config,
            completed_runs=tuple(int(c) for c in self._completed_runs),
            memory_bandwidth_bytes_s=tuple(s.memory_bandwidth_bytes_s for s in samples),
            llc_occupancy_bytes=tuple(s.llc_occupancy_bytes for s in samples),
        )

    def run(self, config: Optional[Configuration], n_steps: int) -> List[Observation]:
        """Run ``n_steps`` intervals under a fixed configuration."""
        if n_steps < 1:
            raise ExperimentError(f"n_steps must be >= 1, got {n_steps}")
        self.apply(config)
        return [self.step() for _ in range(n_steps)]

    # -- workload churn ------------------------------------------------------

    def replace_workload(self, job_index: int, workload) -> None:
        """Swap one co-located job for a different workload (mix change).

        The paper (Sec. III-C) requires SATORI to adapt to workload-mix
        changes with no re-initialization; this models a job ending and
        a new one taking its slot. The new job starts with zero
        progress; the co-location degree is unchanged, so the installed
        partitioning configuration stays valid.

        Raises:
            ExperimentError: if the job index is out of range.
        """
        if not 0 <= job_index < self.n_jobs:
            raise ExperimentError(f"job index {job_index} out of range [0, {self.n_jobs})")
        workloads = list(self._mix.workloads)
        workloads[job_index] = workload
        self._mix = JobMix(tuple(workloads))
        self._instructions[job_index] = 0.0
        # The newcomer's phase clock starts fresh relative to wall time;
        # shift its schedule so phase_at(self._time_s) is its phase 0.
        if self._time_s > 0:
            period = workload.schedule.period
            offset = (-self._time_s) % period
            self._mix = JobMix(
                tuple(
                    w if j != job_index else w.with_offset(offset)
                    for j, w in enumerate(self._mix.workloads)
                )
            )

    # -- baselines ----------------------------------------------------------

    def measure_isolation(self, noisy: bool = False) -> np.ndarray:
        """Per-job isolation IPS at the current phases.

        The paper re-records isolation performances at the start and
        on every baseline reset (Algorithm 1, line 13); controllers
        call this at those points. ``noisy=True`` passes the values
        through the pqos noise model, as a real re-measurement would.
        """
        iso = isolation_ips(self._mix, self._catalog, self._time_s)
        if not noisy:
            return iso
        samples = self._monitor.observe(iso, self._interval)
        return np.array([s.ips for s in samples])

    def true_ips(self, config: Optional[Configuration] = None, at_time: float = None) -> np.ndarray:
        """Noise-free IPS under ``config`` (defaults: active config, now).

        Exposed for the Oracle and for experiment analysis; online
        policies must use :meth:`step` observations instead.
        """
        target = self._config if config is None else config
        t = self._time_s if at_time is None else at_time
        return evaluate_system(self._mix, self._catalog, target, t).ips

    def phase_key(self, at_time: float = None) -> Tuple[int, ...]:
        """The tuple of active phase indices (Oracle cache key)."""
        t = self._time_s if at_time is None else at_time
        return tuple(w.phase_index_at(t) for w in self._mix)

    def _reconfiguration_factors(self) -> np.ndarray:
        """Per-job IPS multipliers for this interval's allocation change.

        A job whose allocation moved loses up to
        :data:`RECONFIGURATION_PENALTY` of the interval to cache
        refill / thread-migration disturbance, in proportion to the
        fraction of its allocation that changed. The first interval is
        free (jobs are starting anyway).
        """
        current = effective_allocations(self._mix, self._catalog, self._config, self._time_s)
        if self._prev_allocations is None:
            self._prev_allocations = current
            return np.ones(self.n_jobs)

        moved = np.zeros(self.n_jobs)
        for resource in self._catalog:
            old = self._prev_allocations[resource.name]
            new = current[resource.name]
            moved += np.abs(new - old) / resource.units
        moved /= len(self._catalog)
        self._prev_allocations = current
        return 1.0 - RECONFIGURATION_PENALTY * np.minimum(2.0 * moved, 1.0)

    def _account_completions(self) -> None:
        """Fixed-work accounting: completing a run restarts the job.

        The fixed-work methodology (Sec. IV) measures equal work per
        job; a completed run immediately restarts, which keeps the
        co-location degree constant during an experiment.
        """
        for j, workload in enumerate(self._mix):
            total = workload.total_instructions
            while self._instructions[j] >= total:
                self._instructions[j] -= total
                self._completed_runs[j] += 1
