"""The co-location simulator: the paper's testbed as a substrate.

:class:`CoLocationSimulator` plays the role of the paper's Skylake
server. It hosts a job mix, accepts partitioning configurations
through the simulated CAT / MBA / affinity / RAPL actuators, advances
wall time in control intervals (0.1 s, the paper's sampling period),
tracks fixed-work progress per job, and reports noisy ``pqos``
measurements — everything a partitioning policy is allowed to see.

Policies never touch the workload models directly; they observe only
:class:`Observation` objects, the same information the paper's
user-space service gets from hardware counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ActuationError, ConfigurationError, ExperimentError, HardwareError
from repro.faults.msr import FaultyMsrFile
from repro.faults.schedule import CRASH, DROP, NAN, OUTLIER, STUCK, FaultSchedule
from repro.hardware.affinity import CoreAffinityController
from repro.hardware.cat import CacheAllocationTechnology
from repro.hardware.mba import MemoryBandwidthAllocator
from repro.hardware.msr import MsrFile
from repro.hardware.pqos import PqosMonitor
from repro.hardware.rapl import PowerCapController
from repro.obs import active_collector
from repro.resources.allocation import Configuration, equal_partition
from repro.resources.types import (
    CORES,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    POWER,
    ResourceCatalog,
    default_catalog,
)
from repro.rng import SeedLike, make_rng, rng_from_state, rng_state, spawn_rng
from repro.system.contention import (
    effective_allocations,
    evaluate_system,
    evaluate_system_batch,
    isolation_ips,
)
from repro.workloads.mixes import JobMix

#: The paper's control/sampling interval: SATORI updates its resource
#: allocation every 0.1 seconds.
DEFAULT_CONTROL_INTERVAL_S = 0.1

#: Strength of the reconfiguration disturbance: installing a new
#: partition is not free on real hardware — reassigned cache ways must
#: be refilled, migrated threads lose their L1/L2 state, and MBA
#: throttle changes take effect with lag. A job whose entire allocation
#: changed loses this fraction of one interval's work; proportionally
#: less for smaller moves. (Per-interval, so slow movers barely notice
#: and per-interval random thrashing pays full price.)
RECONFIGURATION_PENALTY = 0.2

#: Cost of one failed actuation attempt: each retry burns a slice of
#: the control interval on the write + backoff before trying again, so
#: every job loses this fraction of the interval's work per failure
#: (capped at half the interval). This is what makes retry *bounded*
#: rather than free — hammering a dead register has a price.
ACTUATION_RETRY_PENALTY = 0.05


@dataclass(frozen=True)
class Observation:
    """What a policy sees after one control interval.

    Attributes:
        time_s: wall time at the *end* of the interval.
        interval_s: interval length.
        ips: measured (noisy) per-job IPS over the interval.
        isolation_ips: the most recently measured isolation baselines.
        config: the configuration that was active during the interval
            (``None`` while running unmanaged).
        completed_runs: per-job count of fixed-work completions so far.
        memory_bandwidth_bytes_s: measured per-job memory traffic
            (Intel MBM counters via pqos); miss-driven policies such
            as dCAT key off this.
        llc_occupancy_bytes: measured per-job LLC occupancy (CMT).
        actuation_ok: ``False`` when the interval's requested
            configuration could not be installed (every write attempt
            failed); the previous configuration stayed active, so
            ``config`` reports what actually ran, not what was asked.
    """

    time_s: float
    interval_s: float
    ips: Tuple[float, ...]
    isolation_ips: Tuple[float, ...]
    config: Optional[Configuration]
    completed_runs: Tuple[int, ...]
    memory_bandwidth_bytes_s: Tuple[float, ...] = ()
    llc_occupancy_bytes: Tuple[float, ...] = ()
    actuation_ok: bool = True

    @property
    def n_jobs(self) -> int:
        return len(self.ips)

    def to_dict(self) -> dict:
        """JSON-compatible representation (exact float round-trip)."""
        return {
            "time_s": self.time_s,
            "interval_s": self.interval_s,
            "ips": list(self.ips),
            "isolation_ips": list(self.isolation_ips),
            "config": self.config.to_dict() if self.config is not None else None,
            "completed_runs": list(self.completed_runs),
            "memory_bandwidth_bytes_s": list(self.memory_bandwidth_bytes_s),
            "llc_occupancy_bytes": list(self.llc_occupancy_bytes),
            "actuation_ok": self.actuation_ok,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Observation":
        """Rebuild an observation from :meth:`to_dict` output."""
        config = data.get("config")
        return cls(
            time_s=float(data["time_s"]),
            interval_s=float(data["interval_s"]),
            ips=tuple(float(v) for v in data["ips"]),
            isolation_ips=tuple(float(v) for v in data["isolation_ips"]),
            config=None if config is None else Configuration.from_dict(config),
            completed_runs=tuple(int(v) for v in data["completed_runs"]),
            memory_bandwidth_bytes_s=tuple(
                float(v) for v in data.get("memory_bandwidth_bytes_s", ())
            ),
            llc_occupancy_bytes=tuple(
                float(v) for v in data.get("llc_occupancy_bytes", ())
            ),
            actuation_ok=bool(data.get("actuation_ok", True)),
        )


class CoLocationSimulator:
    """Simulated CMP server running one job mix.

    Args:
        mix: the co-located workloads.
        catalog: server resources; defaults to the paper's 3-resource
            setup (10 cores, 10 LLC way units, 10 bandwidth units).
        control_interval_s: seconds per control interval.
        noise_sigma: pqos measurement noise (lognormal sigma).
        outlier_rate: probability of a monitoring glitch per job per
            interval (fault injection; 0 = clean counters).
        seed: RNG seed for measurement noise.
        phase_offset_s: initial offset added to every workload's phase
            clock (staggered per job), so repeated experiments on the
            same mix can start from different phase alignments.
        fault_schedule: deterministic fault realization to inject
            (``repro.faults``); ``None`` runs the server clean. With a
            schedule present the register file is a
            :class:`~repro.faults.msr.FaultyMsrFile` so actuation
            faults surface as failed MSR writes.
        actuation_retries: extra write attempts :meth:`apply` makes
            after a failed actuation before giving up for the interval
            (bounded retry with backoff; each failure costs
            :data:`ACTUATION_RETRY_PENALTY` of the interval).
    """

    def __init__(
        self,
        mix: JobMix,
        catalog: Optional[ResourceCatalog] = None,
        control_interval_s: float = DEFAULT_CONTROL_INTERVAL_S,
        noise_sigma: float = 0.02,
        outlier_rate: float = 0.0,
        seed: SeedLike = None,
        phase_offset_s: float = 0.0,
        fault_schedule: Optional[FaultSchedule] = None,
        actuation_retries: int = 2,
    ):
        if control_interval_s <= 0:
            raise ExperimentError(f"control interval must be positive, got {control_interval_s}")
        if actuation_retries < 0:
            raise ExperimentError(f"actuation_retries must be >= 0, got {actuation_retries}")
        catalog = catalog or default_catalog()
        for required in (CORES, LLC_WAYS, MEMORY_BANDWIDTH):
            if required not in catalog:
                raise ExperimentError(f"catalog must include {required!r}")
        if phase_offset_s:
            mix = JobMix(
                tuple(
                    w.with_offset(phase_offset_s * (j + 1)) for j, w in enumerate(mix.workloads)
                )
            )
        self._mix = mix
        self._catalog = catalog
        self._interval = control_interval_s
        self._rng = make_rng(seed)
        self._monitor = PqosMonitor(
            noise_sigma=noise_sigma, outlier_rate=outlier_rate, rng=spawn_rng(self._rng)
        )

        # Hardware actuators over a shared register file. With fault
        # injection enabled the register file can refuse writes; the
        # actuators themselves are unchanged.
        self._fault_schedule = fault_schedule
        self._actuation_retries = actuation_retries
        self._msr: MsrFile = FaultyMsrFile() if fault_schedule is not None else MsrFile()
        self._cat = CacheAllocationTechnology(self._msr, n_ways=catalog.get(LLC_WAYS).units)
        self._mba = MemoryBandwidthAllocator(
            self._msr, total_units=catalog.get(MEMORY_BANDWIDTH).units
        )
        self._affinity = CoreAffinityController(n_cores=catalog.get(CORES).units)
        self._rapl = PowerCapController(self._msr)

        self._time_s = 0.0
        self._config: Optional[Configuration] = None
        self._instructions = np.zeros(len(mix), dtype=float)
        self._completed_runs = np.zeros(len(mix), dtype=np.int64)
        self._prev_allocations: Optional[dict] = None

        # Fault bookkeeping: failed write attempts pending their IPS
        # penalty, once-per-event triggers (crash progress loss fires a
        # single time however many intervals the event spans), the last
        # *reported* per-job IPS (what a stuck counter repeats), and
        # observable injection counters.
        self._pending_failed_attempts = 0
        self._triggered_events: set = set()
        self._last_reported_ips = np.full(len(mix), np.nan)
        self._last_true_ips: Tuple[float, ...] = ()
        self._fault_counters: Dict[str, int] = {
            "actuation_failures": 0,
            "actuation_exhausted": 0,
            "samples_dropped": 0,
            "samples_nan": 0,
            "samples_stuck": 0,
            "samples_outlier": 0,
            "crashes": 0,
            "hangs": 0,
        }

    # -- introspection ------------------------------------------------------

    @property
    def mix(self) -> JobMix:
        return self._mix

    @property
    def catalog(self) -> ResourceCatalog:
        return self._catalog

    @property
    def n_jobs(self) -> int:
        return len(self._mix)

    @property
    def time_s(self) -> float:
        return self._time_s

    @property
    def control_interval_s(self) -> float:
        return self._interval

    @property
    def current_config(self) -> Optional[Configuration]:
        return self._config

    @property
    def msr(self) -> MsrFile:
        """The simulated register file (inspectable by tests)."""
        return self._msr

    @property
    def fault_schedule(self) -> Optional[FaultSchedule]:
        """The injected fault realization, or ``None`` when clean."""
        return self._fault_schedule

    @property
    def fault_counters(self) -> Dict[str, int]:
        """Counts of faults injected so far, by kind (a copy)."""
        return dict(self._fault_counters)

    @property
    def active_fault_count(self) -> int:
        """Number of fault events active at the current wall time."""
        if self._fault_schedule is None:
            return 0
        return self._fault_schedule.active_count(self._time_s)

    @property
    def last_true_ips(self) -> Tuple[float, ...]:
        """The last interval's noisy-but-uncorrupted IPS measurements.

        What a fault-free monitor would have reported: measurement
        noise included, injected monitoring corruption excluded.
        Evaluators score these; controllers only ever see the
        :class:`Observation`'s possibly-corrupted ``ips``. Empty before
        the first :meth:`step`.
        """
        return self._last_true_ips

    def equal_partition(self) -> Configuration:
        """The ``S_init`` configuration for this server and mix."""
        return equal_partition(self._catalog, self.n_jobs)

    # -- actuation ----------------------------------------------------------

    def apply(self, config: Optional[Configuration]) -> None:
        """Install a partitioning configuration on the (simulated) hardware.

        Resources the configuration covers are programmed through the
        corresponding actuator; resources it omits revert to shared.
        ``None`` removes all partitions (unmanaged baseline).

        Under fault injection a write can fail; the install is retried
        up to ``actuation_retries`` extra times (each failure costs a
        slice of the interval, see :data:`ACTUATION_RETRY_PENALTY`).
        If every attempt fails the last-known-good configuration stays
        in force — ``self._config`` is only updated on success — and
        :class:`~repro.errors.ActuationError` is raised.

        Raises:
            ConfigurationError: if the configuration is invalid for
                this server/mix.
            ActuationError: if every write attempt failed; the
                previously installed configuration remains active.
        """
        with active_collector().span("actuation", "server"):
            if config is not None:
                if config.n_jobs != self.n_jobs:
                    raise ConfigurationError(
                        f"configuration covers {config.n_jobs} jobs, mix has {self.n_jobs}"
                    )
                config.validate(self._catalog.subset(config.resource_names))
                self._install(config)
            self._config = config

    def _install(self, config: Configuration) -> None:
        """Program a validated configuration, retrying injected failures."""
        fail_attempts = 0
        if self._fault_schedule is not None:
            fail_attempts = self._fault_schedule.actuation_fail_attempts(self._time_s)
        faulty = self._msr if isinstance(self._msr, FaultyMsrFile) else None
        last_error: Optional[HardwareError] = None
        total_attempts = 1 + self._actuation_retries
        for attempt in range(total_attempts):
            armed = attempt < fail_attempts
            if faulty is not None:
                faulty.arm(armed)
            try:
                self._program(config)
            except HardwareError as error:
                if faulty is not None:
                    faulty.arm(False)
                if not armed:
                    # A genuine actuator rejection, not an injected
                    # fault: retrying the same write cannot help.
                    raise
                self._pending_failed_attempts += 1
                self._fault_counters["actuation_failures"] += 1
                last_error = error
                continue
            if faulty is not None:
                faulty.arm(False)
            return
        self._fault_counters["actuation_exhausted"] += 1
        raise ActuationError(
            f"configuration install failed after {total_attempts} attempts "
            f"at t={self._time_s:.3f}s; keeping last-known-good configuration "
            f"({last_error})"
        )

    def _program(self, config: Configuration) -> None:
        """One programming pass over the actuators (no retry logic)."""
        if config.partitions(LLC_WAYS):
            self._cat.apply_partition(config.units(LLC_WAYS))
        if config.partitions(MEMORY_BANDWIDTH):
            self._mba.apply_partition(config.units(MEMORY_BANDWIDTH))
        if config.partitions(CORES):
            self._affinity.apply_partition(config.units(CORES))
        if config.partitions(POWER):
            self._rapl.apply_partition(config.units(POWER))

    # -- execution ----------------------------------------------------------

    def step(self, config: Optional[Configuration] = None) -> Observation:
        """Run one control interval and return its measurements.

        Args:
            config: if given, installed via :meth:`apply` before the
                interval runs; otherwise the previous configuration
                stays active ("jobs continue to execute using their
                previous resource allocation configuration until
                SATORI generates a new decision", Sec. V).
        """
        actuation_ok = True
        if config is not None:
            try:
                self.apply(config)
            except ActuationError:
                # Last-known-good configuration stays installed; the
                # interval runs under it and the policy learns of the
                # failure through ``actuation_ok`` rather than an
                # exception tearing down the control loop.
                actuation_ok = False

        interval_start = self._time_s
        state = evaluate_system(self._mix, self._catalog, self._config, interval_start)
        ips = state.ips * self._reconfiguration_factors()
        ips = ips * self._workload_fault_factors(interval_start)
        if self._pending_failed_attempts:
            penalty = min(0.5, ACTUATION_RETRY_PENALTY * self._pending_failed_attempts)
            ips = ips * (1.0 - penalty)
            self._pending_failed_attempts = 0
        self._instructions += ips * self._interval
        self._account_completions()
        self._time_s += self._interval

        samples = self._monitor.observe(
            ips,
            self._interval,
            llc_occupancy_bytes=state.llc_occupancy_bytes,
            memory_bandwidth_bytes_s=state.memory_bandwidth_bytes_s,
        )
        true_sampled = [s.ips for s in samples]
        reported_ips = self._apply_monitor_faults(list(true_sampled), interval_start)
        # Evaluators score the pre-corruption measurements (controllers
        # only ever see the reported, possibly corrupted, Observation).
        self._last_true_ips = tuple(float(v) for v in true_sampled)
        return Observation(
            time_s=self._time_s,
            interval_s=self._interval,
            ips=tuple(reported_ips),
            isolation_ips=tuple(self.measure_isolation()),
            config=self._config,
            completed_runs=tuple(int(c) for c in self._completed_runs),
            memory_bandwidth_bytes_s=tuple(s.memory_bandwidth_bytes_s for s in samples),
            llc_occupancy_bytes=tuple(s.llc_occupancy_bytes for s in samples),
            actuation_ok=actuation_ok,
        )

    def run(self, config: Optional[Configuration], n_steps: int) -> List[Observation]:
        """Run ``n_steps`` intervals under a fixed configuration."""
        if n_steps < 1:
            raise ExperimentError(f"n_steps must be >= 1, got {n_steps}")
        self.apply(config)
        return [self.step() for _ in range(n_steps)]

    # -- workload churn ------------------------------------------------------

    def replace_workload(self, job_index: int, workload) -> None:
        """Swap one co-located job for a different workload (mix change).

        The paper (Sec. III-C) requires SATORI to adapt to workload-mix
        changes with no re-initialization; this models a job ending and
        a new one taking its slot. The new job starts with zero
        progress; the co-location degree is unchanged, so the installed
        partitioning configuration stays valid.

        Raises:
            ExperimentError: if the job index is out of range.
        """
        if not 0 <= job_index < self.n_jobs:
            raise ExperimentError(f"job index {job_index} out of range [0, {self.n_jobs})")
        workloads = list(self._mix.workloads)
        workloads[job_index] = workload
        self._mix = JobMix(tuple(workloads))
        self._instructions[job_index] = 0.0
        # The newcomer's phase clock starts fresh relative to wall time;
        # shift its schedule so phase_at(self._time_s) is its phase 0.
        if self._time_s > 0:
            period = workload.schedule.period
            offset = (-self._time_s) % period
            self._mix = JobMix(
                tuple(
                    w if j != job_index else w.with_offset(offset)
                    for j, w in enumerate(self._mix.workloads)
                )
            )

    # -- baselines ----------------------------------------------------------

    def measure_isolation(self, noisy: bool = False) -> np.ndarray:
        """Per-job isolation IPS at the current phases.

        The paper re-records isolation performances at the start and
        on every baseline reset (Algorithm 1, line 13); controllers
        call this at those points. ``noisy=True`` passes the values
        through the pqos noise model, as a real re-measurement would.
        """
        iso = isolation_ips(self._mix, self._catalog, self._time_s)
        if not noisy:
            return iso
        samples = self._monitor.observe(iso, self._interval)
        return np.array([s.ips for s in samples])

    def true_ips(self, config: Optional[Configuration] = None, at_time: float = None) -> np.ndarray:
        """Noise-free IPS under ``config`` (defaults: active config, now).

        Exposed for the Oracle and for experiment analysis; online
        policies must use :meth:`step` observations instead.
        """
        target = self._config if config is None else config
        t = self._time_s if at_time is None else at_time
        return evaluate_system(self._mix, self._catalog, target, t).ips

    def true_ips_batch(
        self, configs: Sequence[Optional[Configuration]], at_time: float = None
    ) -> np.ndarray:
        """Noise-free IPS for many configurations in one vectorized pass.

        Returns a ``(len(configs), n_jobs)`` array, bit-identical to
        stacking :meth:`true_ips` per configuration — including the
        ``None`` convention: a ``None`` entry means the currently
        installed configuration, exactly as in :meth:`true_ips` (which
        may itself be ``None``, the unmanaged server, before any
        :meth:`apply`).
        """
        t = self._time_s if at_time is None else at_time
        resolved = [self._config if c is None else c for c in configs]
        return evaluate_system_batch(self._mix, self._catalog, resolved, t).ips

    def phase_key(self, at_time: float = None) -> Tuple[int, ...]:
        """The tuple of active phase indices (Oracle cache key)."""
        t = self._time_s if at_time is None else at_time
        return tuple(w.phase_index_at(t) for w in self._mix)

    # -- snapshot / restore --------------------------------------------------

    def snapshot_state(self) -> dict:
        """The server's complete dynamic state as JSON-compatible data.

        Everything :meth:`step` reads or advances: wall time, both RNG
        stream positions (substrate + monitor), the installed
        configuration, per-job progress, the previous-interval
        allocations (reconfiguration-penalty memory), and the fault
        bookkeeping. Together with the construction arguments (mix,
        catalog, interval, noise) this is sufficient for
        :meth:`restore_state` to resume the server bit-identically —
        the property the ``repro.serve`` session snapshot/resume
        round-trip is built on.

        NaN is not valid JSON, so the last-reported-IPS slots (which
        start as NaN before a job's first sample) encode NaN as
        ``None``.
        """
        return {
            "time_s": float(self._time_s),
            "rng": rng_state(self._rng),
            "monitor_rng": rng_state(self._monitor.rng),
            "config": self._config.to_dict() if self._config is not None else None,
            "instructions": [float(v) for v in self._instructions],
            "completed_runs": [int(v) for v in self._completed_runs],
            "prev_allocations": (
                None
                if self._prev_allocations is None
                else {
                    name: [float(v) for v in values]
                    for name, values in self._prev_allocations.items()
                }
            ),
            "pending_failed_attempts": int(self._pending_failed_attempts),
            "triggered_events": sorted(self._triggered_events),
            "last_reported_ips": [
                float(v) if np.isfinite(v) else None for v in self._last_reported_ips
            ],
            "last_true_ips": [float(v) for v in self._last_true_ips],
            "fault_counters": dict(self._fault_counters),
        }

    def restore_state(self, state: dict) -> None:
        """Resume the server at the exact instant of a prior snapshot.

        The simulator must have been constructed with the same mix,
        catalog, and knobs as the one that produced the snapshot (the
        snapshot holds dynamic state only). The installed configuration
        is re-programmed through the actuators so the register file
        matches; RNG streams resume at their recorded positions.

        Raises:
            ExperimentError: if the snapshot's job count does not match
                this server's mix.
        """
        if len(state["instructions"]) != self.n_jobs:
            raise ExperimentError(
                f"snapshot covers {len(state['instructions'])} jobs, "
                f"mix has {self.n_jobs}"
            )
        self._time_s = float(state["time_s"])
        self._rng = rng_from_state(state["rng"])
        self._monitor.rng = rng_from_state(state["monitor_rng"])
        config = state.get("config")
        if config is not None:
            restored = Configuration.from_dict(config)
            restored.validate(self._catalog.subset(restored.resource_names))
            self._program(restored)
            self._config = restored
        else:
            self._config = None
        self._instructions = np.array(state["instructions"], dtype=float)
        self._completed_runs = np.array(state["completed_runs"], dtype=np.int64)
        prev = state.get("prev_allocations")
        self._prev_allocations = (
            None
            if prev is None
            else {name: np.array(values, dtype=float) for name, values in prev.items()}
        )
        self._pending_failed_attempts = int(state.get("pending_failed_attempts", 0))
        self._triggered_events = set(state.get("triggered_events", ()))
        self._last_reported_ips = np.array(
            [np.nan if v is None else float(v) for v in state["last_reported_ips"]],
            dtype=float,
        )
        self._last_true_ips = tuple(float(v) for v in state.get("last_true_ips", ()))
        self._fault_counters = {
            str(k): int(v) for k, v in state.get("fault_counters", {}).items()
        }

    def _workload_fault_factors(self, t: float) -> np.ndarray:
        """Per-job IPS multipliers from crash / hang events at time ``t``.

        A crashed job makes no progress until its restart completes and
        loses the current run's partial work (once per event, however
        many intervals the event spans). A hung job makes no progress
        but keeps its state.
        """
        factors = np.ones(self.n_jobs)
        if self._fault_schedule is None:
            return factors
        for job in range(self.n_jobs):
            for index, event in self._fault_schedule.workload_events(job, t):
                if index not in self._triggered_events:
                    self._triggered_events.add(index)
                    if event.kind == CRASH:
                        self._instructions[job] = 0.0
                        self._fault_counters["crashes"] += 1
                    else:
                        self._fault_counters["hangs"] += 1
                factors[job] = 0.0
        return factors

    def _apply_monitor_faults(self, reported: List[float], t: float) -> List[float]:
        """Corrupt the per-job reported IPS per the fault schedule.

        Drops and NaN glitches report NaN (a dropped pqos sample has no
        value); a stuck counter repeats the last *reported* value; an
        outlier scales the true measurement by the event magnitude.
        Only the report is corrupted — true progress accounting already
        happened.
        """
        if self._fault_schedule is not None:
            for job in range(self.n_jobs):
                for event in self._fault_schedule.monitor_events(job, t):
                    if event.kind == DROP:
                        reported[job] = float("nan")
                        self._fault_counters["samples_dropped"] += 1
                    elif event.kind == NAN:
                        reported[job] = float("nan")
                        self._fault_counters["samples_nan"] += 1
                    elif event.kind == STUCK:
                        if np.isfinite(self._last_reported_ips[job]):
                            reported[job] = float(self._last_reported_ips[job])
                        self._fault_counters["samples_stuck"] += 1
                    elif event.kind == OUTLIER:
                        reported[job] = reported[job] * event.magnitude
                        self._fault_counters["samples_outlier"] += 1
        for job, value in enumerate(reported):
            if np.isfinite(value):
                self._last_reported_ips[job] = value
        return reported

    def _reconfiguration_factors(self) -> np.ndarray:
        """Per-job IPS multipliers for this interval's allocation change.

        A job whose allocation moved loses up to
        :data:`RECONFIGURATION_PENALTY` of the interval to cache
        refill / thread-migration disturbance, in proportion to the
        fraction of its allocation that changed. The first interval is
        free (jobs are starting anyway).
        """
        current = effective_allocations(self._mix, self._catalog, self._config, self._time_s)
        if self._prev_allocations is None:
            self._prev_allocations = current
            return np.ones(self.n_jobs)

        moved = np.zeros(self.n_jobs)
        for resource in self._catalog:
            old = self._prev_allocations[resource.name]
            new = current[resource.name]
            moved += np.abs(new - old) / resource.units
        moved /= len(self._catalog)
        self._prev_allocations = current
        return 1.0 - RECONFIGURATION_PENALTY * np.minimum(2.0 * moved, 1.0)

    def _account_completions(self) -> None:
        """Fixed-work accounting: completing a run restarts the job.

        The fixed-work methodology (Sec. IV) measures equal work per
        job; a completed run immediately restarts, which keeps the
        co-location degree constant during an experiment.
        """
        for j, workload in enumerate(self._mix):
            total = workload.total_instructions
            while self._instructions[j] >= total:
                self._instructions[j] -= total
                self._completed_runs[j] += 1
