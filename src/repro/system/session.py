"""The policy ↔ server control session.

Every experiment in the repo used to hand-roll the same stepping loop:
decide on a configuration, step the server one control interval,
rebuild the policy's (held-baseline) view of the world, record scored
telemetry, and periodically re-measure isolation baselines. This
module extracts that loop once, as :class:`ControlSession`, driving
any :class:`~repro.policies.base.PartitioningPolicy` against anything
satisfying the :class:`ServerLike` protocol.

The session reproduces the paper's measurement methodology exactly
(Sec. IV / Algorithm 1):

* policies act on a *held* isolation baseline that is re-measured only
  every equalization period (``baseline_reset_s``) — they see the
  possibly-stale belief, like the real system;
* telemetry is scored against the server's *true* per-interval
  measurements (``last_true_ips`` under fault injection), so reported
  throughput/fairness reflect reality rather than the controller's
  corrupted monitor feed;
* under an injected fault schedule, the per-interval fault trail
  (``actuation_ok``, ``faults_active``) is folded into telemetry
  ``extra`` so recovery analyses can locate fault windows.

:class:`~repro.system.simulation.CoLocationSimulator` is the
reference ``ServerLike`` implementation; the cluster layer's
:class:`~repro.cluster.node.ServerNode` wraps one session per node.

RNG-discipline note: the session draws server randomness in the exact
order the pre-extraction loops did (initial isolation measurement,
then ``step``, then any baseline re-measurement *after* the telemetry
record), so engine cache digests and "bit-identical across
serial/parallel/cache" guarantees carry over unchanged.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.metrics.goals import GoalSet
from repro.obs import active_collector
from repro.resources.allocation import Configuration
from repro.resources.types import ResourceCatalog
from repro.system.simulation import Observation
from repro.system.telemetry import TelemetryLog
from repro.workloads.mixes import JobMix

if TYPE_CHECKING:  # policies import Observation from repro.system —
    # a runtime import here would be circular.
    from repro.policies.base import PartitioningPolicy


@runtime_checkable
class ServerLike(Protocol):
    """What a control session needs from a server.

    The protocol is the *control-plane* surface: one interval of
    execution, isolation measurement, mix management, and the fault
    trail. :class:`~repro.system.simulation.CoLocationSimulator`
    satisfies it natively; a hardware harness driving real MSRs and
    ``perf`` counters would too.
    """

    # -- identity ----------------------------------------------------------

    @property
    def mix(self) -> JobMix: ...

    @property
    def catalog(self) -> ResourceCatalog: ...

    @property
    def n_jobs(self) -> int: ...

    # -- clock -------------------------------------------------------------

    @property
    def time_s(self) -> float: ...

    @property
    def control_interval_s(self) -> float: ...

    # -- control plane -----------------------------------------------------

    @property
    def current_config(self) -> Optional[Configuration]: ...

    def step(self, config: Optional[Configuration] = None) -> Observation: ...

    def measure_isolation(self, noisy: bool = False) -> np.ndarray: ...

    def replace_workload(self, job_index: int, workload) -> None: ...

    # -- fault trail --------------------------------------------------------

    @property
    def fault_schedule(self): ...

    @property
    def active_fault_count(self) -> int: ...

    @property
    def last_true_ips(self) -> Tuple[float, ...]: ...


class ControlSession:
    """One policy driving one server, interval by interval.

    Args:
        policy: a fresh (or reset) partitioning policy.
        server: the server under control.
        goals: metric choices for telemetry scoring (ignored when an
            existing ``telemetry`` log is supplied).
        baseline_reset_s: equalization period after which the held
            isolation baseline is re-measured (Algorithm 1, line 13).
            ``math.inf`` disables periodic resets — drivers that
            manage baselines themselves (e.g. the churn experiment
            re-measuring on a workload swap) use this together with
            :meth:`refresh_baseline`.
        record_weights: extract the SATORI throughput/fairness weights
            from policy diagnostics into each telemetry record's
            ``weights`` slot (the comparison drivers rely on this; the
            churn driver historically recorded them only in ``extra``).
        telemetry: optionally continue an existing log instead of
            starting a fresh one.
    """

    def __init__(
        self,
        policy: PartitioningPolicy,
        server: ServerLike,
        goals: Optional[GoalSet] = None,
        baseline_reset_s: float = math.inf,
        record_weights: bool = True,
        telemetry: Optional[TelemetryLog] = None,
    ):
        self._policy = policy
        self._server = server
        self._telemetry = telemetry if telemetry is not None else TelemetryLog(goals or GoalSet())
        self._baseline_reset_s = baseline_reset_s
        self._record_weights = record_weights
        self._baseline: Optional[np.ndarray] = None
        self._next_reset = baseline_reset_s
        self._policy_view: Optional[Observation] = None

    # -- introspection ------------------------------------------------------

    @property
    def policy(self) -> PartitioningPolicy:
        return self._policy

    @property
    def server(self) -> ServerLike:
        return self._server

    @property
    def telemetry(self) -> TelemetryLog:
        return self._telemetry

    @property
    def baseline(self) -> Optional[np.ndarray]:
        """The held isolation baseline the policy currently acts on."""
        return self._baseline

    def policy_state(self):
        """The policy's current snapshot (``None`` for stateless policies).

        Taken at session end, this is what rides into
        :attr:`~repro.experiments.runner.RunResult.final_state` so the
        next run — the next placement epoch on the same node, say —
        can warm-start instead of re-learning from scratch.
        """
        return self._policy.snapshot()

    # -- snapshot / restore ---------------------------------------------------

    def export_state(self) -> dict:
        """The session's loop state as JSON-compatible data.

        Covers everything :meth:`step` reads besides the policy and the
        server themselves: the held isolation baseline, the pending
        policy view, the next baseline-reset deadline, and the scored
        telemetry so far. Pair it with the policy's
        :meth:`policy_state` snapshot and the server's own state
        capture (:meth:`~repro.system.simulation.CoLocationSimulator.snapshot_state`)
        for a complete resumable session image — infinities (a session
        that never resets its baseline) encode as ``None``.
        """
        return {
            "baseline": (
                None if self._baseline is None else [float(b) for b in self._baseline]
            ),
            "next_reset": None if math.isinf(self._next_reset) else float(self._next_reset),
            "policy_view": (
                None if self._policy_view is None else self._policy_view.to_dict()
            ),
            "telemetry": self._telemetry.to_dict(),
        }

    def import_state(self, state: dict) -> None:
        """Resume the loop state captured by :meth:`export_state`.

        The session must have been constructed around a
        policy/server pair already restored to the matching instant;
        this call only rehydrates the loop bookkeeping (so the first
        post-restore :meth:`step` skips the initial baseline
        measurement and continues mid-stream, bit-identically).
        """
        baseline = state.get("baseline")
        self._baseline = None if baseline is None else np.array(baseline, dtype=float)
        next_reset = state.get("next_reset")
        self._next_reset = math.inf if next_reset is None else float(next_reset)
        view = state.get("policy_view")
        self._policy_view = None if view is None else Observation.from_dict(view)
        self._telemetry = TelemetryLog.from_dict(state["telemetry"])

    # -- baseline management -------------------------------------------------

    def refresh_baseline(self) -> np.ndarray:
        """Re-measure the isolation baseline and update the held view.

        Also patches the pending policy observation (if any) so the
        next ``decide`` sees the fresh baseline — this is what the
        churn driver needs right after a workload swap.
        """
        self._baseline = self._server.measure_isolation(noisy=True)
        if self._policy_view is not None:
            self._policy_view = dataclasses.replace(
                self._policy_view,
                isolation_ips=tuple(float(b) for b in self._baseline),
            )
        return self._baseline

    # -- the loop ------------------------------------------------------------

    def step(self) -> Observation:
        """Run one control interval: observe → decide → actuate → tick.

        Returns the server's raw observation for the interval (the
        policy itself sees the held-baseline view, not this).
        """
        obs = active_collector()
        if self._baseline is None:
            # First interval: measure the initial baseline lazily so
            # construction stays side-effect-free but the server RNG
            # draw order matches the historical pre-loop measurement.
            with obs.span("baseline_refresh", "session"):
                self.refresh_baseline()

        with obs.span("interval", "session"):
            config = self._policy.decide(self._policy_view)
            raw = self._server.step(config)

            # Policies act on the held baseline (Algorithm 1 resets it only
            # periodically); telemetry scores against the true current one.
            self._policy_view = dataclasses.replace(
                raw, isolation_ips=tuple(float(b) for b in self._baseline)
            )
            diag = self._policy.diagnostics()
            scored_ips = raw.ips
            if self._server.fault_schedule is not None:
                # Fault/recovery trail: which intervals ran under injected
                # faults and whether the interval's actuation landed. The
                # policy sees the corrupted measurements; the evaluator
                # scores what a fault-free monitor would have reported.
                scored_ips = self._server.last_true_ips
                diag = dict(diag)
                diag["actuation_ok"] = float(raw.actuation_ok)
                diag["faults_active"] = float(self._server.active_fault_count)
                if not raw.actuation_ok:
                    obs.event("actuation_failure", "session", time_s=raw.time_s)
                    obs.metrics.counter("session.actuation_failures").inc()
                if self._server.active_fault_count:
                    obs.metrics.counter("session.faulted_intervals").inc()
            weights = None
            if self._record_weights and "weight_throughput" in diag and "weight_fairness" in diag:
                weights = (diag["weight_throughput"], diag["weight_fairness"])
            self._telemetry.record(
                time_s=raw.time_s,
                config=raw.config,
                ips=scored_ips,
                isolation_ips=raw.isolation_ips,
                weights=weights,
                extra=diag,
            )

            if raw.time_s + 1e-9 >= self._next_reset:
                with obs.span("baseline_refresh", "session"):
                    self._baseline = self._server.measure_isolation(noisy=True)
                self._next_reset += self._baseline_reset_s
        return raw

    def run(self, n_steps: int) -> TelemetryLog:
        """Step ``n_steps`` control intervals and return the telemetry."""
        for _ in range(n_steps):
            self.step()
        return self._telemetry
