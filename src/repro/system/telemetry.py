"""Telemetry recording for experiment runs.

A :class:`TelemetryLog` accumulates one record per control interval —
time, active configuration, measured IPS, and the derived goal scores
— and provides the aggregations the paper reports: time-averaged
throughput/fairness, per-job mean speedups, worst-job performance
(Fig. 9), and extraction of time series for the trace figures
(Figs. 14, 15(b), 17, 18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.metrics.goals import GoalScores, GoalSet
from repro.metrics.throughput import speedups
from repro.resources.allocation import Configuration


@dataclass(frozen=True)
class TelemetryRecord:
    """One control interval's worth of measurements and scores."""

    time_s: float
    config: Optional[Configuration]
    ips: Tuple[float, ...]
    isolation_ips: Tuple[float, ...]
    throughput: float
    fairness: float
    weights: Optional[Tuple[float, float]] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def speedups(self) -> np.ndarray:
        return speedups(self.ips, self.isolation_ips)

    @property
    def scores(self) -> GoalScores:
        return GoalScores(self.throughput, self.fairness)

    def to_dict(self) -> Dict:
        """JSON-compatible representation (exact float round-trip)."""
        return {
            "time_s": self.time_s,
            "config": self.config.to_dict() if self.config is not None else None,
            "ips": list(self.ips),
            "isolation_ips": list(self.isolation_ips),
            "throughput": self.throughput,
            "fairness": self.fairness,
            "weights": list(self.weights) if self.weights is not None else None,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TelemetryRecord":
        """Rebuild a record from :meth:`to_dict` output.

        Stored goal scores are restored verbatim rather than recomputed
        so a round-trip is bit-identical even if metric code changes.
        """
        weights = data.get("weights")
        config = data.get("config")
        return cls(
            time_s=float(data["time_s"]),
            config=Configuration.from_dict(config) if config is not None else None,
            ips=tuple(float(v) for v in data["ips"]),
            isolation_ips=tuple(float(v) for v in data["isolation_ips"]),
            throughput=float(data["throughput"]),
            fairness=float(data["fairness"]),
            weights=tuple(float(w) for w in weights) if weights is not None else None,
            extra={k: float(v) for k, v in data.get("extra", {}).items()},
        )


class TelemetryLog:
    """Accumulates per-interval records for one policy run."""

    def __init__(self, goals: Optional[GoalSet] = None):
        self._goals = goals or GoalSet()
        self._records: List[TelemetryRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    @property
    def goals(self) -> GoalSet:
        return self._goals

    @property
    def records(self) -> List[TelemetryRecord]:
        return list(self._records)

    def record(
        self,
        time_s: float,
        config: Optional[Configuration],
        ips: Sequence[float],
        isolation_ips: Sequence[float],
        weights: Optional[Tuple[float, float]] = None,
        extra: Optional[Dict[str, float]] = None,
    ) -> TelemetryRecord:
        """Score one interval's measurements and append the record.

        Non-finite IPS entries (dropped/corrupted monitoring samples
        under fault injection) are imputed with the job's last recorded
        value — a NaN would otherwise propagate through every mean the
        log reports — and the number of imputed samples is noted in the
        record's ``extra`` under ``"imputed_samples"``.
        """
        ips = list(ips)
        imputed = 0
        for j, value in enumerate(ips):
            if not np.isfinite(value):
                ips[j] = self._last_finite_ips(j)
                imputed += 1
        if imputed:
            extra = dict(extra or {})
            extra["imputed_samples"] = float(imputed)
        try:
            scores = self._goals.scores(ips, isolation_ips)
        except ExperimentError:
            # A fully-starved interval (every job crashed/hung to zero
            # IPS) has no defined CoV; score it worst-case instead of
            # aborting the run.
            scores = GoalScores(0.0, 0.0)
            extra = dict(extra or {})
            extra["degenerate_interval"] = 1.0
        # Coerce to plain Python floats: diagnostics frequently hand us
        # numpy scalars, which json.dumps rejects (np.bool_) or which
        # break strict round-trip equality checks.
        rec = TelemetryRecord(
            time_s=float(time_s),
            config=config,
            ips=tuple(float(v) for v in ips),
            isolation_ips=tuple(float(v) for v in isolation_ips),
            throughput=float(scores.throughput),
            fairness=float(scores.fairness),
            weights=(float(weights[0]), float(weights[1])) if weights is not None else None,
            extra={key: float(value) for key, value in (extra or {}).items()},
        )
        self._records.append(rec)
        return rec

    def _last_finite_ips(self, job: int) -> float:
        """Most recent finite IPS recorded for ``job`` (0.0 if none)."""
        for rec in reversed(self._records):
            if job < len(rec.ips) and np.isfinite(rec.ips[job]):
                return float(rec.ips[job])
        return 0.0

    # -- aggregations ---------------------------------------------------

    def _require_records(self) -> None:
        if not self._records:
            raise ExperimentError("telemetry log is empty")

    def mean_throughput(self) -> float:
        """Time-averaged throughput score over the run."""
        self._require_records()
        return float(np.mean([r.throughput for r in self._records]))

    def mean_fairness(self) -> float:
        """Time-averaged fairness score over the run."""
        self._require_records()
        return float(np.mean([r.fairness for r in self._records]))

    def mean_job_speedups(self) -> np.ndarray:
        """Per-job speedups averaged over the run."""
        self._require_records()
        return np.mean([r.speedups for r in self._records], axis=0)

    def worst_job_speedup(self) -> float:
        """Run-average speedup of the worst-performing job (Fig. 9)."""
        return float(np.min(self.mean_job_speedups()))

    def series(self, what: str) -> np.ndarray:
        """Extract a named time series.

        ``what`` is ``"time"``, ``"throughput"``, ``"fairness"``,
        ``"weight_throughput"``, ``"weight_fairness"``, or any key
        present in the records' ``extra`` dicts.
        """
        self._require_records()
        if what == "time":
            return np.array([r.time_s for r in self._records])
        if what == "throughput":
            return np.array([r.throughput for r in self._records])
        if what == "fairness":
            return np.array([r.fairness for r in self._records])
        if what in ("weight_throughput", "weight_fairness"):
            index = 0 if what == "weight_throughput" else 1
            values = [r.weights[index] if r.weights else np.nan for r in self._records]
            return np.array(values)
        if any(what in r.extra for r in self._records):
            return np.array([r.extra.get(what, np.nan) for r in self._records])
        raise ExperimentError(f"unknown telemetry series {what!r}")

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-compatible representation of the whole log."""
        return {
            "goals": {
                "throughput_metric": self._goals.throughput_metric,
                "fairness_metric": self._goals.fairness_metric,
            },
            "records": [r.to_dict() for r in self._records],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TelemetryLog":
        """Rebuild a log (records restored verbatim) from :meth:`to_dict`."""
        goals = data.get("goals") or {}
        log = cls(
            GoalSet(
                goals.get("throughput_metric", "sum_ips"),
                goals.get("fairness_metric", "jain"),
            )
        )
        log._records = [TelemetryRecord.from_dict(r) for r in data.get("records", [])]
        return log

    def tail(self, fraction: float) -> "TelemetryLog":
        """A log holding only the last ``fraction`` of records.

        Used to score the converged portion of a run, discarding the
        initial exploration transient.
        """
        if not 0 < fraction <= 1:
            raise ExperimentError(f"fraction must be in (0, 1], got {fraction}")
        self._require_records()
        keep = max(1, int(round(len(self._records) * fraction)))
        out = TelemetryLog(self._goals)
        out._records = self._records[-keep:]
        return out
