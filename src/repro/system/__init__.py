"""Co-location simulation: contention, server simulator, telemetry."""

from repro.system.contention import (
    INTERFERENCE_WEIGHT,
    MIN_INTERFERENCE_FACTOR,
    SystemState,
    effective_allocations,
    evaluate_system,
    interference_factors,
    isolation_ips,
)
from repro.system.simulation import (
    DEFAULT_CONTROL_INTERVAL_S,
    CoLocationSimulator,
    Observation,
)
from repro.system.telemetry import TelemetryLog, TelemetryRecord

__all__ = [
    "CoLocationSimulator",
    "DEFAULT_CONTROL_INTERVAL_S",
    "INTERFERENCE_WEIGHT",
    "MIN_INTERFERENCE_FACTOR",
    "Observation",
    "SystemState",
    "TelemetryLog",
    "TelemetryRecord",
    "effective_allocations",
    "evaluate_system",
    "interference_factors",
    "isolation_ips",
]
