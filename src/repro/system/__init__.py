"""Co-location system: contention model, server simulator, control
session, telemetry."""

from repro.system.contention import (
    INTERFERENCE_WEIGHT,
    MIN_INTERFERENCE_FACTOR,
    SystemState,
    effective_allocations,
    evaluate_system,
    interference_factors,
    isolation_ips,
)
from repro.system.session import ControlSession, ServerLike
from repro.system.simulation import (
    DEFAULT_CONTROL_INTERVAL_S,
    CoLocationSimulator,
    Observation,
)
from repro.system.telemetry import TelemetryLog, TelemetryRecord

__all__ = [
    "CoLocationSimulator",
    "ControlSession",
    "DEFAULT_CONTROL_INTERVAL_S",
    "INTERFERENCE_WEIGHT",
    "MIN_INTERFERENCE_FACTOR",
    "Observation",
    "ServerLike",
    "SystemState",
    "TelemetryLog",
    "TelemetryRecord",
    "effective_allocations",
    "evaluate_system",
    "interference_factors",
    "isolation_ips",
]
