"""Shared-resource contention model.

When a policy partitions *all* resources, jobs are isolated inside
their partitions and each job's IPS comes straight from its workload
model. Policies that partition only a subset — dCAT controls only LLC
ways, CoPart only LLC + memory bandwidth — leave the remaining
resources *shared*, and this module models what sharing does:

* a shared resource is implicitly fair-shared (the OS scheduler and
  the memory controller approximate this), so each job sees an equal
  fractional slice as its base allocation;
* shared memory bandwidth is additionally *work-conserving*: if total
  demand is below capacity nobody is throttled, otherwise every job's
  achieved rate is scaled by the same factor until demand meets
  capacity (the classic bandwidth-contention fixed point);
* each shared resource also inflicts an interference penalty that
  grows with the number of co-runners, scaled by each workload's
  ``contention_sensitivity`` — capturing the destructive interference
  (line thrashing, scheduler migration, row-buffer conflicts) that
  fair-sharing arithmetic alone does not.

This is why actively partitioning more resources helps in the
reproduction exactly as the paper measures (CoPart > dCAT, Sec. V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.resources.allocation import Configuration
from repro.resources.types import (
    CORES,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    POWER,
    ResourceCatalog,
)
from repro.workloads.mixes import JobMix

#: Relative interference strength of sharing each resource kind,
#: multiplied by the workload's contention_sensitivity per co-runner.
#: These are the *destructive* interference penalties layered on top of
#: the capacity effects (intensity-proportional LLC occupancy,
#: work-conserving bandwidth, fair-share cores) modeled explicitly.
INTERFERENCE_WEIGHT = {
    CORES: 0.18,
    LLC_WAYS: 0.22,
    MEMORY_BANDWIDTH: 0.12,
    POWER: 0.1,
}

#: Lower bound on the interference multiplier so extreme co-location
#: degrees degrade, not zero out, performance.
MIN_INTERFERENCE_FACTOR = 0.45

#: Iterations of the bandwidth work-conserving fixed point.
_BANDWIDTH_FIXED_POINT_ITERS = 4

#: Scale of the loaded-latency penalty on an unpartitioned bus (the
#: full latency_sensitivity is an upper bound reached only by pure
#: pointer-chasers on a fully saturated bus).
_LATENCY_PENALTY_SCALE = 0.55


@dataclass(frozen=True)
class SystemState:
    """True (noise-free) per-job state for one interval."""

    ips: np.ndarray
    llc_occupancy_bytes: np.ndarray
    memory_bandwidth_bytes_s: np.ndarray


def effective_allocations(
    mix: JobMix,
    catalog: ResourceCatalog,
    config: Optional[Configuration],
    t: float = 0.0,
) -> Dict[str, np.ndarray]:
    """Per-job effective unit allocations, resource name -> float array.

    Partitioned resources come from ``config``. Shared resources are
    modeled by how the hardware actually arbitrates them (fractional
    units allowed):

    * shared **cores** are timesliced per *runnable thread*, not per
      job: a job running 8 worker threads receives four times the CPU
      of a mostly-serial job with 2 runnable threads (standard CFS
      behaviour), so unpartitioned cores favour the highly-parallel
      jobs and starve the serial ones;
    * a shared **LLC** is occupied in proportion to each job's memory
      access intensity — an unpartitioned cache is grabbed by whoever
      misses most, so streaming workloads evict the cache-sensitive
      ones' lines (the unfairness dCAT/CoPart exist to fix);
    * shared **bandwidth** allocation is nominal here (equal); the
      work-conserving fixed point in :func:`evaluate_system` is what
      actually arbitrates a shared bus.
    """
    n = len(mix)
    allocations = {}
    for resource in catalog:
        if config is not None and config.partitions(resource.name):
            allocations[resource.name] = np.asarray(config.units(resource.name), dtype=float)
        elif resource.name == LLC_WAYS and n > 1:
            shares = _llc_pressure_shares(mix, t)
            allocations[resource.name] = resource.units * shares
        elif resource.name == CORES and n > 1:
            shares = _runnable_thread_shares(mix, t, resource.units)
            allocations[resource.name] = resource.units * shares
        else:
            allocations[resource.name] = np.full(n, resource.units / n, dtype=float)
    return allocations


def _runnable_thread_shares(mix: JobMix, t: float, total_cores: int) -> np.ndarray:
    """Per-job CPU shares of unpartitioned cores (per-thread timeslicing).

    Each job's runnable-thread count is estimated from its phase's
    Amdahl profile: a parallel fraction of ``p`` keeps roughly
    ``1 / (1 - p)`` threads busy, capped at the machine width.
    """
    threads = []
    for workload in mix:
        p = workload.phase_at(t).parallel_fraction
        threads.append(min(1.0 / max(1.0 - p, 1e-2), float(total_cores)))
    shares = np.asarray(threads, dtype=float)
    return shares / shares.sum()


def _llc_pressure_shares(mix: JobMix, t: float) -> np.ndarray:
    """Per-job occupancy shares of an unpartitioned LLC.

    A shared cache converges to occupancy proportional to each job's
    allocation (miss) rate. We approximate the steady state with each
    phase's miss pressure at a nominal quarter-machine cache size plus
    its streaming traffic, which favours exactly the workloads that
    benefit least from the space.
    """
    pressures = []
    for workload in mix:
        phase = workload.phase_at(t)
        nominal_cache = phase.working_set_bytes / 4.0
        pressure = (
            phase.miss_rate(nominal_cache) * 64.0 + 0.5 * phase.stream_bytes_per_instr
        ) * phase.ips_per_core
        pressures.append(max(pressure, 1e-9))
    shares = np.asarray(pressures, dtype=float)
    return shares / shares.sum()


def interference_factors(
    mix: JobMix,
    catalog: ResourceCatalog,
    config: Optional[Configuration],
) -> np.ndarray:
    """Per-job IPS multipliers from sharing unpartitioned resources."""
    n = len(mix)
    factors = np.ones(n, dtype=float)
    if n <= 1:
        return factors
    for resource in catalog:
        if config is not None and config.partitions(resource.name):
            continue
        weight = INTERFERENCE_WEIGHT.get(resource.name, 0.5)
        for j, workload in enumerate(mix):
            penalty = weight * workload.contention_sensitivity * (n - 1)
            factors[j] *= max(1.0 - penalty, MIN_INTERFERENCE_FACTOR)
    return np.maximum(factors, MIN_INTERFERENCE_FACTOR)


def evaluate_system(
    mix: JobMix,
    catalog: ResourceCatalog,
    config: Optional[Configuration],
    t: float,
) -> SystemState:
    """True per-job IPS (and memory telemetry) at time ``t``.

    Args:
        mix: the co-located workloads.
        catalog: the server's resources.
        config: the active partitioning configuration; resources it
            does not cover are treated as shared. ``None`` means fully
            unmanaged sharing (the paper's "baseline unmanaged
            partitioning").
        t: elapsed wall time, which selects each workload's phase.
    """
    n = len(mix)
    allocations = effective_allocations(mix, catalog, config, t)
    cores = allocations[CORES]
    way_bytes = catalog.get(LLC_WAYS).unit_capacity
    bw_unit = catalog.get(MEMORY_BANDWIDTH).unit_capacity
    cache_bytes = allocations[LLC_WAYS] * way_bytes
    bandwidth_bytes = allocations[MEMORY_BANDWIDTH] * bw_unit

    # A shared bus is work-conserving: any job may burst to full
    # capacity, and the fixed point below resolves oversubscription.
    bandwidth_shared = config is None or not config.partitions(MEMORY_BANDWIDTH)
    if bandwidth_shared:
        bandwidth_bytes = np.full(n, catalog.get(MEMORY_BANDWIDTH).capacity)

    frequency = np.ones(n)
    if POWER in catalog:
        power = allocations[POWER]
        total_power = catalog.get(POWER).units
        for j, workload in enumerate(mix):
            phase = workload.phase_at(t)
            frequency[j] = (power[j] / total_power) ** phase.power_exponent

    phases = [workload.phase_at(t) for workload in mix]
    ips = np.array(
        [
            phases[j].ips(cores[j], cache_bytes[j], bandwidth_bytes[j], frequency[j])
            for j in range(n)
        ],
        dtype=float,
    )

    bytes_per_instr = np.array(
        [phases[j].bytes_per_instruction(cache_bytes[j]) for j in range(n)], dtype=float
    )

    if bandwidth_shared and n > 1:
        capacity = catalog.get(MEMORY_BANDWIDTH).capacity
        ips = _work_conserving_bandwidth(ips, bytes_per_instr, capacity)
        # Loaded-latency penalty of an unpartitioned bus: pointer-
        # chasing jobs stall on every queued miss; streamers hide it.
        utilization = min(1.0, float(np.sum(ips * bytes_per_instr)) / capacity)
        latency_factors = np.array(
            [1.0 - _LATENCY_PENALTY_SCALE * phases[j].latency_sensitivity * utilization for j in range(n)]
        )
        ips = ips * np.maximum(latency_factors, MIN_INTERFERENCE_FACTOR)

    ips = ips * interference_factors(mix, catalog, config)

    return SystemState(
        ips=ips,
        llc_occupancy_bytes=np.minimum(
            cache_bytes, np.array([p.working_set_bytes for p in phases])
        ),
        memory_bandwidth_bytes_s=ips * bytes_per_instr,
    )


def isolation_ips(mix: JobMix, catalog: ResourceCatalog, t: float) -> np.ndarray:
    """True isolation (whole-machine) IPS of every job at time ``t``."""
    return np.array([w.isolation_ips(catalog, t) for w in mix], dtype=float)


def _work_conserving_bandwidth(
    ips: np.ndarray, bytes_per_instr: np.ndarray, capacity_bytes_s: float
) -> np.ndarray:
    """Scale job rates so total memory traffic fits the shared bus.

    Iterates the proportional-scaling fixed point: demand above
    capacity slows everyone by the same factor, which lowers demand,
    until demand fits. A handful of iterations converges because the
    map is monotone.
    """
    rates = ips.copy()
    for _ in range(_BANDWIDTH_FIXED_POINT_ITERS):
        demand = float(np.sum(rates * bytes_per_instr))
        if demand <= capacity_bytes_s or demand == 0.0:
            break
        rates = rates * (capacity_bytes_s / demand)
    return np.minimum(rates, ips)
