"""Shared-resource contention model.

When a policy partitions *all* resources, jobs are isolated inside
their partitions and each job's IPS comes straight from its workload
model. Policies that partition only a subset — dCAT controls only LLC
ways, CoPart only LLC + memory bandwidth — leave the remaining
resources *shared*, and this module models what sharing does:

* a shared resource is implicitly fair-shared (the OS scheduler and
  the memory controller approximate this), so each job sees an equal
  fractional slice as its base allocation;
* shared memory bandwidth is additionally *work-conserving*: if total
  demand is below capacity nobody is throttled, otherwise every job's
  achieved rate is scaled by the same factor until demand meets
  capacity (the classic bandwidth-contention fixed point);
* each shared resource also inflicts an interference penalty that
  grows with the number of co-runners, scaled by each workload's
  ``contention_sensitivity`` — capturing the destructive interference
  (line thrashing, scheduler migration, row-buffer conflicts) that
  fair-sharing arithmetic alone does not.

This is why actively partitioning more resources helps in the
reproduction exactly as the paper measures (CoPart > dCAT, Sec. V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.resources.allocation import Configuration
from repro.resources.types import (
    CORES,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    POWER,
    ResourceCatalog,
)
from repro.workloads.mixes import JobMix
from repro.workloads.model import PhaseVector

#: Relative interference strength of sharing each resource kind,
#: multiplied by the workload's contention_sensitivity per co-runner.
#: These are the *destructive* interference penalties layered on top of
#: the capacity effects (intensity-proportional LLC occupancy,
#: work-conserving bandwidth, fair-share cores) modeled explicitly.
INTERFERENCE_WEIGHT = {
    CORES: 0.18,
    LLC_WAYS: 0.22,
    MEMORY_BANDWIDTH: 0.12,
    POWER: 0.1,
}

#: Lower bound on the interference multiplier so extreme co-location
#: degrees degrade, not zero out, performance.
MIN_INTERFERENCE_FACTOR = 0.45

#: Iterations of the bandwidth work-conserving fixed point.
_BANDWIDTH_FIXED_POINT_ITERS = 4

#: Scale of the loaded-latency penalty on an unpartitioned bus (the
#: full latency_sensitivity is an upper bound reached only by pure
#: pointer-chasers on a fully saturated bus).
_LATENCY_PENALTY_SCALE = 0.55


@dataclass(frozen=True)
class SystemState:
    """True (noise-free) per-job state for one interval.

    Arrays are ``(n_jobs,)`` for a scalar evaluation and
    ``(n_configs, n_jobs)`` for a batched one.
    """

    ips: np.ndarray
    llc_occupancy_bytes: np.ndarray
    memory_bandwidth_bytes_s: np.ndarray


@dataclass(frozen=True)
class ConfigBatch:
    """A stack of configurations with a common partition signature.

    The batched-evaluation protocol's allocation side: per partitioned
    resource, a ``(n_configs, n_jobs)`` float array of unit counts.
    All configurations in a batch must partition the *same* resources
    (the contention model branches on which resources are shared, so a
    mixed batch has no single vectorizable shape); callers with mixed
    signatures group via :func:`evaluate_system_batch`.
    """

    partitioned: Tuple[str, ...]
    units: Dict[str, np.ndarray] = field(compare=False)
    size: int = 0

    @classmethod
    def from_configs(cls, configs: Sequence[Optional[Configuration]]) -> "ConfigBatch":
        """Stack configurations; raises on mixed partition signatures."""
        if not configs:
            raise ConfigurationError("a configuration batch needs at least one entry")
        signature = partition_signature(configs[0])
        for config in configs[1:]:
            if partition_signature(config) != signature:
                raise ConfigurationError(
                    "configurations in a batch must partition the same resources; "
                    f"got {signature} and {partition_signature(config)}"
                )
        units = {
            name: np.array([config.units(name) for config in configs], dtype=float)
            for name in signature
        }
        return cls(partitioned=signature, units=units, size=len(configs))


def partition_signature(config: Optional[Configuration]) -> Tuple[str, ...]:
    """The sorted resource names a configuration partitions (``None`` → none)."""
    return () if config is None else config.resource_names


def effective_allocations(
    mix: JobMix,
    catalog: ResourceCatalog,
    config: Optional[Configuration],
    t: float = 0.0,
) -> Dict[str, np.ndarray]:
    """Per-job effective unit allocations, resource name -> float array.

    Partitioned resources come from ``config``. Shared resources are
    modeled by how the hardware actually arbitrates them (fractional
    units allowed):

    * shared **cores** are timesliced per *runnable thread*, not per
      job: a job running 8 worker threads receives four times the CPU
      of a mostly-serial job with 2 runnable threads (standard CFS
      behaviour), so unpartitioned cores favour the highly-parallel
      jobs and starve the serial ones;
    * a shared **LLC** is occupied in proportion to each job's memory
      access intensity — an unpartitioned cache is grabbed by whoever
      misses most, so streaming workloads evict the cache-sensitive
      ones' lines (the unfairness dCAT/CoPart exist to fix);
    * shared **bandwidth** allocation is nominal here (equal); the
      work-conserving fixed point in :func:`evaluate_system` is what
      actually arbitrates a shared bus.
    """
    batch = ConfigBatch.from_configs([config])
    stacked = _batch_allocations(mix, catalog, batch, t)
    return {name: np.array(values[0], dtype=float) for name, values in stacked.items()}


def _batch_allocations(
    mix: JobMix,
    catalog: ResourceCatalog,
    batch: ConfigBatch,
    t: float,
) -> Dict[str, np.ndarray]:
    """Stacked ``(n_configs, n_jobs)`` allocations per resource name.

    Shared-resource rows are identical across the batch (sharing does
    not depend on the candidate configuration), so they broadcast from
    one computed row.
    """
    n = len(mix)
    size = batch.size
    allocations = {}
    for resource in catalog:
        if resource.name in batch.units:
            allocations[resource.name] = batch.units[resource.name]
        elif resource.name == LLC_WAYS and n > 1:
            shares = _llc_pressure_shares(mix, t)
            allocations[resource.name] = np.broadcast_to(resource.units * shares, (size, n))
        elif resource.name == CORES and n > 1:
            shares = _runnable_thread_shares(mix, t, resource.units)
            allocations[resource.name] = np.broadcast_to(resource.units * shares, (size, n))
        else:
            allocations[resource.name] = np.broadcast_to(
                np.full(n, resource.units / n, dtype=float), (size, n)
            )
    return allocations


def _runnable_thread_shares(mix: JobMix, t: float, total_cores: int) -> np.ndarray:
    """Per-job CPU shares of unpartitioned cores (per-thread timeslicing).

    Each job's runnable-thread count is estimated from its phase's
    Amdahl profile: a parallel fraction of ``p`` keeps roughly
    ``1 / (1 - p)`` threads busy, capped at the machine width.
    """
    threads = []
    for workload in mix:
        p = workload.phase_at(t).parallel_fraction
        threads.append(min(1.0 / max(1.0 - p, 1e-2), float(total_cores)))
    shares = np.asarray(threads, dtype=float)
    return shares / shares.sum()


def _llc_pressure_shares(mix: JobMix, t: float) -> np.ndarray:
    """Per-job occupancy shares of an unpartitioned LLC.

    A shared cache converges to occupancy proportional to each job's
    allocation (miss) rate. We approximate the steady state with each
    phase's miss pressure at a nominal quarter-machine cache size plus
    its streaming traffic, which favours exactly the workloads that
    benefit least from the space.
    """
    pressures = []
    for workload in mix:
        phase = workload.phase_at(t)
        nominal_cache = phase.working_set_bytes / 4.0
        pressure = (
            phase.miss_rate(nominal_cache) * 64.0 + 0.5 * phase.stream_bytes_per_instr
        ) * phase.ips_per_core
        pressures.append(max(pressure, 1e-9))
    shares = np.asarray(pressures, dtype=float)
    return shares / shares.sum()


def interference_factors(
    mix: JobMix,
    catalog: ResourceCatalog,
    config: Optional[Configuration],
) -> np.ndarray:
    """Per-job IPS multipliers from sharing unpartitioned resources."""
    return _interference_for(mix, catalog, partition_signature(config))


def _interference_for(
    mix: JobMix, catalog: ResourceCatalog, partitioned: Sequence[str]
) -> np.ndarray:
    """Interference factors given the set of partitioned resource names."""
    n = len(mix)
    factors = np.ones(n, dtype=float)
    if n <= 1:
        return factors
    for resource in catalog:
        if resource.name in partitioned:
            continue
        weight = INTERFERENCE_WEIGHT.get(resource.name, 0.5)
        for j, workload in enumerate(mix):
            penalty = weight * workload.contention_sensitivity * (n - 1)
            factors[j] *= max(1.0 - penalty, MIN_INTERFERENCE_FACTOR)
    return np.maximum(factors, MIN_INTERFERENCE_FACTOR)


def evaluate_system(
    mix: JobMix,
    catalog: ResourceCatalog,
    config: Optional[Configuration],
    t: float,
) -> SystemState:
    """True per-job IPS (and memory telemetry) at time ``t``.

    Thin scalar wrapper over :func:`evaluate_config_batch` (a batch of
    one); the paired tests in ``tests/test_batched_eval.py`` assert the
    two paths are bit-identical.

    Args:
        mix: the co-located workloads.
        catalog: the server's resources.
        config: the active partitioning configuration; resources it
            does not cover are treated as shared. ``None`` means fully
            unmanaged sharing (the paper's "baseline unmanaged
            partitioning").
        t: elapsed wall time, which selects each workload's phase.
    """
    state = evaluate_config_batch(mix, catalog, ConfigBatch.from_configs([config]), t)
    return SystemState(
        ips=state.ips[0],
        llc_occupancy_bytes=state.llc_occupancy_bytes[0],
        memory_bandwidth_bytes_s=state.memory_bandwidth_bytes_s[0],
    )


def evaluate_config_batch(
    mix: JobMix,
    catalog: ResourceCatalog,
    batch: ConfigBatch,
    t: float,
) -> SystemState:
    """True per-job state for a whole configuration batch in one pass.

    Every formula matches :func:`evaluate_system`'s scalar path
    elementwise — the vectorization only widens the leading axis — so
    batched results are bit-identical to a loop of scalar calls.

    Returns a :class:`SystemState` whose arrays are shaped
    ``(batch.size, n_jobs)``.
    """
    n = len(mix)
    allocations = _batch_allocations(mix, catalog, batch, t)
    cores = allocations[CORES]
    way_bytes = catalog.get(LLC_WAYS).unit_capacity
    bw_unit = catalog.get(MEMORY_BANDWIDTH).unit_capacity
    cache_bytes = allocations[LLC_WAYS] * way_bytes
    bandwidth_bytes = allocations[MEMORY_BANDWIDTH] * bw_unit

    phases = PhaseVector.from_phases([workload.phase_at(t) for workload in mix])

    # A shared bus is work-conserving: any job may burst to full
    # capacity, and the fixed point below resolves oversubscription.
    bandwidth_shared = MEMORY_BANDWIDTH not in batch.units
    if bandwidth_shared:
        bandwidth_bytes = np.full((batch.size, n), catalog.get(MEMORY_BANDWIDTH).capacity)

    frequency = np.ones((batch.size, n))
    if POWER in catalog:
        power = allocations[POWER]
        total_power = catalog.get(POWER).units
        frequency = (power / total_power) ** phases.power_exponent

    ips = phases.ips(cores, cache_bytes, bandwidth_bytes, frequency)
    bytes_per_instr = np.asarray(phases.bytes_per_instruction(cache_bytes), dtype=float)

    if bandwidth_shared and n > 1:
        capacity = catalog.get(MEMORY_BANDWIDTH).capacity
        ips = _work_conserving_bandwidth(ips, bytes_per_instr, capacity)
        # Loaded-latency penalty of an unpartitioned bus: pointer-
        # chasing jobs stall on every queued miss; streamers hide it.
        utilization = np.minimum(1.0, np.sum(ips * bytes_per_instr, axis=-1) / capacity)
        latency_factors = (
            1.0 - _LATENCY_PENALTY_SCALE * phases.latency_sensitivity * utilization[..., None]
        )
        ips = ips * np.maximum(latency_factors, MIN_INTERFERENCE_FACTOR)

    ips = ips * _interference_for(mix, catalog, batch.partitioned)

    return SystemState(
        ips=ips,
        llc_occupancy_bytes=np.minimum(cache_bytes, phases.working_set_bytes),
        memory_bandwidth_bytes_s=ips * bytes_per_instr,
    )


def evaluate_system_batch(
    mix: JobMix,
    catalog: ResourceCatalog,
    configs: Sequence[Optional[Configuration]],
    t: float,
) -> SystemState:
    """Batched :func:`evaluate_system` over arbitrary configurations.

    Configurations sharing a partition signature are evaluated in one
    vectorized pass; mixed batches are grouped by signature and the
    rows scattered back in input order.
    """
    groups: Dict[Tuple[str, ...], List[int]] = {}
    for index, config in enumerate(configs):
        groups.setdefault(partition_signature(config), []).append(index)
    if len(groups) == 1:
        return evaluate_config_batch(mix, catalog, ConfigBatch.from_configs(configs), t)

    n = len(mix)
    ips = np.zeros((len(configs), n))
    occupancy = np.zeros((len(configs), n))
    bandwidth = np.zeros((len(configs), n))
    for indices in groups.values():
        batch = ConfigBatch.from_configs([configs[i] for i in indices])
        state = evaluate_config_batch(mix, catalog, batch, t)
        ips[indices] = state.ips
        occupancy[indices] = state.llc_occupancy_bytes
        bandwidth[indices] = state.memory_bandwidth_bytes_s
    return SystemState(
        ips=ips, llc_occupancy_bytes=occupancy, memory_bandwidth_bytes_s=bandwidth
    )


def isolation_ips(mix: JobMix, catalog: ResourceCatalog, t: float) -> np.ndarray:
    """True isolation (whole-machine) IPS of every job at time ``t``."""
    return np.array([w.isolation_ips(catalog, t) for w in mix], dtype=float)


def _work_conserving_bandwidth(
    ips: np.ndarray, bytes_per_instr: np.ndarray, capacity_bytes_s: float
) -> np.ndarray:
    """Scale job rates so total memory traffic fits the shared bus.

    Iterates the proportional-scaling fixed point: demand above
    capacity slows everyone by the same factor, which lowers demand,
    until demand fits. A handful of iterations converges because the
    map is monotone.

    Vectorized over a leading batch axis (jobs on the trailing axis).
    Rows whose demand already fits multiply by exactly 1.0 — the IEEE
    identity — so a batched run stays bit-identical to per-row scalar
    runs that broke out of the loop early.
    """
    rates = ips.copy()
    for _ in range(_BANDWIDTH_FIXED_POINT_ITERS):
        demand = np.sum(rates * bytes_per_instr, axis=-1, keepdims=True)
        over = demand > capacity_bytes_s
        if not np.any(over):
            break
        scale = np.where(over, capacity_bytes_s / np.where(over, demand, 1.0), 1.0)
        rates = rates * scale
    return np.minimum(rates, ips)
