"""SATORI applied to itself: BO over cluster budget vectors.

Within a node, SATORI searches the space of *unit partitionings among
jobs* with a GP proxy model and an acquisition function. One level up,
the fleet's budget assignment has exactly the same combinatorial
shape: each resource's cluster-wide unit pool is composed into N
positive node shares. So the broker reuses the PR 3 BO machinery
verbatim — :class:`~repro.resources.space.ConfigurationSpace` over a
*meta-catalog* whose "server" is the whole cluster (units = pooled
units per resource) and whose "jobs" are the nodes, with
:class:`~repro.core.bo.BayesianOptimizer` suggesting the next budget
vector and :class:`~repro.core.objective.GoalRecords` accumulating
(cluster throughput, cluster fairness) outcomes per tried vector.

Two fleet-level wrinkles the node-level loop does not have:

* **Feasibility drifts.** Jobs arrive and depart between decisions, so
  a suggested vector can fall below some node's floor. Suggestions are
  *repaired* deterministically — deficit nodes pull units from the
  slackest nodes, preserving per-resource totals — rather than
  rejected, so the optimizer still learns from (the feasible
  projection of) every suggestion.
* **Each sample costs an epoch.** The broker starts suggesting only
  after ``warmup_epochs`` observed samples; before that it leaves
  budgets alone, mirroring SATORI's initial-set phase.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.broker.base import BrokerView, GlobalBroker, register_broker
from repro.cluster.budget import ResourceBudget
from repro.core.bo import BayesianOptimizer
from repro.core.objective import GoalRecords
from repro.errors import ClusterError
from repro.metrics.fairness import jain_index
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.resources.types import Resource, ResourceCatalog
from repro.state import BOState, GoalRecordsState


@register_broker
class BudgetOptimizerBroker(GlobalBroker):
    """BO-over-budget-vectors: the meta-policy arm of the broker sweep.

    Args:
        seed: RNG seed for the optimizer's candidate sampling (the only
            randomness in the scheme; a fixed seed makes the budget
            trajectory deterministic).
        weights: fixed (throughput, fairness) objective weights. The
            node-level controller's *dynamic* weight scheduler reacts
            every 100 ms; at one sample per multi-second epoch there is
            no short-term/long-term split to exploit yet, so the broker
            optimizes the balanced objective.
        warmup_epochs: observed samples before the first suggestion.
        candidate_pool_size: BO candidate pool per suggestion (the
            budget space is far too large to enumerate).
        max_samples: retained (vector, scores) samples — bounds the
            GP fit cost and ages out observations from old fleet load.
    """

    name = "bo"

    def __init__(
        self,
        seed: int = 0,
        weights: Tuple[float, float] = (0.5, 0.5),
        warmup_epochs: int = 2,
        candidate_pool_size: int = 64,
        max_samples: int = 32,
    ):
        if warmup_epochs < 1:
            raise ClusterError(f"warmup_epochs must be >= 1, got {warmup_epochs}")
        self._seed = int(seed)
        self._weights = (float(weights[0]), float(weights[1]))
        self._warmup = int(warmup_epochs)
        self._pool_size = int(candidate_pool_size)
        self._max_samples = int(max_samples)
        self._epochs_seen = 0
        # Built lazily from the first views (the broker learns the
        # fleet's pool totals and node count by observing it).
        self._space: Optional[ConfigurationSpace] = None
        self._bo: Optional[BayesianOptimizer] = None
        self._records: Optional[GoalRecords] = None
        self._node_ids: Tuple[int, ...] = ()

    # -- lazy meta-space ---------------------------------------------------

    def _ensure_space(self, views: Sequence[BrokerView]) -> None:
        if self._space is not None:
            if len(views) != len(self._node_ids):
                raise ClusterError(
                    f"broker built for {len(self._node_ids)} nodes, saw {len(views)}"
                )
            return
        self._node_ids = tuple(view.node_id for view in views)
        self._space = ConfigurationSpace(
            self._meta_catalog(views), n_jobs=len(views)
        )
        self._bo = BayesianOptimizer(
            self._space,
            candidate_pool_size=self._pool_size,
            rng=self._seed,
        )
        self._records = GoalRecords(
            ("throughput", "fairness"), max_samples=self._max_samples
        )

    @staticmethod
    def _meta_catalog(views: Sequence[BrokerView]) -> ResourceCatalog:
        """The cluster as one server: pooled units, nodes as "jobs"."""
        first = views[0].budget.names
        for view in views:
            if view.budget.names != first:
                raise ClusterError(
                    "the BO broker needs a homogeneous resource set across "
                    f"nodes; node {view.node_id} has {view.budget.names}, "
                    f"node {views[0].node_id} has {first}"
                )
        totals = {name: 0 for name in first}
        for view in views:
            for name, units in view.budget.units:
                totals[name] += units
        # min_units mirrors the per-job minimum one level down: every
        # node must keep at least one job's worth of every resource.
        resources = []
        for resource in _kind_ordered(first):
            resources.append(
                Resource(kind=resource, units=totals[resource.value], min_units=1)
            )
        return ResourceCatalog(resources)

    # -- the decision ------------------------------------------------------

    def decide(self, epoch: int, views: Sequence[BrokerView]) -> Dict[int, ResourceBudget]:
        self._ensure_space(views)
        self._epochs_seen += 1
        assert self._records is not None and self._bo is not None and self._space is not None

        # Score the vector that was in force during the finished epoch.
        config = self._config_from_views(views)
        throughput = float(np.mean([view.mean_speedup for view in views]))
        fairness = jain_index([view.mean_speedup for view in views])
        self._records.add(config, self._space.encode(config), (throughput, fairness))

        if len(self._records) < self._warmup:
            return self._unchanged(views)

        suggestion = self._bo.suggest(self._records, self._weights)
        repaired = self._repair(suggestion.config, views)
        return {
            view.node_id: ResourceBudget(
                tuple(
                    (name, repaired.units(name)[index])
                    for name in repaired.resource_names
                )
            )
            for index, view in enumerate(views)
        }

    def _config_from_views(self, views: Sequence[BrokerView]) -> Configuration:
        return Configuration(
            {
                name: tuple(view.budget.get(name) for view in views)
                for name in views[0].budget.names
            }
        )

    def _repair(
        self, config: Configuration, views: Sequence[BrokerView]
    ) -> Configuration:
        """Project a suggestion onto the feasible region.

        Per resource: every node below its floor pulls units from the
        node with the most slack above *its* floor, one unit at a time,
        deterministically (ties break toward the lower index). Totals
        are untouched, so conservation survives the repair.
        """
        allocations: Dict[str, List[int]] = {
            name: list(config.units(name)) for name in config.resource_names
        }
        for name, alloc in allocations.items():
            floors = [view.floor.get(name) for view in views]
            for i in range(len(alloc)):
                while alloc[i] < floors[i]:
                    slack = [alloc[j] - floors[j] for j in range(len(alloc))]
                    donor = int(np.argmax(slack))
                    if slack[donor] < 1:
                        raise ClusterError(
                            f"cannot repair budget vector for {name!r}: pooled "
                            f"units {sum(alloc)} cannot cover floors {floors}"
                        )
                    alloc[donor] -= 1
                    alloc[i] += 1
        return Configuration({name: tuple(a) for name, a in allocations.items()})

    # -- state -------------------------------------------------------------

    def _payload(self) -> dict:
        payload = {
            "seed": self._seed,
            "weights": list(self._weights),
            "warmup_epochs": self._warmup,
            "candidate_pool_size": self._pool_size,
            "max_samples": self._max_samples,
            "epochs_seen": self._epochs_seen,
            "node_ids": list(self._node_ids),
            "space": None,
            "bo": None,
            "records": None,
        }
        if self._space is not None:
            assert self._bo is not None and self._records is not None
            payload["space"] = {
                "catalog": [
                    {"kind": r.kind.value, "units": r.units, "min_units": r.min_units}
                    for r in self._space.catalog
                ],
            }
            payload["bo"] = self._bo.snapshot().to_dict()
            payload["records"] = self._records.snapshot().to_dict()
        return payload

    def _restore_payload(self, payload: dict) -> None:
        self._seed = int(payload["seed"])
        self._weights = tuple(float(w) for w in payload["weights"])
        self._warmup = int(payload["warmup_epochs"])
        self._pool_size = int(payload["candidate_pool_size"])
        self._max_samples = int(payload["max_samples"])
        self._epochs_seen = int(payload["epochs_seen"])
        self._node_ids = tuple(int(n) for n in payload["node_ids"])
        self._space = self._bo = self._records = None
        if payload.get("space") is not None:
            from repro.resources.types import ResourceKind

            catalog = ResourceCatalog(
                Resource(
                    kind=ResourceKind(entry["kind"]),
                    units=int(entry["units"]),
                    min_units=int(entry["min_units"]),
                )
                for entry in payload["space"]["catalog"]
            )
            self._space = ConfigurationSpace(catalog, n_jobs=len(self._node_ids))
            self._bo = BayesianOptimizer(
                self._space, candidate_pool_size=self._pool_size, rng=self._seed
            ).restore(BOState.from_dict(payload["bo"]))
            self._records = GoalRecords(
                ("throughput", "fairness"), max_samples=self._max_samples
            ).restore(GoalRecordsState.from_dict(payload["records"]))


def _kind_ordered(names: Sequence[str]):
    """Resource kinds for the meta-catalog, in the budget's name order."""
    from repro.resources.types import ResourceKind

    return [ResourceKind(name) for name in names]
