"""Cluster-level resource broker: SATORI's control loop, one level up.

The hierarchical control plane's top layer (see DESIGN.md
"Hierarchical control plane"): a :class:`GlobalBroker` observes each
node's epoch outcomes and moves elastic
:class:`~repro.cluster.budget.ResourceBudget` units between nodes,
while each node's own partitioning policy divides whatever budget it
holds among its resident jobs. Schemes: ``static`` (control),
``harvest`` (Spirit-style take-from-richest), ``trade`` (pairwise
exchange with hysteresis), and ``bo`` (the PR 3 Bayesian-optimization
machinery applied to the fleet's budget vector — SATORI on itself).
"""

from repro.broker.base import (
    BrokerView,
    GlobalBroker,
    broker_names,
    make_broker,
    register_broker,
)
from repro.broker.bo import BudgetOptimizerBroker
from repro.broker.schemes import HarvestBroker, StaticBroker, TradeBroker

__all__ = [
    "BrokerView",
    "BudgetOptimizerBroker",
    "GlobalBroker",
    "HarvestBroker",
    "StaticBroker",
    "TradeBroker",
    "broker_names",
    "make_broker",
    "register_broker",
]
