"""The global-broker protocol: SATORI's enforcer split, one level up.

Spirit splits allocation into a *global enforcer* that apportions
capacity across nodes and *local enforcers* that enforce it within
each node. This package mirrors that split for the reproduction's
fleet: each :class:`~repro.cluster.node.ServerNode` runs its own
partitioning policy (the local enforcer — SATORI, EqualPartition, ...)
over whatever budget it currently holds, and a :class:`GlobalBroker`
observes per-node epoch outcomes and *moves budget units between
nodes* at epoch boundaries.

A broker sees the fleet the way a placement policy sees nodes: through
:class:`BrokerView` summaries — budgets, occupancy-derived floors, and
the previous epoch's scored telemetry — never the workload models
themselves. Its contract:

* ``decide`` returns a complete ``node_id -> ResourceBudget`` mapping
  whose per-resource totals equal the input's (conservation — the
  cluster-wide pool is fixed) and where every node's budget covers its
  floor (feasibility — a broker never strands a resident job). The
  :class:`~repro.cluster.simulator.ClusterSimulator` re-validates both
  and raises on violation, so a buggy scheme fails loudly instead of
  silently leaking capacity.
* ``snapshot``/``restore`` round-trip the broker's mutable state
  through the same versioned :class:`~repro.state.PolicyState`
  envelope node policies use, so a cluster run can pause and resume
  bit-identically at any epoch boundary.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from repro.cluster.budget import ResourceBudget
from repro.errors import ClusterError
from repro.state import PolicyState


@dataclass(frozen=True)
class BrokerView:
    """What the global broker may know about one node at an epoch boundary.

    Attributes:
        node_id: stable node index.
        budget: the node's current resource budget.
        floor: the smallest budget that still hosts the node's resident
            jobs — the broker may never push a node below it.
        n_jobs: jobs resident at the end of the epoch.
        throughput: the node's scored throughput for the epoch.
        fairness: the node's scored fairness for the epoch.
        mean_speedup: mean per-job speedup the node observed — the
            universal "how well off is this node" signal, mirroring the
            paper's use of IPS degradation as the contention proxy.
        synthesized: ``True`` for 0/1-job epochs (nothing was
            partitioned; the scores are definitional, not measured).
    """

    node_id: int
    budget: ResourceBudget
    floor: ResourceBudget
    n_jobs: int
    throughput: float = 1.0
    fairness: float = 1.0
    mean_speedup: float = 1.0
    synthesized: bool = False

    def slack(self, resource: str) -> int:
        """Units of ``resource`` the node could give up without
        stranding a resident job."""
        return self.budget.get(resource) - self.floor.get(resource)

    @property
    def total_slack(self) -> int:
        return sum(self.slack(name) for name in self.budget.names)


class GlobalBroker(abc.ABC):
    """Decides budget movements between nodes at each epoch boundary."""

    #: Registry id; subclasses override.
    name: str = "broker"

    @abc.abstractmethod
    def decide(
        self, epoch: int, views: Sequence[BrokerView]
    ) -> Dict[int, ResourceBudget]:
        """New budgets for the coming epoch.

        Args:
            epoch: the placement epoch that just finished.
            views: one view per node, in node-id order.

        Returns:
            A complete ``node_id -> ResourceBudget`` mapping (every
            node present, conservation and floors respected).
        """

    # -- state ------------------------------------------------------------

    @property
    def state_kind(self) -> str:
        """The :class:`~repro.state.PolicyState` tag this broker uses."""
        return f"broker.{self.name}"

    def snapshot(self) -> PolicyState:
        """The broker's mutable state as a versioned value.

        The base implementation snapshots nothing beyond the kind tag;
        stateful schemes override :meth:`_payload`/:meth:`_restore_payload`.
        """
        return PolicyState(policy=self.state_kind, payload=self._payload())

    def restore(self, state: PolicyState) -> "GlobalBroker":
        """Resume from a :meth:`snapshot`; returns self for chaining."""
        if state.policy != self.state_kind:
            raise ClusterError(
                f"cannot restore {state.policy!r} state into a "
                f"{self.state_kind!r} broker"
            )
        self._restore_payload(state.payload_dict())
        return self

    def _payload(self) -> dict:
        return {}

    def _restore_payload(self, payload: dict) -> None:
        del payload  # stateless by default

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def _by_need(views: Sequence[BrokerView]) -> Tuple[BrokerView, ...]:
        """Views sorted worst-off first (lowest observed speedup, then
        lowest fairness, then id — all ties deterministic)."""
        return tuple(
            sorted(
                views,
                key=lambda v: (
                    round(v.mean_speedup, 9),
                    round(v.fairness, 9),
                    v.node_id,
                ),
            )
        )

    @staticmethod
    def _unchanged(views: Sequence[BrokerView]) -> Dict[int, ResourceBudget]:
        return {view.node_id: view.budget for view in views}


_BROKERS: Dict[str, Callable[..., GlobalBroker]] = {}


def register_broker(factory: Callable[..., GlobalBroker]) -> Callable[..., GlobalBroker]:
    """Register a broker factory under its class-level ``name``."""
    _BROKERS[factory.name] = factory
    return factory


def broker_names() -> Tuple[str, ...]:
    """Registered broker scheme ids, sorted."""
    return tuple(sorted(_BROKERS))


def make_broker(name: str, **kwargs) -> GlobalBroker:
    """A fresh broker instance from its registry id."""
    try:
        factory = _BROKERS[name]
    except KeyError:
        raise ClusterError(
            f"unknown broker scheme {name!r}; registered: {', '.join(broker_names())}"
        ) from None
    return factory(**kwargs)
