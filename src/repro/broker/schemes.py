"""The deterministic broker schemes: ``static``, ``harvest``, ``trade``.

All three are pure functions of the observed views plus a small amount
of carried state (epoch counters, trade cooldowns); none draws random
numbers, so a fixed trace yields a bit-identical budget trajectory —
the property the determinism and snapshot-resume tests pin.

* ``static``  — never moves anything: today's fixed-capacity fleet,
  kept as the paired control every broker study compares against.
* ``harvest`` — Spirit's global-enforcer move: each epoch, take units
  from the *best-off* node (highest observed per-job speedup — its
  jobs retain the most of their isolation performance, so it can
  afford the loss) and give them to the *worst-off* node. The
  short-term sacrifice of the donor is the long-term gain of the
  fleet: SATORI's core trade, applied across nodes instead of jobs.
* ``trade``   — pairwise *exchange*: the worst-off node receives one
  unit of its scarcest resource from the best-off node and pays with
  one unit of its most-abundant resource, so the resource *mix* of
  each node drifts toward its demand while each node's total changes
  by at most zero or one unit per epoch. A hysteresis guard (minimum
  observed-speedup gap) plus a cooldown on reversing a recent exchange
  keeps the scheme from ping-ponging units between near-tied nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.broker.base import BrokerView, GlobalBroker, register_broker
from repro.cluster.budget import ResourceBudget
from repro.errors import ClusterError


@register_broker
class StaticBroker(GlobalBroker):
    """Budgets never move: the fixed-capacity control."""

    name = "static"

    def __init__(self) -> None:
        self._epochs_seen = 0

    def decide(self, epoch: int, views: Sequence[BrokerView]) -> Dict[int, ResourceBudget]:
        self._epochs_seen += 1
        return self._unchanged(views)

    def _payload(self) -> dict:
        return {"epochs_seen": self._epochs_seen}

    def _restore_payload(self, payload: dict) -> None:
        self._epochs_seen = int(payload.get("epochs_seen", 0))


@register_broker
class HarvestBroker(GlobalBroker):
    """Take from the best-off node, give to the worst-off node.

    Args:
        step: most units of each resource moved per epoch.
        min_gap: minimum observed-speedup gap between donor and
            recipient before anything moves; the default moves on any
            strict gap but leaves a perfectly level fleet alone.
    """

    name = "harvest"

    def __init__(self, step: int = 1, min_gap: float = 0.0):
        if step < 1:
            raise ClusterError(f"harvest step must be >= 1, got {step}")
        if min_gap < 0.0:
            raise ClusterError(f"min_gap must be >= 0, got {min_gap}")
        self._step = int(step)
        self._min_gap = float(min_gap)
        self._epochs_seen = 0
        self._moved_units = 0

    @property
    def moved_units(self) -> int:
        """Total units moved so far (all resources)."""
        return self._moved_units

    def decide(self, epoch: int, views: Sequence[BrokerView]) -> Dict[int, ResourceBudget]:
        self._epochs_seen += 1
        budgets = self._unchanged(views)
        ranked = self._by_need(views)
        recipient = ranked[0]
        # The donor is the best-off node that actually has slack to
        # give; a maxed-out-but-thriving node is skipped rather than
        # raided below its floor.
        donor: Optional[BrokerView] = None
        for view in reversed(ranked):
            if view.node_id != recipient.node_id and view.total_slack > 0:
                donor = view
                break
        if donor is None:
            return budgets
        if donor.mean_speedup - recipient.mean_speedup <= self._min_gap:
            return budgets
        moved = False
        donor_budget = budgets[donor.node_id]
        recipient_budget = budgets[recipient.node_id]
        for resource in donor.budget.names:
            units = min(self._step, donor.slack(resource))
            if units < 1:
                continue
            donor_budget = donor_budget.transfer(resource, -units)
            recipient_budget = recipient_budget.transfer(resource, units)
            self._moved_units += units
            moved = True
        if moved:
            budgets[donor.node_id] = donor_budget
            budgets[recipient.node_id] = recipient_budget
        return budgets

    def _payload(self) -> dict:
        return {"epochs_seen": self._epochs_seen, "moved_units": self._moved_units}

    def _restore_payload(self, payload: dict) -> None:
        self._epochs_seen = int(payload.get("epochs_seen", 0))
        self._moved_units = int(payload.get("moved_units", 0))


@register_broker
class TradeBroker(GlobalBroker):
    """Pairwise resource exchange between the worst- and best-off nodes.

    Args:
        hysteresis: minimum observed-speedup gap before a trade
            happens. Below it the fleet is considered level and units
            stay put — the guard that keeps near-tied nodes from
            swapping units back and forth every epoch.
        cooldown: epochs during which the exact reverse of an executed
            exchange is suppressed (the second anti-ping-pong guard:
            one noisy epoch cannot immediately undo a trade).
    """

    name = "trade"

    def __init__(self, hysteresis: float = 0.05, cooldown: int = 2):
        if hysteresis < 0.0:
            raise ClusterError(f"hysteresis must be >= 0, got {hysteresis}")
        if cooldown < 0:
            raise ClusterError(f"cooldown must be >= 0, got {cooldown}")
        self._hysteresis = float(hysteresis)
        self._cooldown = int(cooldown)
        self._epochs_seen = 0
        #: Executed exchanges as (epoch, source, target, resource) — one
        #: entry per direction, pruned to the cooldown window.
        self._recent: List[Tuple[int, int, int, str]] = []

    def decide(self, epoch: int, views: Sequence[BrokerView]) -> Dict[int, ResourceBudget]:
        self._epochs_seen += 1
        self._recent = [
            move for move in self._recent if epoch - move[0] <= self._cooldown
        ]
        budgets = self._unchanged(views)
        ranked = self._by_need(views)
        worst, best = ranked[0], ranked[-1]
        if worst.node_id == best.node_id:
            return budgets
        if best.mean_speedup - worst.mean_speedup <= self._hysteresis:
            return budgets
        want = self._scarcest(worst, giver=best)
        if want is None:
            return budgets
        give = self._most_abundant(worst, exclude=want)
        if self._on_cooldown(epoch, best.node_id, worst.node_id, want):
            return budgets
        if give is not None and self._on_cooldown(
            epoch, worst.node_id, best.node_id, give
        ):
            give = None
        budgets[best.node_id] = budgets[best.node_id].transfer(want, -1)
        budgets[worst.node_id] = budgets[worst.node_id].transfer(want, 1)
        self._recent.append((epoch, best.node_id, worst.node_id, want))
        if give is not None:
            budgets[worst.node_id] = budgets[worst.node_id].transfer(give, -1)
            budgets[best.node_id] = budgets[best.node_id].transfer(give, 1)
            self._recent.append((epoch, worst.node_id, best.node_id, give))
        return budgets

    def _on_cooldown(self, epoch: int, source: int, target: int, resource: str) -> bool:
        """Would (source -> target, resource) reverse a recent exchange?"""
        return any(
            move_source == target and move_target == source and move_resource == resource
            for _, move_source, move_target, move_resource in self._recent
        )

    @staticmethod
    def _scarcest(view: BrokerView, giver: BrokerView) -> Optional[str]:
        """The receiving node's tightest resource the giver can spare."""
        candidates = [
            name for name in view.budget.names if giver.slack(name) >= 1
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda name: (view.slack(name), name))

    @staticmethod
    def _most_abundant(view: BrokerView, exclude: str) -> Optional[str]:
        """What the receiving node pays with: its loosest other resource.

        ``None`` when it has nothing to spare — the exchange then
        degrades to a one-way grant, which conservation still permits.
        """
        candidates = [
            name
            for name in view.budget.names
            if name != exclude and view.slack(name) >= 1
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda name: (view.slack(name), name))
