"""Exception hierarchy for the SATORI reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause while
still being able to distinguish configuration problems from hardware
(simulated) actuation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid resource partitioning configuration was supplied.

    Raised when unit counts do not sum to the resource total, a job
    would receive fewer units than the resource minimum, or a
    configuration references resources unknown to the catalog.
    """


class SpaceError(ReproError):
    """A configuration-space operation received inconsistent arguments."""


class HardwareError(ReproError):
    """A simulated hardware actuator rejected a request.

    Mirrors the failure modes of the real interfaces (Intel CAT/MBA via
    MSRs, ``taskset``, RAPL): out-of-range class-of-service ids,
    non-contiguous way masks, invalid throttle levels, and so on.
    """


class ActuationError(HardwareError):
    """Installing a configuration failed even after bounded retry.

    Raised by the simulated server when every write attempt of a
    configuration install fails (e.g. during an injected persistent
    MSR outage). The previously installed configuration — the
    last-known-good one — remains in effect; controllers see the
    failure through ``Observation.actuation_ok`` and are expected to
    fall back rather than crash.
    """


class WorkloadError(ReproError):
    """A workload model or registry lookup failed."""


class PolicyError(ReproError):
    """A partitioning policy was misused or produced an invalid decision."""


class ModelError(ReproError):
    """A statistical model (GP / acquisition) failed to fit or predict."""


class ExperimentError(ReproError):
    """An experiment driver received inconsistent parameters."""


class EngineError(ReproError):
    """The execution engine was misconfigured or a run spec is invalid.

    Raised for non-serializable policy kwargs, unknown policy-factory
    ids, invalid worker counts, and malformed cache artifacts.
    """


class ObsError(ReproError):
    """The observability layer was misused.

    Raised for metric name/type conflicts in a
    :class:`~repro.obs.MetricRegistry`, malformed histogram bucket
    bounds, and unreadable trace artifacts.
    """


class ClusterError(ReproError):
    """The cluster layer was misconfigured or placement is impossible.

    Raised for invalid node counts, unknown placement-policy ids,
    malformed arrival traces, and jobs that no node has capacity for.
    """
