"""SLO-aware scheduling: specs, tracking, and miss events for qos jobs.

The cluster layer marks arrivals as ``batch`` or ``qos``; this package
defines what the qos kind *means*: an :class:`SLOSpec` attached to
qos arrivals, an :class:`SLOTracker` scoring per-interval telemetry
against it, and the miss events / attainment aggregates surfaced in
``ClusterResult``, ``repro.obs`` metrics, and the serve layer's
``/metrics`` scrape. The enforcement side lives in
``repro.policies.bopf`` (bounded-priority fairness) and the
``slo_aware`` placement policy in ``repro.cluster.placement``.
"""

from repro.qos.slo import (
    SLOMissEvent,
    SLOSpec,
    SLOSummary,
    SLOTracker,
    min_speedup_for,
)

__all__ = [
    "SLOMissEvent",
    "SLOSpec",
    "SLOSummary",
    "SLOTracker",
    "min_speedup_for",
]
