"""Service-level objectives for qos-kind jobs.

PR 8 plumbed ``JobArrival.kind`` ("batch" / "qos") through every layer
without attaching semantics. This module supplies them: an
:class:`SLOSpec` states what a qos job is *owed*, and an
:class:`SLOTracker` consumes per-interval telemetry to report whether
it got it.

The SLO is expressed as a **speedup floor** — the job's co-located IPS
divided by its isolation IPS must stay at or above ``min_speedup`` —
which doubles as a latency proxy. Under the M/M/1 tail model of
``repro.workloads.latency_critical`` a service meets a p99 target
exactly when its capacity ``mu = ips / instructions_per_request``
exceeds the offered load by the fixed margin ``-ln(0.01) / target``,
i.e. when

    ips >= load * ipr + ipr * factor / target  =  required_ips

so dividing by the job's isolation IPS turns the latency target into a
speedup floor (:func:`min_speedup_for`). Tracking speedups instead of
latencies keeps the SLO meaningful for every workload the cluster
hosts, not only the LC suite.

Attainment is windowed: each evaluation window (``window`` control
intervals) attains when its *mean* speedup clears the floor — a single
noisy interval does not count as an outage, mirroring how real SLOs
are computed over reporting windows. A job's epoch attainment is the
fraction of windows attained; when it drops below ``attain_target``
the tracker records an :class:`SLOMissEvent`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.workloads.latency_critical import LatencyCriticalJob


@dataclass(frozen=True)
class SLOSpec:
    """What a qos-kind job is owed.

    Attributes:
        min_speedup: per-window floor on mean speedup (co-located IPS /
            isolation IPS); the latency proxy — see module docstring.
        window: control intervals per evaluation window.
        attain_target: fraction of windows an epoch must attain for
            the job to count as *meeting* its SLO that epoch; below
            this the tracker records a miss event.
    """

    min_speedup: float = 0.7
    window: int = 2
    attain_target: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 < self.min_speedup <= 1.0:
            raise ExperimentError(
                f"min_speedup must be in (0, 1], got {self.min_speedup}"
            )
        if self.window < 1:
            raise ExperimentError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.attain_target <= 1.0:
            raise ExperimentError(
                f"attain_target must be in (0, 1], got {self.attain_target}"
            )

    def to_dict(self) -> Dict:
        return {
            "min_speedup": self.min_speedup,
            "window": self.window,
            "attain_target": self.attain_target,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SLOSpec":
        return cls(
            min_speedup=float(data.get("min_speedup", 0.7)),
            window=int(data.get("window", 2)),
            attain_target=float(data.get("attain_target", 0.75)),
        )

    def window_attainment(self, speedups: Sequence[float]) -> float:
        """Fraction of evaluation windows whose mean clears the floor.

        An empty sequence (no intervals measured) counts as full
        attainment — nothing ran, so nothing was violated.
        """
        values = [float(v) for v in speedups]
        if not values:
            return 1.0
        attained = 0
        windows = 0
        for start in range(0, len(values), self.window):
            chunk = values[start : start + self.window]
            windows += 1
            if sum(chunk) / len(chunk) >= self.min_speedup:
                attained += 1
        return attained / windows


def min_speedup_for(
    job: LatencyCriticalJob, isolation_ips: float, t: float = 0.0, slack: float = 1.0
) -> float:
    """Speedup floor equivalent to a job's p99 latency target.

    Inverts the M/M/1 tail at time ``t``'s offered load and divides by
    the job's isolation IPS, clamped into ``(0, 1]`` — a floor above
    1.0 would demand more than running alone delivers and is treated
    as "needs the whole machine".
    """
    if isolation_ips <= 0:
        raise ExperimentError("isolation_ips must be positive")
    return min(1.0, max(1e-6, job.required_ips(t, slack) / isolation_ips))


@dataclass(frozen=True)
class SLOMissEvent:
    """One qos job falling below its attainment target for one epoch."""

    epoch: int
    node_id: int
    job_id: int
    attainment: float

    def to_dict(self) -> Dict:
        return {
            "epoch": self.epoch,
            "node_id": self.node_id,
            "job_id": self.job_id,
            "attainment": self.attainment,
        }


class SLOTracker:
    """Accumulates per-job SLO attainment across node-epochs.

    The cluster simulator calls :meth:`score_epoch` once per simulated
    node-epoch with the per-interval speedup series of every hosted
    job; the tracker keeps only the qos-kind ones. Failed node-epochs
    are scored through :meth:`score_outage` — a crashed node delivers
    zero service, which is the SLO story the attainment number must
    tell.
    """

    def __init__(self, spec: SLOSpec):
        self._spec = spec
        self._attainment: Dict[int, List[float]] = {}
        self._misses: List[SLOMissEvent] = []

    @property
    def spec(self) -> SLOSpec:
        return self._spec

    @property
    def misses(self) -> Tuple[SLOMissEvent, ...]:
        return tuple(self._misses)

    @property
    def scored_epochs(self) -> int:
        """Total (job, epoch) pairs scored so far."""
        return sum(len(series) for series in self._attainment.values())

    def score_epoch(
        self,
        epoch: int,
        node_id: int,
        job_ids: Sequence[int],
        kinds: Sequence[str],
        interval_speedups: Sequence[Sequence[float]],
    ) -> Dict[int, float]:
        """Score one node-epoch; returns ``{job_id: attainment}`` for qos jobs.

        Args:
            epoch: placement-epoch index.
            node_id: the hosting node.
            job_ids: jobs on the node, in slot order.
            kinds: job kinds aligned with ``job_ids``.
            interval_speedups: per-job series of per-interval speedups
                (aligned with ``job_ids``; may be empty for a job that
                produced no telemetry, which scores as attained).
        """
        out: Dict[int, float] = {}
        for slot, job_id in enumerate(job_ids):
            if slot >= len(kinds) or kinds[slot] != "qos":
                continue
            series = interval_speedups[slot] if slot < len(interval_speedups) else ()
            out[job_id] = self._spec.window_attainment(series)
        self._record(epoch, node_id, out)
        return out

    def score_outage(
        self, epoch: int, node_id: int, job_ids: Sequence[int], kinds: Sequence[str]
    ) -> Dict[int, float]:
        """Score a failed node-epoch: every qos job attains 0.0."""
        out = {
            job_id: 0.0
            for slot, job_id in enumerate(job_ids)
            if slot < len(kinds) and kinds[slot] == "qos"
        }
        self._record(epoch, node_id, out)
        return out

    def _record(self, epoch: int, node_id: int, attained: Dict[int, float]) -> None:
        for job_id, value in attained.items():
            self._attainment.setdefault(job_id, []).append(value)
            if value < self._spec.attain_target:
                self._misses.append(
                    SLOMissEvent(
                        epoch=epoch, node_id=node_id, job_id=job_id, attainment=value
                    )
                )

    # -- aggregations ---------------------------------------------------

    def job_attainment(self) -> Dict[int, float]:
        """Mean attainment per qos job over its scored epochs."""
        return {
            job_id: sum(series) / len(series)
            for job_id, series in sorted(self._attainment.items())
            if series
        }

    def attainment(self) -> float:
        """Overall mean attainment (1.0 when no qos job was scored)."""
        per_job = self.job_attainment()
        if not per_job:
            return 1.0
        return sum(per_job.values()) / len(per_job)

    def miss_rate(self) -> float:
        """Fraction of scored (job, epoch) pairs below the target."""
        scored = self.scored_epochs
        if scored == 0:
            return 0.0
        return len(self._misses) / scored

    def to_dict(self) -> Dict:
        return {
            "spec": self._spec.to_dict(),
            "attainment": self.attainment(),
            "miss_rate": self.miss_rate(),
            "job_attainment": {
                str(job_id): value for job_id, value in self.job_attainment().items()
            },
            "misses": [event.to_dict() for event in self._misses],
        }


@dataclass(frozen=True)
class SLOSummary:
    """Aggregate SLO outcome of one cluster run (see ``ClusterResult``)."""

    attainment: float
    miss_rate: float
    qos_jobs: int
    misses: Tuple[SLOMissEvent, ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict:
        return {
            "attainment": self.attainment,
            "miss_rate": self.miss_rate,
            "qos_jobs": self.qos_jobs,
            "misses": [event.to_dict() for event in self.misses],
        }
