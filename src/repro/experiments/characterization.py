"""Sec. II characterization experiments (Figs. 1-3, Observations 1-3).

These drivers reproduce the paper's motivating measurements:

* Fig. 1 — the throughput-optimal configuration changes significantly
  and frequently over time (Observation 1);
* Fig. 2 — throughput-optimal and fairness-optimal configurations are
  far apart, and each is poor at the other goal; naive compromises
  (averaging the two optima, alternating between them) stay well
  below the Balanced Oracle (Observation 2);
* Fig. 3 — at different times, the same throughput sacrifice buys
  fairness in different directions, so temporally re-balancing the
  goals yields net gains (Observation 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.metrics.goals import GoalSet
from repro.policies.oracle import OracleSearch
from repro.resources.allocation import Configuration
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike, make_rng
from repro.experiments.runner import experiment_catalog
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class DriftResult:
    """Fig. 1 data: the throughput-optimal configuration over time."""

    times: np.ndarray
    #: resource name -> (n_times, n_jobs) array of optimal unit shares (%).
    shares: Dict[str, np.ndarray]
    configs: List[Configuration]

    def max_share_change_percent(self) -> float:
        """Largest percentage-point swing of any job's share of any resource."""
        worst = 0.0
        for series in self.shares.values():
            swing = series.max(axis=0) - series.min(axis=0)
            worst = max(worst, float(swing.max()))
        return worst

    def n_distinct_configs(self) -> int:
        return len(set(self.configs))


def optimal_configuration_drift(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    duration_s: float = 12.0,
    step_s: float = 0.5,
    goals: Optional[GoalSet] = None,
    w_throughput: float = 1.0,
    w_fairness: float = 0.0,
) -> DriftResult:
    """Track the goal-optimal configuration over time (Fig. 1).

    Defaults track the Throughput Oracle; pass fairness weights to
    track the fairness-optimal configuration instead (the paper notes
    it varies just as much).
    """
    catalog = catalog or experiment_catalog()
    search = OracleSearch(mix, catalog, goals)
    times = np.arange(0.0, duration_s, step_s)
    configs = [search.best(float(t), w_throughput, w_fairness).config for t in times]

    shares: Dict[str, np.ndarray] = {}
    for name in search.space.resource_names:
        total = catalog.get(name).units
        shares[name] = np.array(
            [[100.0 * u / total for u in c.units(name)] for c in configs]
        )
    return DriftResult(times=times, shares=shares, configs=configs)


@dataclass(frozen=True)
class GoalGapResult:
    """Fig. 2 / Observation 2 data at one point in time."""

    time_s: float
    throughput_opt: Tuple[float, float]  # (T, F) of the throughput-optimal config
    fairness_opt: Tuple[float, float]
    balanced_opt: Tuple[float, float]
    average_config: Tuple[float, float]  # "average of the two optima" strategy
    alternating: Tuple[float, float]  # half-time T-opt, half-time F-opt
    config_distance: float  # distance between the two optimal configs
    max_distance: float

    @property
    def cross_fairness_ratio(self) -> float:
        """Fairness of T-opt as a fraction of F-opt's fairness (paper: 67%)."""
        return self.throughput_opt[1] / max(self.fairness_opt[1], 1e-12)

    @property
    def cross_throughput_ratio(self) -> float:
        """Throughput of F-opt as a fraction of T-opt's (paper: 59%)."""
        return self.fairness_opt[0] / max(self.throughput_opt[0], 1e-12)


def conflicting_goal_gap(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    time_s: float = 0.0,
    goals: Optional[GoalSet] = None,
) -> GoalGapResult:
    """Quantify the throughput/fairness optimum gap at one time (Fig. 2)."""
    catalog = catalog or experiment_catalog()
    search = OracleSearch(mix, catalog, goals)

    t_opt = search.best(time_s, 1.0, 0.0)
    f_opt = search.best(time_s, 0.0, 1.0)
    balanced = search.best(time_s, 0.5, 0.5)

    avg_config = _average_configuration(t_opt.config, f_opt.config, catalog)
    avg_scores = search.evaluate(avg_config, time_s)
    alternating = (
        0.5 * (t_opt.throughput + f_opt.throughput),
        0.5 * (t_opt.fairness + f_opt.fairness),
    )
    vec_t = t_opt.config.as_vector()
    vec_f = f_opt.config.as_vector()
    max_distance = _max_configuration_distance(catalog, len(mix))

    return GoalGapResult(
        time_s=time_s,
        throughput_opt=(t_opt.throughput, t_opt.fairness),
        fairness_opt=(f_opt.throughput, f_opt.fairness),
        balanced_opt=(balanced.throughput, balanced.fairness),
        average_config=avg_scores,
        alternating=alternating,
        config_distance=float(np.linalg.norm(vec_t - vec_f)),
        max_distance=max_distance,
    )


@dataclass(frozen=True)
class RebalancingExample:
    """Fig. 3 evidence: matched throughput deltas, opposite fairness deltas."""

    time_a: float
    time_b: float
    throughput_delta_a: float
    throughput_delta_b: float
    fairness_delta_a: float
    fairness_delta_b: float

    @property
    def demonstrates_opportunity(self) -> bool:
        """Similar throughput deltas, fairness deltas in opposite directions."""
        return self.fairness_delta_a * self.fairness_delta_b < 0


def rebalancing_opportunity(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    times: Sequence[float] = (0.5, 3.5, 5.5, 8.5),
    n_samples: int = 120,
    goals: Optional[GoalSet] = None,
    rng: SeedLike = 7,
    throughput_match_tolerance: float = 0.25,
) -> Optional[RebalancingExample]:
    """Search for a Fig. 3-style re-balancing opportunity.

    Samples configuration pairs at each candidate time, then looks for
    two times where a pair exists with (a) approximately equal
    throughput differences but (b) fairness differences of opposite
    sign. Returns ``None`` only if no example exists among the samples
    (in practice the opportunity is plentiful, which is the point of
    Observation 3).
    """
    catalog = catalog or experiment_catalog()
    search = OracleSearch(mix, catalog, goals)
    rng = make_rng(rng)
    configs = search.space.sample_batch(n_samples, rng)

    # Per time: list of (dT, dF) for consecutive config pairs.
    deltas: Dict[float, List[Tuple[float, float]]] = {}
    for t in times:
        pairs = []
        scored = [search.evaluate(c, t) for c in configs]
        for i in range(0, len(scored) - 1, 2):
            (t1, f1), (t2, f2) = scored[i], scored[i + 1]
            pairs.append((t2 - t1, f2 - f1))
        deltas[t] = pairs

    best: Optional[RebalancingExample] = None
    for ia, ta in enumerate(times):
        for tb in times[ia + 1 :]:
            for dta, dfa in deltas[ta]:
                if abs(dta) < 1e-4:
                    continue
                for dtb, dfb in deltas[tb]:
                    if dfa * dfb >= 0:
                        continue
                    if abs(dtb - dta) > throughput_match_tolerance * abs(dta):
                        continue
                    example = RebalancingExample(
                        time_a=ta,
                        time_b=tb,
                        throughput_delta_a=dta,
                        throughput_delta_b=dtb,
                        fairness_delta_a=dfa,
                        fairness_delta_b=dfb,
                    )
                    if best is None or abs(example.fairness_delta_a) + abs(
                        example.fairness_delta_b
                    ) > abs(best.fairness_delta_a) + abs(best.fairness_delta_b):
                        best = example
    return best


def _average_configuration(
    a: Configuration, b: Configuration, catalog: ResourceCatalog
) -> Configuration:
    """Round the element-wise mean of two configurations and repair sums.

    Implements the hypothetical "average of the optimal configurations
    for both goals" strategy of Observation 2.
    """
    allocations = {}
    for name in a.resource_names:
        resource = catalog.get(name)
        mean = (np.asarray(a.units(name), dtype=float) + np.asarray(b.units(name))) / 2.0
        units = np.maximum(np.round(mean).astype(int), resource.min_units)
        # Repair the sum by adjusting the jobs with the largest rounding slack.
        diff = resource.units - int(units.sum())
        order = np.argsort(mean - units)  # most under-rounded last
        idx = 0
        while diff != 0:
            j = int(order[-1 - (idx % len(units))]) if diff > 0 else int(order[idx % len(units)])
            if diff > 0:
                units[j] += 1
                diff -= 1
            elif units[j] - 1 >= resource.min_units:
                units[j] -= 1
                diff += 1
            idx += 1
            if idx > 10 * len(units):
                raise ExperimentError("failed to repair averaged configuration")
        allocations[name] = tuple(int(u) for u in units)
    return Configuration(allocations)


def _max_configuration_distance(catalog: ResourceCatalog, n_jobs: int) -> float:
    """Largest possible distance between two configurations (paper: 13).

    Achieved between two single-job-takes-all configurations with
    different beneficiaries: per resource, two coordinates differ by
    ``units - n_jobs * min - ...``; computed exactly by construction.
    """
    total = 0.0
    for resource in catalog:
        spread = resource.units - n_jobs * resource.min_units
        # Donor loses `spread`, receiver gains `spread`.
        total += 2 * float(spread) ** 2
    return float(np.sqrt(total))
