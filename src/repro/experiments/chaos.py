"""Chaos experiment: paired recovery-vs-ablation sweep under fleet weather.

The fleet-level analogue of the resilience experiment: replay *one*
arrival trace under *one* realized fleet-weather timeline (node
crashes, blackouts, stragglers — :mod:`repro.faults.nodes`) twice,
once with the supervised recovery protocol
(:class:`~repro.cluster.RecoveryConfig`) and once with recovery
disabled, and report what the mechanism buys: jobs lost, re-placement
latency, fairness-recovery intervals after each disruption, and the
budget-conservation audit.

Weather pairing is structural, not aspirational: the simulator
realizes each node's :class:`~repro.faults.nodes.NodeFaultSchedule`
from ``derive_seed(seed, "fleet", node_id)`` — a function of the
cluster seed and node id only — so both arms face bit-identical
disruptions and every difference in the report is attributable to the
recovery protocol.

Fairness accounting is *disruption-adjusted*: a job lost to a crash
counts as speedup 0.0 for every epoch it would still have been
resident. Without this, the ablation would look spuriously fair —
killing a job removes it from the surviving-jobs Jain index entirely,
rewarding the arm that loses the most work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster import (
    EVT_JOB_LOST,
    EVT_NODE_DOWN,
    EVT_NODE_QUARANTINED,
    ClusterResult,
    ClusterSimulator,
    RecoveryConfig,
    pool_totals,
)
from repro.engine import ExecutionEngine
from repro.errors import ClusterError
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.faults.nodes import NodeFaultPlan
from repro.metrics.fairness import jain_index
from repro.resources.types import ResourceCatalog
from repro.workloads.arrivals import ArrivalTrace

#: Fairness must regain this fraction of its pre-disruption baseline
#: for an epoch to count as "recovered".
RECOVERY_FRACTION = 0.95


def chaos_fleet_plans(
    n_nodes: int,
    n_epochs: int,
    crash_node: int = 0,
    crash_epoch: Optional[int] = None,
    outage_epochs: Optional[int] = None,
    straggler_node: Optional[int] = None,
    straggler_slowdown: float = 2.0,
) -> Dict[int, NodeFaultPlan]:
    """Deterministic mid-trace disruption plans sized to the trace.

    The crash is a transient blackout (down for ``outage_epochs``,
    then rejoin) rather than a permanent loss, so the before/after
    budget-conservation comparison is meaningful: after the rejoin the
    whole pool is live again and its totals must match construction
    bit-exactly. Defaults put the crash a third of the way in and size
    the outage to a quarter of the trace, clamped so the rejoin lands
    inside the horizon.

    Args:
        n_nodes: fleet size (used only for validation).
        n_epochs: trace horizon the plans must fit inside.
        crash_node: which node crashes.
        crash_epoch: when; default ``n_epochs // 3``.
        outage_epochs: blackout length; default ``max(2, n_epochs // 4)``,
            clamped so ``crash_epoch + outage_epochs <= n_epochs``.
        straggler_node: optional second node that stochastically
            straggles at ``straggler_slowdown`` throughout the trace.
        straggler_slowdown: slowdown factor for the straggler node.
    """
    if not 0 <= crash_node < n_nodes:
        raise ClusterError(
            f"crash_node {crash_node} outside fleet of {n_nodes} node(s)"
        )
    if crash_epoch is None:
        crash_epoch = max(1, n_epochs // 3)
    if not 0 <= crash_epoch < n_epochs:
        raise ClusterError(
            f"crash_epoch {crash_epoch} outside the {n_epochs}-epoch trace"
        )
    if outage_epochs is None:
        outage_epochs = max(2, n_epochs // 4)
    outage_epochs = max(1, min(outage_epochs, n_epochs - crash_epoch))
    plans = {
        crash_node: NodeFaultPlan(
            crash_epoch=crash_epoch, crash_rejoin_epochs=outage_epochs
        )
    }
    if straggler_node is not None:
        if not 0 <= straggler_node < n_nodes:
            raise ClusterError(
                f"straggler_node {straggler_node} outside fleet of "
                f"{n_nodes} node(s)"
            )
        if straggler_node == crash_node:
            raise ClusterError("straggler_node must differ from crash_node")
        plans[straggler_node] = NodeFaultPlan(
            straggler_rate=0.3,
            straggler_epochs=1,
            straggler_slowdown=straggler_slowdown,
        )
    return plans


def adjusted_epoch_fairness(
    result: ClusterResult, trace: ArrivalTrace
) -> Dict[int, float]:
    """Per-epoch Jain fairness with lost jobs counted as speedup 0.0.

    A lost job contributes 0.0 from the epoch it was lost through the
    end of its planned residency — the honest cost of losing it, where
    the raw surviving-jobs index would silently forgive the loss.
    """
    lost_at: Dict[int, int] = {}
    for event in result.fleet_events:
        if event.kind == EVT_JOB_LOST and event.job_id not in lost_at:
            lost_at[event.job_id] = event.epoch
    residency = {job.job_id: job for job in trace.jobs}
    fairness: Dict[int, float] = {}
    for epoch in range(result.n_epochs):
        values: List[float] = []
        for record in result.records:
            if record.epoch == epoch:
                values.extend(record.job_speedups.values())
        for job_id, lost_epoch in lost_at.items():
            job = residency.get(job_id)
            if job is None or epoch < lost_epoch:
                continue
            if job.resident_at(epoch):
                values.append(0.0)
        fairness[epoch] = jain_index(values) if values else float("nan")
    return fairness


def recovery_intervals(
    fairness: Dict[int, float],
    disruption_epochs: Tuple[int, ...],
    fraction: float = RECOVERY_FRACTION,
) -> Dict[int, Optional[int]]:
    """Epochs until fairness regained ``fraction`` of its baseline.

    The baseline is mean fairness over the epochs before the *first*
    disruption (1.0 for a disruption at epoch 0). For each disruption
    epoch ``d`` the value is the smallest ``k >= 0`` with
    ``fairness[d + k] >= fraction * baseline``, or ``None`` if the
    trace ends first — an unrecovered disruption is reported as such,
    not clamped to the horizon.
    """
    if not disruption_epochs:
        return {}
    first = min(disruption_epochs)
    before = [
        value
        for epoch, value in fairness.items()
        if epoch < first and value == value  # skip NaN epochs
    ]
    baseline = sum(before) / len(before) if before else 1.0
    out: Dict[int, Optional[int]] = {}
    for d in sorted(disruption_epochs):
        out[d] = None
        for epoch in sorted(fairness):
            if epoch < d:
                continue
            value = fairness[epoch]
            if value == value and value >= fraction * baseline:
                out[d] = epoch - d
                break
    return out


@dataclass(frozen=True)
class ChaosArm:
    """One arm of the paired sweep (recovery on or off).

    Attributes:
        name: ``"recovery"`` or ``"no_recovery"``.
        result: the full cluster result.
        fairness: disruption-adjusted mean fairness over the trace.
        epoch_fairness: disruption-adjusted per-epoch fairness.
        recovery_intervals: disruption epoch → epochs until fairness
            recovered (``None`` = never within the trace).
        replacement_latency_epochs: mean epochs a displaced job waited
            before re-placement (0.0 when nothing was displaced).
        pool_conserved: live + parked budget totals matched the
            construction-time pool after the run (the simulator also
            audits this every epoch and raises on a leak).
    """

    name: str
    result: ClusterResult
    fairness: float
    epoch_fairness: Dict[int, float]
    recovery_intervals: Dict[int, Optional[int]]
    replacement_latency_epochs: float
    pool_conserved: bool

    @property
    def jobs_lost(self) -> int:
        return len(self.result.jobs_lost)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "jobs_lost": self.jobs_lost,
            "lost_job_ids": list(self.result.jobs_lost),
            "fairness": self.fairness,
            "throughput": self.result.throughput,
            "replacements": self.result.replacements,
            "resurrections": self.result.resurrections,
            "node_downs": self.result.node_downs,
            "node_rejoins": self.result.node_rejoins,
            "quarantines": self.result.quarantines,
            "node_epoch_failures": self.result.node_epoch_failures,
            "replacement_latency_epochs": self.replacement_latency_epochs,
            "recovery_intervals": {
                str(epoch): intervals
                for epoch, intervals in self.recovery_intervals.items()
            },
            "pool_conserved": self.pool_conserved,
            "epoch_fairness": {
                str(epoch): value
                for epoch, value in self.epoch_fairness.items()
            },
        }


@dataclass(frozen=True)
class ChaosReport:
    """The paired chaos sweep: identical weather, recovery on vs off."""

    n_nodes: int
    n_epochs: int
    seed: int
    placement: str
    policy: str
    disruption_epochs: Tuple[int, ...]
    recovery: ChaosArm
    ablation: ChaosArm

    @property
    def arms(self) -> Tuple[ChaosArm, ChaosArm]:
        return (self.recovery, self.ablation)

    def to_dict(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "n_epochs": self.n_epochs,
            "seed": self.seed,
            "placement": self.placement,
            "policy": self.policy,
            "disruption_epochs": list(self.disruption_epochs),
            "arms": {arm.name: arm.to_dict() for arm in self.arms},
        }

    def summary(self) -> str:
        lines = [
            f"chaos sweep: {self.n_nodes} node(s), {self.n_epochs} epoch(s), "
            f"{self.placement}/{self.policy}, "
            f"disruptions at {list(self.disruption_epochs)}",
        ]
        for arm in self.arms:
            intervals = ", ".join(
                f"epoch {epoch}: "
                + ("never" if k is None else f"{k} epoch(s)")
                for epoch, k in sorted(arm.recovery_intervals.items())
            ) or "n/a"
            lines.append(
                f"  {arm.name:<12} jobs lost {arm.jobs_lost}, "
                f"fairness {arm.fairness:.4f}, "
                f"replacements {arm.result.replacements} "
                f"(latency {arm.replacement_latency_epochs:.2f} epochs), "
                f"resurrections {arm.result.resurrections}, "
                f"pool conserved {arm.pool_conserved}; "
                f"recovery: {intervals}"
            )
        return "\n".join(lines)


def _run_arm(
    name: str,
    trace: ArrivalTrace,
    n_nodes: int,
    fleet_plans: Dict[int, NodeFaultPlan],
    placement: str,
    policy: str,
    catalog: ResourceCatalog,
    epoch_config: RunConfig,
    seed: int,
    recovery: Optional[RecoveryConfig],
    engine: ExecutionEngine,
) -> ChaosArm:
    simulator = ClusterSimulator(
        trace,
        n_nodes=n_nodes,
        placement=placement,  # fresh instance per arm (stateful)
        policy=policy,
        catalog=catalog,
        epoch_config=epoch_config,
        seed=seed,
        fleet_plans=fleet_plans,
        recovery=recovery,
        engine=engine,
    )
    result = simulator.run()
    totals = pool_totals(node.budget for node in simulator.nodes)
    fairness = adjusted_epoch_fairness(result, trace)
    disruptions = tuple(
        sorted(
            {
                event.epoch
                for event in result.fleet_events
                if event.kind in (EVT_NODE_DOWN, EVT_NODE_QUARANTINED)
            }
        )
    )
    values = [v for v in fairness.values() if v == v]
    latency = result.displaced_job_epochs / max(1, result.replacements)
    return ChaosArm(
        name=name,
        result=result,
        fairness=sum(values) / len(values) if values else float("nan"),
        epoch_fairness=fairness,
        recovery_intervals=recovery_intervals(fairness, disruptions),
        replacement_latency_epochs=float(latency),
        pool_conserved=totals == simulator.pool,
    )


def chaos_sweep(
    trace: ArrivalTrace,
    n_nodes: int,
    fleet_plans: Dict[int, NodeFaultPlan],
    placement: str = "least_loaded",
    policy: str = "SATORI",
    catalog: Optional[ResourceCatalog] = None,
    epoch_config: Optional[RunConfig] = None,
    seed: int = 0,
    recovery: Optional[RecoveryConfig] = None,
    engine: Optional[ExecutionEngine] = None,
) -> ChaosReport:
    """Run the paired sweep: recovery enabled vs the ablation.

    Both arms share the trace, the seed (hence node-epoch noise *and*
    realized fleet weather), the placement and partitioning policies,
    and the engine (so the run cache deduplicates any node-epochs the
    arms produce identically).

    Args:
        trace: the arrival trace, shared verbatim by both arms.
        n_nodes: fleet size.
        fleet_plans: node id → :class:`NodeFaultPlan` fleet weather
            (see :func:`chaos_fleet_plans`).
        placement / policy: registry ids used in both arms.
        catalog: per-node catalog (homogeneous fleet).
        epoch_config: node-epoch methodology.
        seed: cluster base seed.
        recovery: the recovery protocol for the recovery arm; defaults
            to :class:`RecoveryConfig` with a 1-epoch snapshot cadence.
        engine: shared execution engine.
    """
    if not fleet_plans:
        raise ClusterError("chaos sweep needs at least one fleet fault plan")
    catalog = catalog or experiment_catalog()
    epoch_config = epoch_config or RunConfig(duration_s=5.0)
    engine = engine or ExecutionEngine()
    recovery = recovery or RecoveryConfig()
    common = dict(
        trace=trace,
        n_nodes=n_nodes,
        fleet_plans=fleet_plans,
        placement=placement,
        policy=policy,
        catalog=catalog,
        epoch_config=epoch_config,
        seed=seed,
        engine=engine,
    )
    recovery_arm = _run_arm("recovery", recovery=recovery, **common)
    ablation_arm = _run_arm("no_recovery", recovery=None, **common)
    disruptions = tuple(
        sorted(
            set(recovery_arm.recovery_intervals) | set(ablation_arm.recovery_intervals)
        )
    )
    return ChaosReport(
        n_nodes=n_nodes,
        n_epochs=trace.n_epochs,
        seed=seed,
        placement=placement,
        policy=policy,
        disruption_epochs=disruptions,
        recovery=recovery_arm,
        ablation=ablation_arm,
    )
