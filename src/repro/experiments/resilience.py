"""Resilience experiment: controllers under injected hardware faults.

Beyond-paper robustness study (ROADMAP "hardened control loop"): sweep
a fault-intensity knob and compare three variants on the same mix —

* **SATORI** — the hardened controller (sample validation, watchdog
  fallback, failed-actuation bookkeeping);
* **SATORI (unhardened)** — the identical controller with
  ``hardening=False``, so corrupted samples reach the GP and failed
  installs are attributed to the configuration the controller *asked*
  for rather than the one that stayed installed;
* **EqualPartition** — the static straw man, which cannot be confused
  by faults it never reacts to.

The comparison is *paired*: fault realizations derive from the specs'
environment digest (which excludes the policy), so at each intensity
all three variants face the bit-identical fault timeline — observed
differences are attributable to the controller, not to fault luck.

Faults are confined to the middle third of each run, so every
telemetry trace has a clean pre-fault reference level and a post-fault
tail from which a *time to recover* is measured. Each variant is
scored on **retention**: its faulted score divided by its own
clean-run (intensity 0) score, isolating fault damage from baseline
policy quality.

All runs across variants and intensities are submitted as a single
:class:`~repro.engine.ExecutionEngine` batch with ``on_error="record"``
— a variant that crashes outright under faults is itself a finding,
reported as a failed :class:`VariantOutcome` instead of aborting the
sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import ExecutionEngine, RunError, RunSpec
from repro.errors import ExperimentError
from repro.experiments.comparison import seed_to_int
from repro.experiments.runner import RunConfig, RunResult, experiment_catalog
from repro.faults.plan import FaultPlan
from repro.metrics.goals import GoalSet
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike
from repro.workloads.mixes import JobMix

#: The sweep's variants: (label, registry policy id, policy kwargs).
RESILIENCE_VARIANTS: Tuple[Tuple[str, str, Dict[str, object]], ...] = (
    ("hardened", "SATORI", {}),
    ("unhardened", "SATORI", {"hardening": False}),
    ("static", "EqualPartition", {}),
)

#: Default intensity grid; 0.0 (the clean reference) is always included.
DEFAULT_INTENSITIES = (0.0, 0.25, 0.5, 1.0)

#: A trace counts as recovered once its rolling throughput regains this
#: fraction of the pre-fault level.
RECOVERY_THRESHOLD = 0.9

#: Rolling-mean window (intervals) for the recovery detector; smooths
#: single-interval noise without hiding sustained degradation.
RECOVERY_WINDOW = 5


def moderate_fault_plan(intensity: float, duration_s: float) -> Optional[FaultPlan]:
    """A mixed fault plan over the middle third of a run.

    ``intensity`` in ``[0, 1]`` scales every fault family's rate
    linearly; ``1.0`` is a rough, aggressive regime (every other
    interval fails its install, frequent corrupted samples, occasional
    crashes) while ``0.0`` returns ``None`` — a clean run.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ExperimentError(f"fault intensity must be in [0, 1], got {intensity}")
    if intensity == 0.0:
        return None
    return FaultPlan(
        start_s=duration_s / 3.0,
        end_s=2.0 * duration_s / 3.0,
        actuation_fail_rate=0.5 * intensity,
        actuation_fail_attempts=2,
        actuation_outage_rate=0.1 * intensity,
        actuation_outage_duration_s=1.0,
        sample_drop_rate=0.15 * intensity,
        sample_nan_rate=0.1 * intensity,
        sample_stuck_rate=0.1 * intensity,
        sample_outlier_rate=0.15 * intensity,
        crash_rate=0.05 * intensity,
        crash_restart_s=1.0,
        hang_rate=0.05 * intensity,
        hang_duration_s=0.5,
    )


@dataclass(frozen=True)
class VariantOutcome:
    """One (variant, intensity) cell of the resilience sweep.

    Attributes:
        variant: sweep label (``"hardened"`` / ``"unhardened"`` /
            ``"static"``).
        policy: registry policy id the cell ran.
        intensity: fault intensity in ``[0, 1]``.
        failed: the run raised instead of finishing (engine
            :class:`~repro.engine.RunError`); all scores are NaN.
        error: the failure description when ``failed``.
        throughput / fairness: the run's scored means.
        throughput_retention / fairness_retention: score divided by the
            same variant's clean-run score (1.0 = no degradation).
        recovery_time_s: seconds after the last fault until the rolling
            throughput regained :data:`RECOVERY_THRESHOLD` of the
            pre-fault level; ``0.0`` if it never dipped, ``inf`` if it
            never recovered, ``None`` for clean runs.
    """

    variant: str
    policy: str
    intensity: float
    failed: bool = False
    error: Optional[str] = None
    throughput: float = math.nan
    fairness: float = math.nan
    throughput_retention: float = math.nan
    fairness_retention: float = math.nan
    recovery_time_s: Optional[float] = None


@dataclass(frozen=True)
class ResilienceResult:
    """The full sweep: one :class:`VariantOutcome` per cell."""

    mix_label: str
    intensities: Tuple[float, ...]
    outcomes: Tuple[VariantOutcome, ...]

    def variant(self, name: str) -> List[VariantOutcome]:
        """One variant's outcomes ordered by intensity."""
        rows = [o for o in self.outcomes if o.variant == name]
        if not rows:
            have = sorted({o.variant for o in self.outcomes})
            raise ExperimentError(f"no outcomes for variant {name!r}; have {have}")
        return sorted(rows, key=lambda o: o.intensity)

    def cell(self, name: str, intensity: float) -> VariantOutcome:
        """The outcome for one (variant, intensity) pair."""
        for outcome in self.variant(name):
            if outcome.intensity == intensity:
                return outcome
        raise ExperimentError(
            f"variant {name!r} has no intensity {intensity}; have {self.intensities}"
        )


def recovery_time_s(result: RunResult) -> Optional[float]:
    """Time from the last injected fault until throughput recovers.

    Reads the run's ``faults_active`` telemetry trail (present whenever
    the run had a fault schedule). The pre-fault reference is the mean
    throughput before the first fault-active interval; recovery is the
    first post-fault time where the :data:`RECOVERY_WINDOW`-interval
    rolling mean regains :data:`RECOVERY_THRESHOLD` of that reference.

    Returns ``None`` for clean runs (no trail or no fault ever
    active), ``0.0`` when throughput never dipped below the threshold,
    and ``inf`` when the run ends still degraded.
    """
    telemetry = result.telemetry
    try:
        active = telemetry.series("faults_active")
    except ExperimentError:
        return None
    faulted = np.asarray(active) > 0
    if not faulted.any():
        return None
    times = telemetry.series("time")
    throughput = telemetry.series("throughput")
    first = int(np.argmax(faulted))
    last = len(faulted) - 1 - int(np.argmax(faulted[::-1]))
    pre = throughput[:first] if first > 0 else throughput[: first + 1]
    target = RECOVERY_THRESHOLD * float(np.mean(pre))
    for i in range(last + 1, len(throughput)):
        lo = max(last + 1, i - RECOVERY_WINDOW + 1)
        if float(np.mean(throughput[lo : i + 1])) >= target:
            return float(times[i] - times[last])
    return math.inf


def resilience_specs(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    seed: SeedLike = 0,
) -> List[Tuple[str, float, RunSpec]]:
    """The sweep's ``(variant, intensity, spec)`` cells.

    Intensity ``0.0`` is forced into the grid: every variant needs its
    own clean reference for retention scoring. All specs share one base
    seed, so the clean runs double as cache-shared references for any
    other driver using the same methodology.
    """
    catalog = catalog or experiment_catalog()
    run_config = run_config or RunConfig()
    goals = goals or GoalSet()
    levels = sorted({float(level) for level in intensities} | {0.0})
    seed_int = seed_to_int(seed)
    cells: List[Tuple[str, float, RunSpec]] = []
    for variant, policy, kwargs in RESILIENCE_VARIANTS:
        for level in levels:
            spec = RunSpec(
                mix=mix,
                policy=policy,
                catalog=catalog,
                policy_kwargs=dict(kwargs),
                run_config=run_config,
                goals=(goals.throughput_metric, goals.fairness_metric),
                seed=seed_int,
                fault_plan=moderate_fault_plan(level, run_config.duration_s),
            )
            cells.append((variant, level, spec))
    return cells


def resilience_sweep(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    seed: SeedLike = 0,
    engine: Optional[ExecutionEngine] = None,
) -> ResilienceResult:
    """Sweep fault intensity across the resilience variants on one mix.

    All cells are submitted as one engine batch with
    ``on_error="record"`` so a variant that dies under faults shows up
    as a failed :class:`VariantOutcome` rather than aborting the sweep.

    Args:
        engine: execution engine; defaults to a fresh serial engine.
            Pass a parallel/cached one to fan the grid out.
    """
    engine = engine or ExecutionEngine()
    cells = resilience_specs(mix, catalog, run_config, goals, intensities, seed)
    results = engine.run([spec for _, _, spec in cells], on_error="record")

    clean: Dict[str, RunResult] = {}
    for (variant, level, _), result in zip(cells, results):
        if level == 0.0 and isinstance(result, RunResult):
            clean[variant] = result

    outcomes: List[VariantOutcome] = []
    for (variant, level, spec), result in zip(cells, results):
        if isinstance(result, RunError):
            outcomes.append(
                VariantOutcome(
                    variant=variant,
                    policy=spec.policy,
                    intensity=level,
                    failed=True,
                    error=result.error,
                )
            )
            continue
        reference = clean.get(variant)
        outcomes.append(
            VariantOutcome(
                variant=variant,
                policy=spec.policy,
                intensity=level,
                throughput=result.throughput,
                fairness=result.fairness,
                throughput_retention=_retention(result.throughput, reference, "throughput"),
                fairness_retention=_retention(result.fairness, reference, "fairness"),
                recovery_time_s=recovery_time_s(result),
            )
        )
    levels = tuple(sorted({level for _, level, _ in cells}))
    return ResilienceResult(mix_label=mix.label, intensities=levels, outcomes=tuple(outcomes))


def _retention(value: float, reference: Optional[RunResult], attribute: str) -> float:
    """``value`` as a fraction of the clean reference's score."""
    if reference is None:
        return math.nan
    baseline = getattr(reference, attribute)
    if not np.isfinite(baseline) or baseline <= 0:
        return math.nan
    return float(value / baseline)
