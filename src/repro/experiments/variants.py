"""Single-goal SATORI variants vs their oracles (Fig. 7's right half).

Sec. IV defines Throughput SATORI (W_T=1, W_F=0) and Fairness SATORI
(W_T=0, W_F=1) "to quantify the limits of SATORI when optimizing a
single goal". Fig. 7 shows each variant exceeding full SATORI on its
own goal and approaching the corresponding single-goal Oracle.

All six runs (three SATORI modes, three Oracle weightings) are one
engine batch; the SATORI mode and the Oracle weights are policy kwargs
in the run specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine import ExecutionEngine, RunSpec
from repro.metrics.goals import GoalSet
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike
from repro.experiments.comparison import seed_to_int
from repro.experiments.runner import RunConfig, RunResult, experiment_catalog
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class VariantLimitsResult:
    """Full SATORI, single-goal variants, and the three oracles on one mix."""

    mix_label: str
    satori: RunResult
    throughput_satori: RunResult
    fairness_satori: RunResult
    balanced_oracle: RunResult
    throughput_oracle: RunResult
    fairness_oracle: RunResult

    @property
    def throughput_variant_ratio(self) -> float:
        """Throughput SATORI's throughput as a fraction of its oracle's."""
        return self.throughput_satori.throughput / max(
            self.throughput_oracle.throughput, 1e-12
        )

    @property
    def fairness_variant_ratio(self) -> float:
        """Fairness SATORI's fairness as a fraction of its oracle's."""
        return self.fairness_satori.fairness / max(self.fairness_oracle.fairness, 1e-12)


def single_goal_limits(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    engine: Optional[ExecutionEngine] = None,
) -> VariantLimitsResult:
    """Run all SATORI variants and all Oracle variants on one mix."""
    catalog = catalog or experiment_catalog()
    run_config = run_config or RunConfig()
    goals = goals or GoalSet()
    engine = engine or ExecutionEngine()

    base = dict(
        mix=mix,
        catalog=catalog,
        run_config=run_config,
        goals=(goals.throughput_metric, goals.fairness_metric),
        seed=seed_to_int(seed),
    )

    def satori(mode: str) -> RunSpec:
        return RunSpec(policy="SATORI", policy_kwargs={"mode": mode}, **base)

    def oracle(w_t: float, w_f: float) -> RunSpec:
        return RunSpec(
            policy="Oracle",
            policy_kwargs={"w_throughput": w_t, "w_fairness": w_f},
            **base,
        )

    results = engine.run(
        [
            satori("dynamic"),
            satori("throughput"),
            satori("fairness"),
            oracle(0.5, 0.5),
            oracle(1.0, 0.0),
            oracle(0.0, 1.0),
        ]
    )
    return VariantLimitsResult(
        mix_label=mix.label,
        satori=results[0],
        throughput_satori=results[1],
        fairness_satori=results[2],
        balanced_oracle=results[3],
        throughput_oracle=results[4],
        fairness_oracle=results[5],
    )
