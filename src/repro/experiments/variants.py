"""Single-goal SATORI variants vs their oracles (Fig. 7's right half).

Sec. IV defines Throughput SATORI (W_T=1, W_F=0) and Fairness SATORI
(W_T=0, W_F=1) "to quantify the limits of SATORI when optimizing a
single goal". Fig. 7 shows each variant exceeding full SATORI on its
own goal and approaching the corresponding single-goal Oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.controller import SatoriController
from repro.metrics.goals import GoalSet
from repro.policies.oracle import OraclePolicy, OracleSearch
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.experiments.comparison import full_space
from repro.experiments.runner import RunConfig, RunResult, experiment_catalog, run_policy
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class VariantLimitsResult:
    """Full SATORI, single-goal variants, and the three oracles on one mix."""

    mix_label: str
    satori: RunResult
    throughput_satori: RunResult
    fairness_satori: RunResult
    balanced_oracle: RunResult
    throughput_oracle: RunResult
    fairness_oracle: RunResult

    @property
    def throughput_variant_ratio(self) -> float:
        """Throughput SATORI's throughput as a fraction of its oracle's."""
        return self.throughput_satori.throughput / max(
            self.throughput_oracle.throughput, 1e-12
        )

    @property
    def fairness_variant_ratio(self) -> float:
        """Fairness SATORI's fairness as a fraction of its oracle's."""
        return self.fairness_satori.fairness / max(self.fairness_oracle.fairness, 1e-12)


def single_goal_limits(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
) -> VariantLimitsResult:
    """Run all SATORI variants and all Oracle variants on one mix."""
    catalog = catalog or experiment_catalog()
    goals = goals or GoalSet()
    rng = make_rng(seed)
    space = full_space(catalog, len(mix))
    search = OracleSearch(mix, catalog, goals)

    def satori(mode: str) -> RunResult:
        controller = SatoriController(space, goals, mode=mode, rng=spawn_rng(rng))
        return run_policy(controller, mix, catalog, run_config, goals, seed=spawn_rng(rng))

    def oracle(w_t: float, w_f: float) -> RunResult:
        policy = OraclePolicy(search, w_t, w_f)
        return run_policy(policy, mix, catalog, run_config, goals, seed=spawn_rng(rng))

    return VariantLimitsResult(
        mix_label=mix.label,
        satori=satori("dynamic"),
        throughput_satori=satori("throughput"),
        fairness_satori=satori("fairness"),
        balanced_oracle=oracle(0.5, 0.5),
        throughput_oracle=oracle(1.0, 0.0),
        fairness_oracle=oracle(0.0, 1.0),
    )
