"""SATORI-internals experiments (Figs. 14, 17, 18, 19).

These drivers open up the controller: the dynamic weight traces and
their equalization/prioritization decomposition (Fig. 14(a)), dynamic
versus static weighting (Fig. 14(b)), objective-function values and
proxy-model stability with and without dynamic prioritization
(Fig. 17), observed-performance variation (Fig. 18), and the
weaker-goal-versus-stronger-goal prioritization ablation (Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.controller import SatoriController
from repro.metrics.goals import GoalSet
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.experiments.comparison import full_space
from repro.experiments.runner import RunConfig, RunResult, experiment_catalog, run_policy
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class WeightTrace:
    """Fig. 14(a): weight components over time."""

    times: np.ndarray
    w_throughput: np.ndarray
    w_fairness: np.ndarray
    equalization_throughput: np.ndarray
    equalization_fairness: np.ndarray
    prioritization_throughput: np.ndarray
    prioritization_fairness: np.ndarray

    def mean_weights(self) -> Tuple[float, float]:
        return float(np.nanmean(self.w_throughput)), float(np.nanmean(self.w_fairness))

    def max_deviation_from_equal(self) -> float:
        """Largest deviation of either weight from 0.5 (paper: up to 50 %)."""
        return float(
            max(
                np.nanmax(np.abs(self.w_throughput - 0.5)),
                np.nanmax(np.abs(self.w_fairness - 0.5)),
            )
        )


def weight_trace(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    **satori_kwargs,
) -> Tuple[WeightTrace, RunResult]:
    """Run full SATORI and extract the Fig. 14(a) weight decomposition."""
    catalog = catalog or experiment_catalog()
    rng = make_rng(seed)
    satori = SatoriController(
        full_space(catalog, len(mix)), goals, mode="dynamic", rng=spawn_rng(rng), **satori_kwargs
    )
    result = run_policy(satori, mix, catalog, run_config, goals, seed=spawn_rng(rng))
    telemetry = result.telemetry
    trace = WeightTrace(
        times=telemetry.series("time"),
        w_throughput=telemetry.series("weight_throughput"),
        w_fairness=telemetry.series("weight_fairness"),
        equalization_throughput=telemetry.series("weight_eq_throughput"),
        equalization_fairness=telemetry.series("weight_eq_fairness"),
        prioritization_throughput=telemetry.series("weight_pr_throughput"),
        prioritization_fairness=telemetry.series("weight_pr_fairness"),
    )
    return trace, result


@dataclass(frozen=True)
class VariantComparison:
    """Two SATORI variants on the same mix (Figs. 14(b), 17, 18, 19)."""

    mix_label: str
    dynamic: RunResult
    other: RunResult
    other_label: str

    @property
    def throughput_gain_percent(self) -> float:
        return 100.0 * (self.dynamic.throughput / max(self.other.throughput, 1e-12) - 1.0)

    @property
    def fairness_gain_percent(self) -> float:
        return 100.0 * (self.dynamic.fairness / max(self.other.fairness, 1e-12) - 1.0)


def _run_variant(
    mix: JobMix,
    catalog: ResourceCatalog,
    run_config: Optional[RunConfig],
    goals: Optional[GoalSet],
    seed: SeedLike,
    **satori_kwargs,
) -> Tuple[RunResult, SatoriController]:
    rng = make_rng(seed)
    controller = SatoriController(
        full_space(catalog, len(mix)), goals, rng=spawn_rng(rng), **satori_kwargs
    )
    result = run_policy(controller, mix, catalog, run_config, goals, seed=spawn_rng(rng))
    return result, controller


def dynamic_vs_static(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
) -> VariantComparison:
    """Fig. 14(b): full SATORI vs SATORI with static 0.5/0.5 weights.

    Both variants see identical measurement-noise streams (same seed),
    so the difference is attributable to dynamic prioritization.
    """
    catalog = catalog or experiment_catalog()
    dynamic, _ = _run_variant(mix, catalog, run_config, goals, seed, mode="dynamic")
    static, _ = _run_variant(mix, catalog, run_config, goals, seed, mode="static")
    return VariantComparison(
        mix_label=mix.label, dynamic=dynamic, other=static, other_label="static weights"
    )


@dataclass(frozen=True)
class ObjectiveTraces:
    """Fig. 17: objective values and proxy-model change over time."""

    times: np.ndarray
    dynamic_objective: np.ndarray
    static_objective: np.ndarray
    dynamic_proxy_change: np.ndarray
    static_proxy_change: np.ndarray

    def mean_objective_gain(self) -> float:
        """Mean advantage of the dynamic objective value (Fig. 17(a))."""
        return float(np.nanmean(self.dynamic_objective) - np.nanmean(self.static_objective))

    def proxy_change_ranges(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """(min, max) proxy-model change for dynamic and static (Fig. 17(b))."""
        dyn = self.dynamic_proxy_change[~np.isnan(self.dynamic_proxy_change)]
        sta = self.static_proxy_change[~np.isnan(self.static_proxy_change)]
        return (float(dyn.min()), float(dyn.max())), (float(sta.min()), float(sta.max()))


def objective_trace(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
) -> ObjectiveTraces:
    """Fig. 17: run dynamic and static SATORI, collect internals."""
    catalog = catalog or experiment_catalog()
    # Disable idle skipping so the proxy model updates every interval
    # (Fig. 17 characterizes the BO engine itself).
    dynamic, _ = _run_variant(
        mix, catalog, run_config, goals, seed, mode="dynamic", idle_detection=False
    )
    static, _ = _run_variant(
        mix, catalog, run_config, goals, seed, mode="static", idle_detection=False
    )
    return ObjectiveTraces(
        times=dynamic.telemetry.series("time"),
        dynamic_objective=dynamic.telemetry.series("objective"),
        static_objective=static.telemetry.series("objective"),
        dynamic_proxy_change=dynamic.telemetry.series("proxy_change_percent"),
        static_proxy_change=static.telemetry.series("proxy_change_percent"),
    )


@dataclass(frozen=True)
class VariationResult:
    """Fig. 18: variation of observed performance for both variants."""

    dynamic_throughput_std: float
    static_throughput_std: float
    dynamic_fairness_std: float
    static_fairness_std: float
    dynamic_means: Tuple[float, float]
    static_means: Tuple[float, float]


def performance_variation(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
) -> VariationResult:
    """Fig. 18: observed-performance variation, dynamic vs static."""
    comparison = dynamic_vs_static(mix, catalog, run_config, goals, seed)
    dyn = comparison.dynamic.scored
    sta = comparison.other.scored
    return VariationResult(
        dynamic_throughput_std=float(np.std(dyn.series("throughput"))),
        static_throughput_std=float(np.std(sta.series("throughput"))),
        dynamic_fairness_std=float(np.std(dyn.series("fairness"))),
        static_fairness_std=float(np.std(sta.series("fairness"))),
        dynamic_means=(dyn.mean_throughput(), dyn.mean_fairness()),
        static_means=(sta.mean_throughput(), sta.mean_fairness()),
    )


def weak_goal_priority(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
) -> VariantComparison:
    """Fig. 19: prioritize the weaker goal (SATORI) vs the stronger one.

    The paper measured the favor-the-stronger alternative to
    underperform the chosen design by roughly 5 %.
    """
    catalog = catalog or experiment_catalog()
    weaker, _ = _run_variant(
        mix, catalog, run_config, goals, seed, mode="dynamic", favor_weaker_goal=True
    )
    stronger, _ = _run_variant(
        mix, catalog, run_config, goals, seed, mode="dynamic", favor_weaker_goal=False
    )
    return VariantComparison(
        mix_label=mix.label, dynamic=weaker, other=stronger, other_label="favor stronger goal"
    )
