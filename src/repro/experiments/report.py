"""One-shot reproduction report: run the experiments, emit markdown.

``generate_report`` orchestrates a configurable subset of the paper's
experiments and renders a self-contained markdown report with tables
and terminal charts — the quickest way to regenerate the headline
results end to end (the benchmark suite remains the per-figure ground
truth). Driven by ``python -m repro report``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.plots import bar_chart, sparkline
from repro.engine import ExecutionEngine, RunCache
from repro.errors import ExperimentError
from repro.experiments.characterization import conflicting_goal_gap, optimal_configuration_drift
from repro.experiments.comparison import (
    STANDARD_POLICY_ORDER,
    aggregate,
    compare_on_mixes,
)
from repro.experiments.internals import dynamic_vs_static, weight_trace
from repro.experiments.overhead import controller_overhead
from repro.experiments.reporting import format_table
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.workloads.mixes import suite_mixes


@dataclass
class ReportConfig:
    """What the report covers and at which scale."""

    suite: str = "parsec"
    n_mixes: int = 4
    duration_s: float = 20.0
    units: int = 8
    seed: int = 0
    workers: int = 1
    cache_dir: Optional[str] = None
    sections: Sequence[str] = (
        "characterization",
        "comparison",
        "dynamics",
        "overhead",
    )

    def make_engine(self) -> ExecutionEngine:
        """The engine the report's batched experiments run on."""
        cache = RunCache(self.cache_dir) if self.cache_dir else None
        return ExecutionEngine(workers=self.workers, cache=cache)

    def __post_init__(self) -> None:
        known = {"characterization", "comparison", "dynamics", "overhead"}
        unknown = set(self.sections) - known
        if unknown:
            raise ExperimentError(f"unknown report sections {sorted(unknown)}; known: {sorted(known)}")
        if self.n_mixes < 1:
            raise ExperimentError("need at least one mix")


def generate_report(config: Optional[ReportConfig] = None) -> str:
    """Run the configured experiments and return the markdown report."""
    config = config or ReportConfig()
    catalog = experiment_catalog(config.units)
    all_mixes = suite_mixes(config.suite)
    stride = max(1, len(all_mixes) // config.n_mixes)
    mixes = all_mixes[::stride][: config.n_mixes]
    run_config = RunConfig(duration_s=config.duration_s)
    engine = config.make_engine()

    started = time.perf_counter()
    parts: List[str] = [
        "# SATORI reproduction report",
        "",
        f"- suite: **{config.suite}** ({len(mixes)} mixes)",
        f"- scale: {config.units} units/resource, {config.duration_s:.0f} s runs, seed {config.seed}",
        "",
    ]

    if "characterization" in config.sections:
        parts.append(_characterization_section(mixes[0], catalog))
    if "comparison" in config.sections:
        parts.append(_comparison_section(mixes, catalog, run_config, config.seed, engine))
    if "dynamics" in config.sections:
        parts.append(_dynamics_section(mixes[-1], catalog, run_config, config.seed))
    if "overhead" in config.sections:
        parts.append(_overhead_section(mixes[0], catalog, config.seed))

    elapsed = time.perf_counter() - started
    parts.append(
        f"\n---\n*generated in {elapsed:.1f} s of wall time; "
        f"engine: {engine.stats.summary()} ({engine.workers} worker(s))*"
    )
    return "\n".join(parts)


def _characterization_section(mix, catalog) -> str:
    drift = optimal_configuration_drift(mix, catalog, duration_s=12.0, step_s=0.5)
    gap = conflicting_goal_gap(mix, catalog)
    lines = [
        "## Why partitioning is hard (Sec. II)",
        "",
        f"Mix `{mix.label}`:",
        "",
        f"- the throughput-optimal configuration visits "
        f"**{drift.n_distinct_configs()} distinct configurations** in 12 s "
        f"(max per-job share swing {drift.max_share_change_percent():.0f} %-points);",
        f"- the throughput-optimal config reaches only "
        f"**{100 * gap.cross_fairness_ratio:.0f} %** of the optimal fairness, the "
        f"fairness-optimal config only **{100 * gap.cross_throughput_ratio:.0f} %** "
        "of the optimal throughput;",
        f"- the two optima sit {gap.config_distance:.1f} apart "
        f"(max possible {gap.max_distance:.1f}).",
        "",
    ]
    return "\n".join(lines)


def _comparison_section(mixes, catalog, run_config, seed, engine=None) -> str:
    comparisons = compare_on_mixes(mixes, catalog, run_config, seed=seed, engine=engine)
    agg = aggregate(comparisons, STANDARD_POLICY_ORDER)
    rows = [[name, t, f] for name, (t, f) in agg.items()]
    chart = bar_chart(
        list(agg),
        [t for (t, _f) in agg.values()],
        width=40,
        unit="%",
        max_value=100.0,
    )
    lines = [
        "## Policy comparison (Figs. 7/8 style)",
        "",
        "Mean % of the Balanced Oracle:",
        "",
        "```",
        format_table(["policy", "throughput %", "fairness %"], rows),
        "",
        "throughput:",
        chart,
        "```",
        "",
    ]
    return "\n".join(lines)


def _dynamics_section(mix, catalog, run_config, seed) -> str:
    trace, _result = weight_trace(mix, catalog, run_config, seed=seed)
    comparison = dynamic_vs_static(mix, catalog, run_config, seed=seed)
    w = trace.w_throughput[~np.isnan(trace.w_throughput)]
    lines = [
        "## Dynamic goal prioritization (Fig. 14 style)",
        "",
        f"Mix `{mix.label}`:",
        "",
        "```",
        f"W_T over time: {sparkline(w[:: max(1, len(w) // 64)], lo=0.25, hi=0.75)}",
        f"(bounds 0.25-0.75; long-term mean {trace.mean_weights()[0]:.3f})",
        "```",
        "",
        f"- dynamic vs static weights: {comparison.throughput_gain_percent:+.1f} % "
        f"throughput, {comparison.fairness_gain_percent:+.1f} % fairness.",
        "",
    ]
    return "\n".join(lines)


def _overhead_section(mix, catalog, seed) -> str:
    result = controller_overhead(mix, catalog, RunConfig(duration_s=10.0), seed=seed)
    lines = [
        "## Controller overhead (Sec. V)",
        "",
        f"- mean decision time: **{result.mean_decision_time_ms:.2f} ms** of each "
        f"{result.control_interval_ms:.0f} ms interval "
        f"({100 * result.decision_fraction_of_interval:.1f} %), off the critical path;",
        f"- idle (BO skipped) on {100 * result.idle_fraction:.0f} % of intervals.",
        "",
    ]
    return "\n".join(lines)
