"""Plain-text table formatting for the reproduction harness.

Benchmarks print the same rows/series the paper's figures report;
this module renders them as aligned monospace tables.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 1) -> str:
    """Render one cell; floats get fixed precision."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 1,
    title: str = "",
) -> str:
    """Render an aligned monospace table with a separator under headers."""
    str_rows: List[List[str]] = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def format_series(label: str, values: Sequence[float], precision: int = 3, limit: int = 12) -> str:
    """Render a (possibly subsampled) numeric series on one line."""
    values = list(values)
    if len(values) > limit:
        stride = max(1, len(values) // limit)
        values = values[::stride][:limit]
        suffix = f"  (every {stride}th of {len(values) * stride})"
    else:
        suffix = ""
    body = " ".join(f"{v:.{precision}f}" for v in values)
    return f"{label}: {body}{suffix}"
