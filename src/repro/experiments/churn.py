"""Workload-churn adaptation experiment (Sec. III-C claim).

"Be it a phase change or a change in the workload mixes, SATORI
requires no further initialization. It adaptively configures itself to
find the optimal configuration." This driver tests exactly that: run
SATORI on a mix, swap one job for a different workload halfway
through, and measure how quickly performance recovers relative to the
(re-computed) Balanced Oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.controller import SatoriController
from repro.errors import ExperimentError
from repro.metrics.goals import GoalSet
from repro.policies.oracle import OracleSearch
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.system.session import ControlSession
from repro.system.simulation import CoLocationSimulator
from repro.system.telemetry import TelemetryLog
from repro.experiments.comparison import full_space
from repro.experiments.runner import experiment_catalog
from repro.workloads.mixes import JobMix
from repro.workloads.model import Workload


@dataclass(frozen=True)
class ChurnResult:
    """SATORI's behaviour across a mid-run workload swap."""

    mix_label: str
    newcomer: str
    swap_time_s: float
    telemetry: TelemetryLog
    #: mean weighted objective ratio vs oracle in the window before the swap.
    before_ratio: float
    #: same, in the disturbed window right after the swap.
    disturbance_ratio: float
    #: same, at the end of the run (recovered level).
    recovered_ratio: float

    @property
    def recovers(self) -> bool:
        """Did SATORI re-converge to (near) its pre-swap optimality?

        The pre-swap window is itself a noisy estimate (a lucky
        window can sit a few points above the true steady level), so
        recovery tolerates a 0.10 ratio gap — well below the drop a
        genuinely failed re-convergence produces.
        """
        return self.recovered_ratio >= self.before_ratio - 0.10


def workload_churn(
    mix: JobMix,
    newcomer: Workload,
    swap_index: int = 0,
    catalog: Optional[ResourceCatalog] = None,
    duration_s: float = 30.0,
    swap_time_s: Optional[float] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    window_s: float = 4.0,
) -> ChurnResult:
    """Swap ``mix[swap_index]`` for ``newcomer`` mid-run under SATORI.

    The oracle reference is evaluated against whichever mix is active
    at each instant, so the reported ratios compare SATORI to the best
    achievable *for the current workloads*.
    """
    catalog = catalog or experiment_catalog()
    goals = goals or GoalSet()
    if swap_time_s is None:
        swap_time_s = duration_s / 2.0
    if not 0 < swap_time_s < duration_s:
        raise ExperimentError("swap time must fall inside the run")
    if newcomer.name in mix.names:
        raise ExperimentError(f"{newcomer.name!r} is already part of the mix")

    rng = make_rng(seed)
    simulator = CoLocationSimulator(mix, catalog, seed=spawn_rng(rng))
    controller = SatoriController(full_space(catalog, len(mix)), goals, rng=spawn_rng(rng))
    # The churn driver manages baselines itself (re-measured on the
    # swap, never periodically), and historically recorded the SATORI
    # weights only in telemetry ``extra`` — both preserved here.
    session = ControlSession(controller, simulator, goals=goals, record_weights=False)
    telemetry = session.telemetry

    searches = {
        "before": OracleSearch(mix, catalog, goals),
        "after": None,  # built lazily after the swap
    }

    swapped = False
    n_steps = round(duration_s / simulator.control_interval_s)
    oracle_ratio = []

    for step in range(n_steps):
        raw = session.step()
        if not swapped and raw.time_s >= swap_time_s:
            simulator.replace_workload(swap_index, newcomer)
            searches["after"] = OracleSearch(simulator.mix, catalog, goals)
            session.refresh_baseline()
            swapped = True
        search = searches["after"] if swapped else searches["before"]
        best = search.best(raw.time_s, 0.5, 0.5)
        achieved = telemetry[-1].scores.weighted(0.5, 0.5)
        oracle_ratio.append(achieved / max(best.objective, 1e-12))

    ratios = np.asarray(oracle_ratio)
    interval = simulator.control_interval_s
    window = max(1, round(window_s / interval))
    swap_step = round(swap_time_s / interval)

    return ChurnResult(
        mix_label=mix.label,
        newcomer=newcomer.name,
        swap_time_s=swap_time_s,
        telemetry=telemetry,
        before_ratio=float(np.mean(ratios[max(0, swap_step - window) : swap_step])),
        disturbance_ratio=float(np.mean(ratios[swap_step : swap_step + window])),
        recovered_ratio=float(np.mean(ratios[-window:])),
    )
