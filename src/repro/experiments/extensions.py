"""Extension experiments beyond the paper's main evaluation.

The conclusion claims SATORI "can effectively handle computing cores,
LLC ways, memory bandwidth, and **power-cap** resources"; Sec. III
claims the objective is extensible to more goals. These drivers
exercise both claims:

* :func:`power_capped_partitioning` — a four-resource configuration
  space (cores + LLC + bandwidth + RAPL power units). SATORI
  partitions all four jointly; the comparison shows it recovers the
  performance lost to an aggressive package power cap better than a
  power-oblivious equal split.
* :func:`metric_sweep` — re-runs a comparison under alternative
  throughput/fairness metric choices (Sec. IV: "SATORI provides
  similar improvements over competing techniques for other
  commonly-used objective metrics").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.controller import SatoriController
from repro.metrics.goals import GoalSet
from repro.policies.static import EqualPartitionPolicy
from repro.resources.space import ConfigurationSpace
from repro.resources.types import (
    CORES,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    POWER,
    Resource,
    ResourceCatalog,
    ResourceKind,
)
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.experiments.comparison import compare_on_mix, full_space
from repro.experiments.runner import RunConfig, RunResult, experiment_catalog, run_policy
from repro.workloads.mixes import JobMix


def power_catalog(units: int = 8, power_units: int = 8) -> ResourceCatalog:
    """A four-resource catalog: the experiment catalog plus RAPL units."""
    base = experiment_catalog(units)
    resources = list(base)
    resources.append(
        Resource(ResourceKind.POWER, power_units, unit_capacity=85.0 / power_units)
    )
    return ResourceCatalog(resources)


@dataclass(frozen=True)
class PowerExtensionResult:
    """SATORI with and without power partitioning under a power cap."""

    mix_label: str
    satori_four_resource: RunResult
    equal_partition: RunResult

    @property
    def throughput_gain_percent(self) -> float:
        return 100.0 * (
            self.satori_four_resource.throughput / max(self.equal_partition.throughput, 1e-12)
            - 1.0
        )

    @property
    def fairness_gain_percent(self) -> float:
        return 100.0 * (
            self.satori_four_resource.fairness / max(self.equal_partition.fairness, 1e-12) - 1.0
        )


def power_capped_partitioning(
    mix: JobMix,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    units: int = 8,
) -> PowerExtensionResult:
    """Partition four resources (incl. power) with SATORI.

    Both policies run on the same power-constrained server; the
    comparison isolates the value of *managing* the power budget
    jointly with the other resources.
    """
    catalog = power_catalog(units)
    rng = make_rng(seed)
    space = ConfigurationSpace(catalog, len(mix))

    satori = SatoriController(space, goals, rng=spawn_rng(rng))
    satori_result = run_policy(satori, mix, catalog, run_config, goals, seed=spawn_rng(rng))

    equal = EqualPartitionPolicy(space, goals)
    equal_result = run_policy(equal, mix, catalog, run_config, goals, seed=spawn_rng(rng))

    return PowerExtensionResult(
        mix_label=mix.label,
        satori_four_resource=satori_result,
        equal_partition=equal_result,
    )


def metric_sweep(
    mix: JobMix,
    run_config: Optional[RunConfig] = None,
    seed: SeedLike = 0,
    throughput_metrics: Sequence[str] = ("sum_ips", "geometric_mean", "harmonic_mean"),
    fairness_metrics: Sequence[str] = ("jain", "one_minus_cov"),
    include: Sequence[str] = ("PARTIES", "SATORI"),
) -> Dict[Tuple[str, str], Dict[str, Tuple[float, float]]]:
    """SATORI-vs-baseline comparison under every metric combination.

    Returns:
        mapping ``(throughput_metric, fairness_metric)`` to a mapping
        of policy name to its (throughput %, fairness %) of the
        Balanced Oracle under those metrics.
    """
    catalog = experiment_catalog()
    rng = make_rng(seed)
    results: Dict[Tuple[str, str], Dict[str, Tuple[float, float]]] = {}
    for throughput_metric in throughput_metrics:
        for fairness_metric in fairness_metrics:
            goals = GoalSet(throughput_metric, fairness_metric)
            comparison = compare_on_mix(
                mix,
                catalog=catalog,
                run_config=run_config,
                goals=goals,
                seed=spawn_rng(rng),
                include=include,
            )
            results[(throughput_metric, fairness_metric)] = {
                name: (
                    comparison.score(name).throughput_vs_oracle,
                    comparison.score(name).fairness_vs_oracle,
                )
                for name in include
            }
    return results
