"""Figure registry: run any paper figure's reproduction by name.

Maps figure identifiers (``fig1`` ... ``fig19``, ``scalability``,
``overhead``, ``ablation``) to small drivers that run the experiment
at a configurable scale and print the same rows the benchmark target
prints. Used by ``python -m repro figure <id>``; the pytest-benchmark
targets under ``benchmarks/`` remain the canonical, asserted versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.engine import ExecutionEngine, RunCache
from repro.errors import ExperimentError
from repro.experiments.ablation import resource_subset_ablation
from repro.experiments.characterization import (
    conflicting_goal_gap,
    optimal_configuration_drift,
    rebalancing_opportunity,
)
from repro.experiments.comparison import (
    STANDARD_POLICY_ORDER,
    aggregate,
    compare_on_mixes,
)
from repro.experiments.internals import (
    dynamic_vs_static,
    objective_trace,
    performance_variation,
    weak_goal_priority,
    weight_trace,
)
from repro.experiments.overhead import controller_overhead
from repro.experiments.proximity import distance_to_oracle
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.experiments.scalability import colocation_scalability
from repro.experiments.sensitivity import period_sensitivity
from repro.resources.types import LLC_WAYS, MEMORY_BANDWIDTH
from repro.workloads.mixes import suite_mixes


@dataclass(frozen=True)
class FigureScale:
    """Scale and execution knobs shared by all figure drivers.

    Attributes:
        workers: worker processes for the execution engine.
        cache_dir: directory for the content-addressed run cache
            (``None`` disables caching).
    """

    units: int = 8
    duration_s: float = 15.0
    n_mixes: int = 4
    seed: int = 0
    workers: int = 1
    cache_dir: Optional[str] = None

    @property
    def run_config(self) -> RunConfig:
        return RunConfig(duration_s=self.duration_s)

    def make_engine(self) -> ExecutionEngine:
        """A fresh engine honoring the workers/cache knobs."""
        cache = RunCache(self.cache_dir) if self.cache_dir else None
        return ExecutionEngine(workers=self.workers, cache=cache)


def _mixes(scale: FigureScale, suite: str = "parsec"):
    mixes = suite_mixes(suite)
    stride = max(1, len(mixes) // scale.n_mixes)
    return mixes[::stride][: scale.n_mixes]


def _fig1(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    mix = suite_mixes("parsec")[17]
    drift = optimal_configuration_drift(mix, catalog, duration_s=scale.duration_s, step_s=0.5)
    return (
        f"Fig. 1 ({mix.label}): {drift.n_distinct_configs()} distinct optima, "
        f"max share swing {drift.max_share_change_percent():.1f} %-points"
    )


def _fig2(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    gap = conflicting_goal_gap(suite_mixes("parsec")[0], catalog)
    return (
        "Fig. 2: T-opt fairness / F-opt fairness = "
        f"{100 * gap.cross_fairness_ratio:.0f} % (paper 67 %); "
        "F-opt throughput / T-opt throughput = "
        f"{100 * gap.cross_throughput_ratio:.0f} % (paper 59 %)"
    )


def _fig3(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    example = rebalancing_opportunity(suite_mixes("parsec")[0], catalog, n_samples=80)
    if example is None:
        return "Fig. 3: no re-balancing opportunity found"
    return (
        f"Fig. 3: dT {example.throughput_delta_a:+.3f} vs {example.throughput_delta_b:+.3f}, "
        f"dF {example.fairness_delta_a:+.3f} vs {example.fairness_delta_b:+.3f} "
        f"(opposite fairness directions: {example.demonstrates_opportunity})"
    )


def _fig7(scale: FigureScale, suite: str = "parsec") -> str:
    catalog = experiment_catalog(scale.units)
    comparisons = compare_on_mixes(
        _mixes(scale, suite), catalog, scale.run_config, seed=scale.seed,
        engine=scale.make_engine(),
    )
    agg = aggregate(comparisons, STANDARD_POLICY_ORDER)
    return format_table(
        ["policy", "throughput %", "fairness %"],
        [[name, t, f] for name, (t, f) in agg.items()],
        title=f"Fig. 7-style aggregate ({suite}, {len(comparisons)} mixes):",
    )


def _fig14(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    mix = suite_mixes("parsec")[17]
    trace, _ = weight_trace(mix, catalog, scale.run_config, seed=scale.seed)
    comparison = dynamic_vs_static(mix, catalog, scale.run_config, seed=scale.seed)
    w = trace.w_throughput[~np.isnan(trace.w_throughput)]
    return "\n".join(
        [
            format_series("Fig. 14(a) W_T", w, limit=16),
            f"mean weights {trace.mean_weights()[0]:.3f}/{trace.mean_weights()[1]:.3f}; "
            f"Fig. 14(b) dynamic-vs-static: {comparison.throughput_gain_percent:+.1f} % T, "
            f"{comparison.fairness_gain_percent:+.1f} % F",
        ]
    )


def _fig15(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    result = distance_to_oracle(
        suite_mixes("parsec")[17], catalog, scale.run_config, seed=scale.seed,
        engine=scale.make_engine(),
    )
    rel = result.relative_to("SATORI")
    rows = [
        [name, result.mean_distance[name], rel[name]]
        for name in sorted(result.mean_distance, key=result.mean_distance.get)
    ]
    return format_table(["policy", "mean distance", "x SATORI"], rows, precision=2,
                        title="Fig. 15(a):")


def _fig16(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    result = period_sensitivity(
        suite_mixes("parsec")[17], catalog, scale.run_config, seed=scale.seed,
        engine=scale.make_engine(),
    )
    return (
        f"Fig. 16: T_P-sweep spread {result.prioritization_spread():.1f} pts, "
        f"T_E-sweep spread {result.equalization_spread():.1f} pts"
    )


def _fig17(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    traces = objective_trace(
        suite_mixes("parsec")[0], catalog, scale.run_config, seed=scale.seed
    )
    (dyn_lo, dyn_hi), (sta_lo, sta_hi) = traces.proxy_change_ranges()
    return (
        f"Fig. 17: mean objective gain {traces.mean_objective_gain():+.4f}; "
        f"proxy change dynamic [{dyn_lo:.2f}, {dyn_hi:.2f}] vs static [{sta_lo:.2f}, {sta_hi:.2f}]"
    )


def _fig18(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    v = performance_variation(suite_mixes("parsec")[0], catalog, scale.run_config, seed=scale.seed)
    return (
        f"Fig. 18: T std {v.dynamic_throughput_std:.4f} (dyn) vs "
        f"{v.static_throughput_std:.4f} (static); F std {v.dynamic_fairness_std:.4f} vs "
        f"{v.static_fairness_std:.4f}"
    )


def _fig19(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    c = weak_goal_priority(suite_mixes("parsec")[17], catalog, scale.run_config, seed=scale.seed)
    weaker = c.dynamic.throughput + c.dynamic.fairness
    stronger = c.other.throughput + c.other.fairness
    return (
        f"Fig. 19: weaker-goal design {weaker:.3f} vs stronger-goal {stronger:.3f} "
        f"({100 * (weaker / stronger - 1):+.1f} %)"
    )


def _scalability(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    result = colocation_scalability(
        degrees=(3, 5, 7), mixes_per_degree=1, catalog=catalog,
        run_config=scale.run_config, seed=scale.seed, engine=scale.make_engine(),
    )
    gaps = ", ".join(f"{p.degree}: {0.5 * (p.throughput_gap_points + p.fairness_gap_points):+.1f}"
                     for p in result.points)
    return f"Scalability (SATORI-PARTIES mean gap by degree): {gaps}"


def _overhead(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    result = controller_overhead(
        suite_mixes("parsec")[0], catalog, scale.run_config, seed=scale.seed
    )
    return (
        f"Overhead: {result.mean_decision_time_ms:.2f} ms/interval "
        f"({100 * result.decision_fraction_of_interval:.1f} %), idle {result.idle_fraction:.2f}, "
        f"~{100 * result.estimated_instruction_overhead():.1f} % of mix instructions"
    )


def _cluster(scale: FigureScale) -> str:
    from repro.analysis.plots import cluster_node_dashboard
    from repro.experiments.cluster import cluster_sweep, default_trace
    from repro.obs import TraceCollector, use_collector

    catalog = experiment_catalog(scale.units)
    n_nodes, n_epochs = 2, 3
    trace = default_trace(
        n_epochs=n_epochs, n_nodes=n_nodes, suite="ecp",
        seed=scale.seed, catalog=catalog,
    )
    collector = TraceCollector()
    with use_collector(collector):
        sweep = cluster_sweep(
            trace,
            n_nodes=n_nodes,
            placements=("round_robin", "contention_aware"),
            policies=("SATORI",),
            catalog=catalog,
            epoch_config=scale.run_config,
            seed=scale.seed,
            engine=scale.make_engine(),
        )
    summary = ", ".join(
        f"{cell.placement}: T {cell.result.throughput:.3f} / F {cell.result.fairness:.3f}"
        for cell in sweep.cells
    )
    return (
        f"Cluster ({sweep.n_jobs} jobs, {n_nodes} nodes, {n_epochs} epochs) {summary}\n\n"
        + cluster_node_dashboard(collector.metrics)
    )


def _ablation(scale: FigureScale) -> str:
    catalog = experiment_catalog(scale.units)
    mix = suite_mixes("parsec")[17]
    engine = scale.make_engine()  # shared: with a cache, both subsets reuse the oracle run
    llc = resource_subset_ablation(
        mix, [LLC_WAYS], catalog, scale.run_config, seed=scale.seed, engine=engine
    )
    both = resource_subset_ablation(
        mix, [LLC_WAYS, MEMORY_BANDWIDTH], catalog, scale.run_config, seed=scale.seed,
        engine=engine,
    )
    return (
        f"Ablation: SATORI-LLC vs dCAT {llc.throughput_gap_points:+.1f} T pts; "
        f"SATORI-LLC+MBW vs CoPart {both.throughput_gap_points:+.1f} T pts"
    )


FIGURES: Dict[str, Callable[[FigureScale], str]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig7": _fig7,
    "fig8": _fig7,  # same driver; per-mix detail lives in the bench
    "fig10": lambda s: _fig7(s, "cloudsuite"),
    "fig11": lambda s: _fig7(s, "ecp"),
    "fig12": lambda s: _fig7(s, "cloudsuite"),
    "fig13": lambda s: _fig7(s, "ecp"),
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "fig17": _fig17,
    "fig18": _fig18,
    "fig19": _fig19,
    "scalability": _scalability,
    "overhead": _overhead,
    "ablation": _ablation,
    "cluster": _cluster,
}


def figure_names() -> Sequence[str]:
    """Identifiers accepted by :func:`run_figure`."""
    return tuple(sorted(FIGURES))


def run_figure(name: str, scale: Optional[FigureScale] = None) -> str:
    """Run one figure's reproduction and return its textual output.

    Raises:
        ExperimentError: for unknown figure identifiers.
    """
    try:
        driver = FIGURES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown figure {name!r}; available: {', '.join(figure_names())}"
        ) from None
    return driver(scale or FigureScale())
