"""Configuration-proximity experiments (Fig. 15).

Fig. 15(a): the time-averaged Euclidean distance between the
configuration a policy installs and the configuration the Balanced
Oracle would install at the same instant — SATORI's configurations are
the closest, every other technique at least ~1.3x farther.
Fig. 15(b): the distance over time for SATORI vs PARTIES as phases
change.

Policies that control only a subset of resources (dCAT, CoPart) are
measured on their *effective* allocations — what the jobs actually
receive, including the contention model's arbitration of the shared
resources — flattened into the same vector space as the oracle
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import ExecutionEngine
from repro.metrics.goals import GoalSet
from repro.policies.oracle import OracleSearch
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike
from repro.system.contention import effective_allocations
from repro.experiments.comparison import STANDARD_POLICY_ORDER, comparison_specs
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class ProximityResult:
    """Distances to the Balanced Oracle configuration."""

    mix_label: str
    #: policy name -> time-averaged distance (Fig. 15(a)).
    mean_distance: Dict[str, float]
    #: policy name -> distance series over time (Fig. 15(b)).
    distance_series: Dict[str, np.ndarray]
    times: np.ndarray

    def relative_to(self, reference: str = "SATORI") -> Dict[str, float]:
        """Each policy's mean distance as a multiple of ``reference``'s."""
        base = max(self.mean_distance[reference], 1e-12)
        return {name: d / base for name, d in self.mean_distance.items()}


def _oracle_vector(search: OracleSearch, catalog: ResourceCatalog, mix: JobMix, t: float) -> np.ndarray:
    config = search.best(t, 0.5, 0.5).config
    alloc = effective_allocations(mix, catalog, config, t)
    return np.concatenate([alloc[name] for name in sorted(alloc)])


def _policy_vector(
    telemetry_config, catalog: ResourceCatalog, mix: JobMix, t: float
) -> np.ndarray:
    alloc = effective_allocations(mix, catalog, telemetry_config, t)
    return np.concatenate([alloc[name] for name in sorted(alloc)])


def distance_to_oracle(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    include: Sequence[str] = STANDARD_POLICY_ORDER,
    engine: Optional[ExecutionEngine] = None,
) -> ProximityResult:
    """Run the standard policies and measure config distance to the oracle.

    The policy runs are engine batches (shared with the comparison
    drivers via the cache); only the oracle-distance post-processing of
    each telemetry log happens in-process.
    """
    catalog = catalog or experiment_catalog()
    goals = goals or GoalSet()
    engine = engine or ExecutionEngine()
    search = OracleSearch(mix, catalog, goals)

    _oracle_spec, policy_specs = comparison_specs(
        mix, catalog, run_config, goals, seed, include
    )
    results = engine.run(list(policy_specs.values()))
    mean_distance: Dict[str, float] = {}
    series: Dict[str, np.ndarray] = {}
    times: Optional[np.ndarray] = None

    for name, result in zip(policy_specs, results):
        distances = []
        ts = []
        for record in result.telemetry.records:
            t = record.time_s
            oracle_vec = _oracle_vector(search, catalog, mix, t)
            policy_vec = _policy_vector(record.config, catalog, mix, t)
            distances.append(float(np.linalg.norm(policy_vec - oracle_vec)))
            ts.append(t)
        series[name] = np.asarray(distances)
        mean_distance[name] = float(np.mean(distances))
        if times is None:
            times = np.asarray(ts)

    return ProximityResult(
        mix_label=mix.label,
        mean_distance=mean_distance,
        distance_series=series,
        times=times if times is not None else np.array([]),
    )
